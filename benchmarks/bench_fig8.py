"""Figure 8: the four convergence enhancements under Tdown.

Paper shape: Assertion dominates in cliques; Ghost Flushing cuts looping
by >= 80% and is best on Internet-derived graphs; SSLD never regresses;
WRATE is mixed.  SSLD's improvement in this reproduction is larger than the
paper's "modest" (see EXPERIMENTS.md for the analysis), so the asserted
checks cover the effective/not-regressing claims only.
"""

from _support import record

from repro.experiments.figures import figure8a, figure8b, figure8c, figure8d

CLIQUE_SIZES = (5, 8, 11, 14)
INTERNET_SIZES = (29, 48, 75)


def test_fig8a_ttl_normalized_clique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure8a(sizes=CLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Assertion is the most effective mechanism in cliques (paper §5).
    final = {name: values[-1] for name, values in figure.series.items()}
    assert final["assertion"] == min(final.values())


def test_fig8b_convergence_clique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure8b(sizes=CLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    final = {name: values[-1] for name, values in figure.series.items()}
    assert final["assertion"] < final["standard"]
    assert final["ghost-flushing"] < final["standard"]


def test_fig8c_ttl_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure8c(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Ghost Flushing gives the best results on Internet-derived topologies.
    final = {name: values[-1] for name, values in figure.series.items()}
    assert final["ghost-flushing"] <= 0.2 * final["standard"]


def test_fig8d_convergence_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure8d(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    final = {name: values[-1] for name, values in figure.series.items()}
    # WRATE lengthens Tdown convergence outside cliques (paper §5 / [5]).
    assert final["wrate"] > final["standard"]
    assert final["ghost-flushing"] < final["standard"]
