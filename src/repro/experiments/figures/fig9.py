"""Figure 9: the four convergence enhancements under Tlong.

Four panels: (a) TTL exhaustions normalized by standard BGP in B-Cliques,
(b) convergence time in B-Cliques, (c) TTL exhaustions and (d) convergence
time in Internet-derived topologies.  The headline result is WRATE's
regression: on Internet-derived Tlong it makes packet looping an order of
magnitude worse than standard BGP, because rate-limited withdrawals are
exactly the messages that would have broken loops.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...bgp import VARIANT_NAMES
from ...core import check_wrate_regression
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import bclique_tlong_trial, internet_tlong_trial
from .common import variant_comparison_series
from .fig8 import _comparison_figure


def figure9a(
    sizes: Sequence[int] = (4, 6, 8),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """TTL exhaustions normalized by standard BGP, Tlong in B-Cliques."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        bclique_tlong_trial,
        "ttl_exhaustions",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig9a",
        "Tlong TTL exhaustions normalized by standard BGP (B-Clique)",
        "bclique_size",
        list(sizes),
        raw,
        normalized=True,
        add_ranking_check=False,
    )


def figure9b(
    sizes: Sequence[int] = (4, 6, 8),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Convergence time per variant, Tlong in B-Cliques."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        bclique_tlong_trial,
        "convergence_time",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig9b",
        "Tlong convergence time per variant (B-Clique)",
        "bclique_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=False,
    )


def figure9c(
    sizes: Sequence[int] = (29, 48),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """TTL exhaustions per variant, Tlong on Internet-derived graphs.

    Includes the WRATE-regression check: WRATE should show at least 20%
    more looping than standard at the largest size (the paper reports an
    order of magnitude).
    """
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        internet_tlong_trial,
        "ttl_exhaustions",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    figure = _comparison_figure(
        "fig9c",
        "Tlong TTL exhaustions per variant (Internet-derived)",
        "internet_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=False,
    )
    figure.checks.append(
        check_wrate_regression(raw["standard"][-1], raw["wrate"][-1])
    )
    return figure


def figure9d(
    sizes: Sequence[int] = (29, 48),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Convergence time per variant, Tlong on Internet-derived graphs."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        internet_tlong_trial,
        "convergence_time",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig9d",
        "Tlong convergence time per variant (Internet-derived)",
        "internet_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=False,
    )
