"""The always-on sweep job service.

``repro.service`` turns the batch machinery — journaled sweeps, the
supervised resilient executor, telemetry snapshots, benchmark baselines
— into a long-lived local service:

* :mod:`~repro.service.daemon` — the asyncio daemon: Unix-socket
  protocol server, serial job worker, bench scheduler;
* :mod:`~repro.service.client` — the blocking client the CLI verbs use;
* :mod:`~repro.service.queue` — the durable (CRC-framed, fsync'd,
  ``flock``-guarded) job queue that survives ``kill -9``;
* :mod:`~repro.service.jobs` — job specs, lifecycle states, and the
  sweep-spec → executable-plan resolver;
* :mod:`~repro.service.executor` — runs one job: sweeps through
  :func:`~repro.experiments.journal.checkpointed_sweep` with per-trial
  digests, figures into artifact tables, bench cycles against baselines;
* :mod:`~repro.service.events` — the event vocabulary and asyncio fan-out
  ``repro watch`` streams;
* :mod:`~repro.service.bench` — continuous benchmarking and the
  per-commit perf trajectory;
* :mod:`~repro.service.state` — the on-disk layout of one state
  directory;
* :mod:`~repro.service.protocol` — the wire format.

The headline property, asserted end to end in ``tests/service/`` and
CI's ``service-smoke`` job: SIGKILL the daemon mid-sweep, restart it,
and the resumed job's per-trial digests are bit-identical to an
undisturbed foreground run of the same plan.
"""

from .bench import (
    BenchCycle,
    BenchTarget,
    DEFAULT_TARGETS,
    EXTRA_TARGETS,
    TrajectoryStore,
    run_bench_cycle,
)
from .client import ServiceClient
from .daemon import ServiceDaemon, serve
from .events import (
    EventBus,
    snapshot_from_json,
    snapshot_to_json,
)
from .executor import ExecutionOutcome, JobCancelled, execute_job, sweep_digest
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    QUEUED,
    RUNNING,
    SWEEP_FAMILIES,
    JobSpec,
    JobView,
    SweepPlan,
    resolve_sweep_plan,
    validate_spec,
)
from .queue import DurableJobQueue
from .state import ServiceState

__all__ = [
    "BenchCycle",
    "BenchTarget",
    "CANCELLED",
    "DEFAULT_TARGETS",
    "EXTRA_TARGETS",
    "DONE",
    "DurableJobQueue",
    "EventBus",
    "ExecutionOutcome",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "JobCancelled",
    "JobSpec",
    "JobView",
    "QUEUED",
    "RUNNING",
    "SWEEP_FAMILIES",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceState",
    "SweepPlan",
    "TrajectoryStore",
    "execute_job",
    "resolve_sweep_plan",
    "run_bench_cycle",
    "serve",
    "snapshot_from_json",
    "snapshot_to_json",
    "sweep_digest",
    "validate_spec",
]
