"""Tests for sweeps and aggregation."""

import pytest

from repro.bgp import BgpConfig
from repro.errors import AnalysisError, SimulationError
from repro.experiments import (
    RunSettings,
    SweepPoint,
    TrialFailure,
    failures_of,
    series,
    sweep,
    tdown_clique,
    xs_of,
)

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)


@pytest.fixture(scope="module")
def points():
    return sweep(
        [3, 4],
        lambda x, seed: tdown_clique(int(x)),
        lambda x: FAST,
        seeds=(0, 1),
        settings=SETTINGS,
    )


class TestSweep:
    def test_one_point_per_x(self, points):
        assert xs_of(points) == [3, 4]

    def test_trials_per_point(self, points):
        assert all(len(point.runs) == 2 for point in points)

    def test_series_extraction(self, points):
        conv = series(points, "convergence_time")
        assert len(conv) == 2
        assert all(value > 0 for value in conv)

    def test_mean_metric_is_trial_mean(self, points):
        point = points[0]
        values = [r.summary_row()["convergence_time"] for r in point.results]
        assert point.mean_metric("convergence_time") == pytest.approx(
            sum(values) / len(values)
        )

    def test_metrics_dict(self, points):
        metrics = points[0].metrics()
        assert "looping_ratio" in metrics and "ttl_exhaustions" in metrics

    def test_config_factory_receives_x(self):
        seen = []

        def make_config(x):
            seen.append(x)
            return FAST

        sweep(
            [3],
            lambda x, seed: tdown_clique(int(x)),
            make_config,
            seeds=(0,),
            settings=SETTINGS,
        )
        assert seen == [3]

    def test_empty_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            sweep([], lambda x, s: tdown_clique(3), lambda x: FAST)
        with pytest.raises(AnalysisError):
            sweep([3], lambda x, s: tdown_clique(3), lambda x: FAST, seeds=())

    def test_empty_point_raises_on_aggregation(self):
        with pytest.raises(AnalysisError):
            SweepPoint(x=1.0).mean_metric("convergence_time")


class _StubResult:
    def __init__(self, row):
        self._row = row

    def summary_row(self):
        return dict(self._row)


class _StubRun:
    """Just enough of an ExperimentRun for SweepPoint statistics."""

    def __init__(self, **row):
        self.result = _StubResult(row)


def _failure(x, seed):
    return TrialFailure(x=x, seed=seed, error=SimulationError("died"))


class TestSweepPointStatistics:
    """Aggregation edge cases: failed trials must degrade loudly, not by
    dividing by zero or silently skewing means."""

    def test_all_failed_point_raises_analysis_error_not_zero_division(self):
        point = SweepPoint(
            x=6.0, failures=[_failure(6.0, 0), _failure(6.0, 1)]
        )
        with pytest.raises(AnalysisError) as excinfo:
            point.mean_metric("convergence_time")
        assert not isinstance(excinfo.value, ZeroDivisionError)
        assert "2 of 2 trials failed" in str(excinfo.value)

    def test_all_failed_point_metrics_raises_with_counts(self):
        point = SweepPoint(x=6.0, failures=[_failure(6.0, 0)])
        with pytest.raises(AnalysisError, match="1 of 1 trials failed"):
            point.metrics()

    def test_mixed_point_counts(self):
        point = SweepPoint(
            x=5.0,
            runs=[_StubRun(m=1.0), _StubRun(m=3.0)],
            failures=[_failure(5.0, 2)],
        )
        assert point.trials == 3
        assert point.succeeded == 2
        assert point.failed == 1

    def test_mixed_point_mean_uses_only_successes(self):
        point = SweepPoint(
            x=5.0,
            runs=[_StubRun(m=1.0), _StubRun(m=3.0)],
            failures=[_failure(5.0, 2), _failure(5.0, 3)],
        )
        assert point.mean_metric("m") == pytest.approx(2.0)

    def test_failures_of_preserves_x_major_seed_minor_order(self):
        points = [
            SweepPoint(x=3.0, failures=[_failure(3.0, 0), _failure(3.0, 2)]),
            SweepPoint(x=4.0, runs=[_StubRun(m=1.0)]),
            SweepPoint(x=5.0, failures=[_failure(5.0, 1)]),
        ]
        assert [(f.x, f.seed) for f in failures_of(points)] == [
            (3.0, 0), (3.0, 2), (5.0, 1),
        ]

    def test_series_preserves_point_order(self):
        points = [
            SweepPoint(x=4.0, runs=[_StubRun(m=4.5)]),
            SweepPoint(x=3.0, runs=[_StubRun(m=3.5)]),
        ]
        assert series(points, "m") == [4.5, 3.5]
        assert xs_of(points) == [4.0, 3.0]

    def test_series_propagates_dead_point_error(self):
        points = [
            SweepPoint(x=3.0, runs=[_StubRun(m=1.0)]),
            SweepPoint(x=4.0, failures=[_failure(4.0, 0)]),
        ]
        with pytest.raises(AnalysisError, match="x=4.0"):
            series(points, "m")
