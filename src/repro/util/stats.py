"""Small statistics helpers (dependency-free).

The paper's observations are statements about trends — "linearly proportional
to the MRAI value", "stays almost constant" — so the toolkit here is summary
statistics plus ordinary least squares with an R² goodness measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise AnalysisError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    """Median; raises on empty input."""
    if not values:
        raise AnalysisError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev / mean — the "almost constant" test of Observation 2.

    Returns 0.0 when the mean is 0 (all values are then 0 too, or the
    question is ill-posed and 0 is the conservative answer).
    """
    mu = mean(values)
    if mu == 0:
        return 0.0
    return stdev(values) / abs(mu)


@dataclass(frozen=True)
class LinearFit:
    """Ordinary least squares ``y ≈ slope · x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    @property
    def is_strongly_linear(self) -> bool:
        """The library's convention for "linearly proportional": R² ≥ 0.9."""
        return self.r_squared >= 0.9


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares line through ``(xs, ys)``.

    Raises :class:`AnalysisError` for fewer than two points or zero variance
    in ``xs``.  A constant ``ys`` yields slope 0 with R² = 1 (the line fits
    perfectly).
    """
    if len(xs) != len(ys):
        raise AnalysisError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise AnalysisError("need at least two points for a linear fit")
    x_mean, y_mean = mean(list(xs)), mean(list(ys))
    sxx = sum((x - x_mean) ** 2 for x in xs)
    if sxx == 0:
        raise AnalysisError("xs have zero variance; slope is undefined")
    sxy = sum((x - x_mean) * (y - y_mean) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    ss_total = sum((y - y_mean) ** 2 for y in ys)
    if ss_total == 0:
        return LinearFit(slope=slope, intercept=intercept, r_squared=1.0)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    return LinearFit(slope=slope, intercept=intercept, r_squared=1 - ss_res / ss_total)


@dataclass(frozen=True)
class Summary:
    """Mean ± stdev over repeated trials, with extremes."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.2f} ±{self.stdev:.2f} (n={self.count})"


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics for a non-empty sequence."""
    if not values:
        raise AnalysisError("cannot summarize empty sequence")
    return Summary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        minimum=min(values),
        maximum=max(values),
    )
