"""A serialized work queue: the router-CPU model.

The paper configures a routing-message processing delay of U[0.1 s, 0.5 s],
two orders of magnitude above the 2 ms link delay, and notes that Ghost
Flushing's benefit degrades on large cliques because "the message containing
the latest path information is delayed by the processing of a large number of
withdrawal flushes".  That effect only exists if a node processes messages
*one at a time*; :class:`SerialProcessor` models exactly that: an M/G/1-style
single server with FIFO discipline.

Each submitted job carries its own service time (drawn by the caller, so the
randomness stays in the caller's named RNG stream).  The job's callback runs
when its service completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from .event import EventPriority
from .scheduler import Scheduler


class SerialProcessor:
    """A single-server FIFO processing queue driven by the scheduler.

    >>> sched = Scheduler()
    >>> cpu = SerialProcessor(sched, name="router-3")
    >>> done = []
    >>> cpu.submit(0.2, lambda: done.append("a"))
    >>> cpu.submit(0.3, lambda: done.append("b"))
    >>> _ = sched.run()
    >>> done   # "a" finishes at t=0.2, "b" queues behind it until t=0.5
    ['a', 'b']
    """

    def __init__(self, scheduler: Scheduler, name: str = "processor") -> None:
        self._scheduler = scheduler
        self._name = name
        self._queue: Deque[Tuple[float, Callable[[], None], bool]] = deque()
        self._busy = False
        self._jobs_completed = 0
        self._jobs_dropped = 0
        self._busy_until = 0.0
        self._substantive_queued = 0
        self._current_event = None

    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a job is in service."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def jobs_completed(self) -> int:
        """Total jobs whose service has finished."""
        return self._jobs_completed

    @property
    def backlog_time(self) -> float:
        """Seconds until the queue would drain if nothing else arrives.

        Only an estimate of the in-service job's remainder plus the service
        times already assigned to the queued jobs.
        """
        waiting = sum(service for service, _, _ in self._queue)
        in_service = max(0.0, self._busy_until - self._scheduler.now)
        return waiting + in_service

    # ------------------------------------------------------------------

    def submit(
        self,
        service_time: float,
        on_done: Callable[[], None],
        housekeeping: bool = False,
    ) -> None:
        """Enqueue a job that takes ``service_time`` seconds of CPU.

        ``on_done`` runs at the simulated instant the service completes.
        ``housekeeping`` jobs (keepalive processing) do not block the
        scheduler's quiescence detection; if substantive work queues behind
        a housekeeping job already in service, the in-service completion
        event is upgraded so the chain that releases the substantive job
        stays quiescence-blocking.
        """
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        self._queue.append((service_time, on_done, housekeeping))
        if not housekeeping:
            self._substantive_queued += 1
            if self._current_event is not None:
                self._current_event.mark_substantive()
        if not self._busy:
            self._start_next()

    def clear(self) -> int:
        """Drop every queued job and abort the one in service (router crash).

        Returns the number of jobs destroyed.  The processor is immediately
        ready to accept new work.
        """
        dropped = len(self._queue) + (1 if self._busy else 0)
        self._queue.clear()
        self._substantive_queued = 0
        if self._current_event is not None:
            self._current_event.cancel()
            self._current_event = None
        self._busy = False
        self._busy_until = 0.0
        self._jobs_dropped += dropped
        return dropped

    @property
    def jobs_dropped(self) -> int:
        """Jobs destroyed by :meth:`clear` (crashes) over the node's life."""
        return self._jobs_dropped

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            self._current_event = None
            return
        self._busy = True
        service_time, on_done, housekeeping = self._queue.popleft()
        if not housekeeping:
            self._substantive_queued -= 1
        self._busy_until = self._scheduler.now + service_time

        def finish() -> None:
            self._jobs_completed += 1
            self._current_event = None
            # Run the job body before starting the next service slot so a
            # job's side effects (e.g. enqueueing replies) see a consistent
            # clock, then immediately begin the next queued job.
            on_done()
            self._start_next()

        # The completion event only counts as housekeeping when nothing
        # substantive is waiting behind this job — it is the event that
        # starts the next service slot.
        self._current_event = self._scheduler.call_after(
            service_time,
            finish,
            priority=EventPriority.PROCESSING,
            name=f"{self._name}:job",
            housekeeping=housekeeping and self._substantive_queued == 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SerialProcessor {self._name!r} busy={self._busy} "
            f"queued={len(self._queue)} done={self._jobs_completed}>"
        )
