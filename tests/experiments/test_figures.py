"""Smoke tests for the per-figure drivers (tiny parameters).

Full-size reproductions live in benchmarks/; here we only assert that every
driver runs end to end, returns aligned series, and attaches its checks.
"""

import pytest

from repro.experiments import RunSettings
from repro.experiments.figures import (
    figure4a,
    figure4b,
    figure5a,
    figure6a,
    figure7a,
    figure8a,
    figure9a,
    metric_sweep_figure,
    normalize_to,
    theory_bound_figure,
    variant_comparison_series,
)
from repro.experiments.scenarios import tdown_clique

SETTINGS = RunSettings(failure_guard=0.5)
TINY = dict(mrai=1.0, seeds=(0,), settings=SETTINGS)


class TestMetricSweepDrivers:
    def test_figure4a(self):
        fig = figure4a(sizes=(3, 4), **TINY)
        assert fig.xs == [3, 4]
        assert set(fig.series) == {"looping_duration", "convergence_time"}
        assert fig.checks and fig.checks[0].name == "obs1-coupling"

    def test_figure4b(self):
        fig = figure4b(sizes=(3, 4), **TINY)
        assert len(fig.series["convergence_time"]) == 2

    def test_figure5a(self):
        fig = figure5a(
            mrai_values=(1.0, 2.0, 3.0), clique_size=4, seeds=(0,), settings=SETTINGS
        )
        assert fig.xs == [1.0, 2.0, 3.0]
        assert len(fig.checks) == 2

    def test_figure6a(self):
        fig = figure6a(sizes=(3, 4), **TINY)
        assert set(fig.series) == {"ttl_exhaustions", "looping_ratio"}
        assert any(check.name == "looping-ratio-floor" for check in fig.checks)

    def test_figure7a(self):
        fig = figure7a(
            mrai_values=(1.0, 2.0, 3.0), clique_size=4, seeds=(0,), settings=SETTINGS
        )
        names = {check.name for check in fig.checks}
        assert "linear-in-mrai" in names
        assert "obs2-ratio-constant" in names


class TestComparisonDrivers:
    def test_figure8a_normalized_standard_is_unity(self):
        fig = figure8a(sizes=(3, 4), **TINY)
        assert fig.series["standard"] == [1.0, 1.0]
        assert set(fig.series) == {
            "standard",
            "ssld",
            "wrate",
            "assertion",
            "ghost-flushing",
        }

    def test_figure9a(self):
        fig = figure9a(sizes=(3,), **TINY)
        assert len(fig.xs) == 1


class TestTheoryDriver:
    def test_theory_bound_respected_on_small_rings(self):
        fig = theory_bound_figure(
            ring_sizes=(3, 4), mrai=2.0, seeds=(0,), settings=SETTINGS
        )
        (check,) = fig.checks
        assert check.holds, check.detail
        for measured, bound in zip(fig.series["measured_max_loop"], fig.series["bound"]):
            assert measured <= bound + 2.0


class TestTradeoffDriver:
    def test_fate_breakdown_per_variant(self):
        from repro.experiments import tlong_bclique
        from repro.experiments.figures.tradeoff import (
            packet_fate_breakdown,
            render_fate_table,
        )

        breakdowns = packet_fate_breakdown(
            lambda seed: tlong_bclique(3),
            ["standard", "ghost-flushing"],
            mrai=1.0,
            seeds=(0,),
            settings=SETTINGS,
        )
        assert set(breakdowns) == {"standard", "ghost-flushing"}
        for fate in breakdowns.values():
            total = (
                fate.delivered_ratio + fate.no_route_ratio + fate.looped_ratio
            )
            assert total == pytest.approx(1.0) or fate.packets_sent == 0
        table = render_fate_table(breakdowns, "t")
        assert "ghost-flushing" in table

    def test_requires_seeds(self):
        from repro.errors import AnalysisError
        from repro.experiments import tlong_bclique
        from repro.experiments.figures.tradeoff import packet_fate_breakdown

        with pytest.raises(AnalysisError):
            packet_fate_breakdown(
                lambda seed: tlong_bclique(3), ["standard"], seeds=()
            )


class TestCommonHelpers:
    def test_normalize_to(self):
        normalized = normalize_to([2.0, 4.0], {"a": [1.0, 8.0]})
        assert normalized["a"] == [0.5, 2.0]

    def test_normalize_to_zero_baseline(self):
        normalized = normalize_to([0.0, 0.0], {"a": [0.0, 3.0]})
        assert normalized["a"][0] == 1.0
        assert normalized["a"][1] == float("inf")

    def test_variant_comparison_shares_scenarios(self):
        table = variant_comparison_series(
            [3.0],
            lambda x, seed: tdown_clique(int(x)),
            "convergence_time",
            ["standard", "ssld"],
            mrai=1.0,
            seeds=(0,),
            settings=SETTINGS,
        )
        assert set(table) == {"standard", "ssld"}
        assert all(len(v) == 1 for v in table.values())

    def test_metric_sweep_mrai_is_x(self):
        fig, points = metric_sweep_figure(
            "t",
            "title",
            "mrai",
            [1.0, 2.0],
            lambda x, seed: tdown_clique(3),
            ["convergence_time"],
            seeds=(0,),
            settings=SETTINGS,
            mrai_is_x=True,
        )
        assert [p.runs[0].bgp_config.mrai for p in points] == [1.0, 2.0]
