"""Unit tests for FIB change logging and epoch reconstruction."""

import pytest

from repro.dataplane import FibChangeLog, ForwardingGraph
from repro.errors import AnalysisError

P = "dest"


@pytest.fixture
def log():
    """A small history: 1->0 at t=0, 2->1 at t=0, 2 flips to 0 at t=5,
    1 loses its route at t=8."""
    log = FibChangeLog()
    log.record(0.0, 1, P, 0)
    log.record(0.0, 2, P, 1)
    log.record(5.0, 2, P, 0)
    log.record(8.0, 1, P, None)
    return log


class TestRecording:
    def test_times_must_be_non_decreasing(self, log):
        with pytest.raises(AnalysisError):
            log.record(7.0, 1, P, 0)

    def test_len_and_iter(self, log):
        assert len(log) == 4
        assert [c.time for c in log] == [0.0, 0.0, 5.0, 8.0]

    def test_changes_for_filters_prefix(self, log):
        log.record(9.0, 1, "other", 2)
        assert len(log.changes_for(P)) == 4
        assert len(log.changes_for("other")) == 1

    def test_change_times_dedups(self, log):
        assert log.change_times(P) == [0.0, 5.0, 8.0]

    def test_last_change_time(self, log):
        assert log.last_change_time(P) == 8.0
        assert log.last_change_time("missing") is None


class TestSnapshot:
    def test_snapshot_initial(self, log):
        graph = log.snapshot_at(P, 0.0)
        assert graph.next_hop(1) == 0
        assert graph.next_hop(2) == 1

    def test_snapshot_mid(self, log):
        graph = log.snapshot_at(P, 6.0)
        assert graph.next_hop(2) == 0

    def test_snapshot_after_route_loss(self, log):
        graph = log.snapshot_at(P, 10.0)
        assert graph.next_hop(1) is None

    def test_snapshot_before_history(self, log):
        graph = log.snapshot_at(P, -1.0)
        assert graph.next_hop(1) is None


class TestEpochs:
    def test_epoch_boundaries(self, log):
        epochs = list(log.epochs(P, 0.0, 10.0))
        spans = [(start, end) for start, end, _graph in epochs]
        assert spans == [(0.0, 5.0), (5.0, 8.0), (8.0, 10.0)]

    def test_epoch_graphs_reflect_changes(self, log):
        epochs = list(log.epochs(P, 0.0, 10.0))
        assert epochs[0][2].next_hop(2) == 1
        assert epochs[1][2].next_hop(2) == 0
        assert epochs[2][2].next_hop(1) is None

    def test_window_not_aligned_to_changes(self, log):
        epochs = list(log.epochs(P, 2.0, 6.0))
        spans = [(start, end) for start, end, _graph in epochs]
        assert spans == [(2.0, 5.0), (5.0, 6.0)]

    def test_changes_at_window_start_are_included_in_first_graph(self, log):
        epochs = list(log.epochs(P, 5.0, 6.0))
        assert len(epochs) == 1
        assert epochs[0][2].next_hop(2) == 0

    def test_empty_window_yields_nothing(self, log):
        assert list(log.epochs(P, 3.0, 3.0)) == []

    def test_backwards_window_raises(self, log):
        with pytest.raises(AnalysisError):
            list(log.epochs(P, 5.0, 1.0))

    def test_graphs_are_copies(self, log):
        first, second = list(log.epochs(P, 0.0, 6.0))[:2]
        assert first[2].next_hop(2) == 1  # not aliased to the later state


class TestForwardingGraph:
    def test_local_delivery_detection(self):
        graph = ForwardingGraph({0: 0, 1: 0})
        assert graph.delivers_locally(0)
        assert not graph.delivers_locally(1)

    def test_nodes_with_route(self):
        graph = ForwardingGraph({0: 0, 1: 0, 2: None})
        assert graph.nodes_with_route() == [0, 1]

    def test_equality_and_copy(self):
        graph = ForwardingGraph({1: 0})
        dup = graph.copy()
        assert dup == graph
        dup.set_next_hop(2, 1)
        assert dup != graph

    def test_as_dict_is_copy(self):
        graph = ForwardingGraph({1: 0})
        snapshot = graph.as_dict()
        snapshot[9] = 9
        assert graph.next_hop(9) is None
