"""Failure-scenario helpers.

The paper drives every experiment with a single topology-change event.  This
module names the two event shapes (§4.1) and provides small injectors that
compose with :class:`~repro.net.network.Network`:

* **Tdown** — "the destination AS becomes unreachable from the rest of the
  network": the destination's attachment to its destination host is lost, so
  the origin AS withdraws the prefix (the origin itself stays in the graph).
* **Tlong** — "a link in the network fails, which does not disconnect the
  destination AS but forces the rest of the network to use less preferred
  paths": one specific transit link is failed.

The protocol-specific half of Tdown (withdrawing an origination) lives on the
protocol node (:meth:`BgpSpeaker.withdraw_origin`); the injector here just
schedules whatever callable the scenario hands it, keeping the failure
machinery protocol-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import NetworkError
from .network import Network


@dataclass(frozen=True)
class LinkFailure:
    """A single link failure at an absolute time."""

    u: int
    v: int
    at: float

    def inject(self, network: Network) -> None:
        network.schedule_link_failure(self.u, self.v, self.at)


@dataclass(frozen=True)
class LinkRestore:
    """A single link restoration at an absolute time."""

    u: int
    v: int
    at: float

    def inject(self, network: Network) -> None:
        network.schedule_link_restore(self.u, self.v, self.at)


@dataclass(frozen=True)
class OriginWithdrawal:
    """A Tdown trigger: at time ``at``, run the protocol-supplied action.

    ``action`` is typically ``speaker.withdraw_origin`` bound to the
    destination prefix.
    """

    node: int
    at: float
    action: Callable[[], None]

    def inject(self, network: Network) -> None:
        if self.node not in network.nodes:
            raise NetworkError(f"no node {self.node} for origin withdrawal")
        network.scheduler.call_at(
            self.at, self.action, priority=0, name=f"tdown:{self.node}"
        )


@dataclass
class FailureSchedule:
    """An ordered collection of failure events for one simulation run."""

    events: List[object] = field(default_factory=list)

    def add(self, event) -> "FailureSchedule":
        self.events.append(event)
        return self

    def inject_all(self, network: Network) -> None:
        """Register every event with the network's scheduler."""
        for event in self.events:
            event.inject(network)

    @property
    def first_failure_time(self) -> Optional[float]:
        """Earliest event time, used as the convergence-clock origin."""
        times = [event.at for event in self.events]
        return min(times) if times else None


def flap(u: int, v: int, down_at: float, up_at: float) -> FailureSchedule:
    """A link flap: down at ``down_at``, back up at ``up_at``."""
    if up_at <= down_at:
        raise NetworkError(f"flap must restore after failing ({down_at} -> {up_at})")
    schedule = FailureSchedule()
    schedule.add(LinkFailure(u, v, down_at))
    schedule.add(LinkRestore(u, v, up_at))
    return schedule
