"""Bidirectional links: a pair of channels plus shared up/down state."""

from __future__ import annotations

from typing import Any, Callable, Tuple

from ..engine import Scheduler
from ..errors import NetworkError
from .channel import Channel


class Link:
    """An undirected adjacency realized as two directed channels.

    The link as a whole is up or down; per-direction failure is not modeled
    (the paper's failures are whole-link events).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        u: int,
        v: int,
        delay: float,
        deliver_to_u: Callable[[int, Any], None],
        deliver_to_v: Callable[[int, Any], None],
    ) -> None:
        if u == v:
            raise NetworkError(f"link endpoints must differ, got ({u}, {v})")
        self.u, self.v = (u, v) if u < v else (v, u)
        if (u, v) != (self.u, self.v):
            deliver_to_u, deliver_to_v = deliver_to_v, deliver_to_u
        self._to_v = Channel(scheduler, self.u, self.v, delay, deliver_to_v)
        self._to_u = Channel(scheduler, self.v, self.u, delay, deliver_to_u)

    # ------------------------------------------------------------------

    @property
    def endpoints(self) -> Tuple[int, int]:
        """The (low, high) node-id pair of this link."""
        return (self.u, self.v)

    @property
    def delay(self) -> float:
        return self._to_v.delay

    @property
    def up(self) -> bool:
        return self._to_v.up and self._to_u.up

    def channel_from(self, node: int) -> Channel:
        """The outbound channel as seen from ``node``."""
        if node == self.u:
            return self._to_v
        if node == self.v:
            return self._to_u
        raise NetworkError(f"node {node} is not an endpoint of link {self.endpoints}")

    def other_end(self, node: int) -> int:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise NetworkError(f"node {node} is not an endpoint of link {self.endpoints}")

    def send(self, src: int, message: Any) -> None:
        """Send ``message`` from endpoint ``src`` toward the other end."""
        self.channel_from(src).send(message)

    def take_down(self) -> int:
        """Fail the link in both directions; returns messages destroyed."""
        return self._to_v.take_down() + self._to_u.take_down()

    def reset(self) -> int:
        """Drop all in-flight messages in both directions, staying up.

        Models the transport (TCP) connection dying underneath a healthy
        link — a BGP session reset.  Returns messages destroyed.
        """
        return self._to_v.drop_in_flight() + self._to_u.drop_in_flight()

    def bring_up(self) -> None:
        """Repair the link in both directions."""
        self._to_v.bring_up()
        self._to_u.bring_up()

    @property
    def messages_carried(self) -> int:
        """Total messages delivered in either direction."""
        return self._to_v.messages_delivered + self._to_u.messages_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Link {self.u}<->{self.v} {state}>"
