"""Unit tests for per-loop statistics (the paper's future-work metrics)."""

import pytest

from repro.core import LoopStatistics, percentile
from repro.core.loop_detector import LoopInterval
from repro.errors import AnalysisError


def interval(cycle, start, end):
    return LoopInterval(cycle=tuple(cycle), start=start, end=end)


@pytest.fixture
def stats():
    intervals = [
        interval((1, 2), 10.0, 14.0),     # 2-node, 4s
        interval((1, 2), 20.0, 21.0),     # same loop re-forms, 1s
        interval((3, 4, 5), 11.0, 13.0),  # 3-node, 2s
        interval((2, 6), 12.0, 12.5),     # 2-node, 0.5s
    ]
    return LoopStatistics.from_intervals(intervals, failure_time=10.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        assert percentile([3, 1, 2], 0) == 1
        assert percentile([3, 1, 2], 100) == 3

    def test_single_value(self):
        assert percentile([7], 90) == 7

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            percentile([], 50)
        with pytest.raises(AnalysisError):
            percentile([1], 150)


class TestDistributions:
    def test_count_and_sizes(self, stats):
        assert stats.count == 4
        assert sorted(stats.sizes()) == [2, 2, 2, 3]
        assert stats.size_histogram() == {2: 3, 3: 1}

    def test_two_node_share(self, stats):
        assert stats.two_node_share() == pytest.approx(0.75)

    def test_two_node_share_empty(self):
        assert LoopStatistics().two_node_share() == 0.0

    def test_duration_summary(self, stats):
        summary = stats.duration_summary()
        assert summary.maximum == 4.0
        assert summary.minimum == 0.5
        assert summary.mean == pytest.approx((4 + 1 + 2 + 0.5) / 4)

    def test_duration_percentiles(self, stats):
        assert stats.duration_percentile(100) == 4.0
        assert stats.duration_percentile(0) == 0.5

    def test_formation_delays(self, stats):
        summary = stats.formation_delay_summary()
        assert summary.minimum == 0.0   # first loop forms at the failure
        assert summary.maximum == 10.0

    def test_total_loop_seconds(self, stats):
        assert stats.total_loop_seconds() == pytest.approx(7.5)


class TestStructure:
    def test_node_participation(self, stats):
        participation = stats.node_participation()
        assert participation[1] == 2
        assert participation[2] == 3
        assert participation[6] == 1

    def test_most_looping_nodes(self, stats):
        top = stats.most_looping_nodes(top=2)
        assert top[0] == (2, 3)
        assert top[1] == (1, 2)

    def test_reformation_counts(self, stats):
        counts = stats.reformation_counts()
        assert counts[(1, 2)] == 2
        assert counts[(3, 4, 5)] == 1


class TestMergeAndDescribe:
    def test_merge_pools_runs(self, stats):
        other = LoopStatistics.from_intervals(
            [interval((7, 8), 5.0, 6.0)], failure_time=5.0
        )
        merged = LoopStatistics.merge([stats, other])
        assert merged.count == 5
        assert merged.size_histogram()[2] == 4

    def test_describe_mentions_key_numbers(self, stats):
        text = stats.describe()
        assert "4" in text            # count
        assert "75%" in text          # two-node share
        assert "2-node x3" in text

    def test_describe_empty(self):
        assert LoopStatistics().describe() == "no loops observed"
