"""Behavioral tests for the BGP speaker.

These run small real simulations and assert on routing outcomes, including
the paper's Figure 1 transient-loop scenario.
"""

import pytest

from repro.bgp import Announcement, AsPath, BgpConfig, BgpSpeaker, Withdrawal
from repro.core import find_loops, is_loop_free, loop_timeline
from repro.dataplane import ForwardingGraph
from repro.errors import ProtocolError
from repro.topology import Topology, chain, clique

PREFIX = "dest"


def figure1_topology() -> Topology:
    """The topology of the paper's Figure 1.

    Destination hangs off node 0; node 4 has the direct link to it; nodes 5
    and 6 sit behind 4 and peer with each other; 6 also has the long backup
    chain 6-3-2-1-0.
    """
    return Topology.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 6), (4, 5), (4, 6), (5, 6), (0, 4)],
        name="figure-1",
    )


def originate_and_converge(network, scheduler, origin=0, prefix=PREFIX):
    speaker = network.node(origin)
    speaker.originate(prefix)
    network.start()
    scheduler.run(max_events=200_000)
    return scheduler.now


def speakers(network):
    return {nid: node for nid, node in network.nodes.items()}


def forwarding_graph(network, prefix=PREFIX) -> ForwardingGraph:
    graph = ForwardingGraph()
    for nid, node in network.nodes.items():
        graph.set_next_hop(nid, node.fib.get(prefix))
    return graph


class TestWarmupConvergence:
    def test_chain_converges_to_line_of_next_hops(
        self, scheduler, bgp_network_factory
    ):
        network, _log = bgp_network_factory(chain(4))
        originate_and_converge(network, scheduler)
        assert network.node(0).next_hop(PREFIX) == 0  # local delivery
        assert network.node(1).next_hop(PREFIX) == 0
        assert network.node(2).next_hop(PREFIX) == 1
        assert network.node(3).next_hop(PREFIX) == 2

    def test_clique_all_nodes_use_direct_route(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(clique(5))
        originate_and_converge(network, scheduler)
        for nid in range(1, 5):
            assert network.node(nid).next_hop(PREFIX) == 0

    def test_paths_match_paper_notation(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(figure1_topology())
        originate_and_converge(network, scheduler)
        assert network.node(4).full_path(PREFIX) == AsPath((4, 0))
        assert network.node(5).full_path(PREFIX) == AsPath((5, 4, 0))
        assert network.node(6).full_path(PREFIX) == AsPath((6, 4, 0))

    def test_invariants_hold_after_warmup(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(clique(5))
        originate_and_converge(network, scheduler)
        for node in network.nodes.values():
            node.check_invariants()

    def test_forwarding_graph_loop_free_after_warmup(
        self, scheduler, bgp_network_factory
    ):
        network, _log = bgp_network_factory(clique(6))
        originate_and_converge(network, scheduler)
        assert is_loop_free(forwarding_graph(network))


class TestFigure1TransientLoop:
    """The paper's canonical example, §3.1: failing link [4 0] must create a
    transient 5<->6 forwarding loop, which resolves via poison reverse."""

    @pytest.fixture
    def converged_fig1(self, scheduler, bgp_network_factory):
        network, log = bgp_network_factory(figure1_topology())
        originate_and_converge(network, scheduler)
        return network, log

    def test_loop_forms_and_resolves(self, scheduler, converged_fig1):
        network, log = converged_fig1
        failure_time = scheduler.now + 1.0
        network.schedule_link_failure(0, 4, at=failure_time)
        scheduler.run(max_events=200_000)

        intervals = loop_timeline(log, PREFIX, failure_time, scheduler.now)
        cycles = {interval.cycle for interval in intervals}
        assert (5, 6) in cycles, f"expected the 5<->6 loop, saw {cycles}"

    def test_final_routes_use_backup_chain(self, scheduler, converged_fig1):
        network, _log = converged_fig1
        network.schedule_link_failure(0, 4, at=scheduler.now + 1.0)
        scheduler.run(max_events=200_000)
        assert network.node(6).full_path(PREFIX) == AsPath((6, 3, 2, 1, 0))
        assert network.node(5).full_path(PREFIX) == AsPath((5, 6, 3, 2, 1, 0))
        assert network.node(4).full_path(PREFIX) == AsPath((4, 6, 3, 2, 1, 0))

    def test_final_forwarding_is_loop_free(self, scheduler, converged_fig1):
        network, _log = converged_fig1
        network.schedule_link_failure(0, 4, at=scheduler.now + 1.0)
        scheduler.run(max_events=200_000)
        assert is_loop_free(forwarding_graph(network))
        for node in network.nodes.values():
            node.check_invariants()


class TestTdown:
    def test_withdraw_origin_leaves_network_route_free(
        self, scheduler, bgp_network_factory
    ):
        network, _log = bgp_network_factory(clique(5))
        originate_and_converge(network, scheduler)
        origin = network.node(0)
        scheduler.call_at(scheduler.now + 1.0, lambda: origin.withdraw_origin(PREFIX))
        scheduler.run(max_events=200_000)
        for node in network.nodes.values():
            assert node.best_route(PREFIX) is None
            assert node.next_hop(PREFIX) is None
            node.check_invariants()

    def test_withdraw_unoriginated_prefix_raises(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(clique(3))
        with pytest.raises(ProtocolError):
            network.node(1).withdraw_origin(PREFIX)

    def test_poison_reverse_blocks_origin_from_looping_back(
        self, scheduler, bgp_network_factory
    ):
        """After Tdown, node 0 must never adopt a path through its peers:
        every such path contains 0 and is poison-reversed away."""
        network, _log = bgp_network_factory(clique(4))
        originate_and_converge(network, scheduler)
        origin = network.node(0)
        scheduler.call_at(scheduler.now + 1.0, lambda: origin.withdraw_origin(PREFIX))
        scheduler.run(max_events=200_000)
        assert origin.best_route(PREFIX) is None
        assert origin.routes_discarded_by_poison_reverse > 0


class TestLinkDownHandling:
    def test_link_down_purges_neighbor_state(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(chain(3))
        originate_and_converge(network, scheduler)
        node2 = network.node(2)
        assert node2.best_route(PREFIX) is not None
        network.fail_link(1, 2)
        scheduler.run(max_events=200_000)
        assert node2.best_route(PREFIX) is None
        assert node2.adj_rib_in.get(1, PREFIX) is None

    def test_stale_delivery_from_dead_session_ignored(
        self, scheduler, bgp_network_factory
    ):
        """A message already *delivered* but not yet processed when the link
        dies must not resurrect state from the dead neighbor."""
        network, _log = bgp_network_factory(chain(2))
        node1 = network.node(1)
        # Hand-deliver an announcement, then kill the link before the
        # processing delay elapses.
        node1.deliver(0, Announcement(prefix=PREFIX, path=AsPath((0,))))
        network.fail_link(0, 1)
        scheduler.run(max_events=10_000)
        assert node1.best_route(PREFIX) is None

    def test_link_restore_readvertises(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(chain(3))
        originate_and_converge(network, scheduler)
        network.fail_link(1, 2)
        scheduler.run(max_events=200_000)
        restore_at = scheduler.now + 1.0
        network.schedule_link_restore(1, 2, at=restore_at)
        scheduler.run(max_events=200_000)
        assert network.node(2).full_path(PREFIX) == AsPath((2, 1, 0))


class TestDuplicateSuppression:
    def test_route_advertised_once(self, scheduler, bgp_network_factory):
        """"The route to each destination is advertised only once": warmup on
        a chain sends exactly one announcement per (node, downstream peer)."""
        network, _log = bgp_network_factory(chain(3))
        originate_and_converge(network, scheduler)
        announcements = network.trace.records(
            lambda r: isinstance(r.message, Announcement)
        )
        pair_counts = {}
        for record in announcements:
            key = (record.src, record.dst)
            pair_counts[key] = pair_counts.get(key, 0) + 1
        # 0->1, 1->2 carry the route forward; 1->0 and 2->1 echo the path
        # back (poison-reversed at the receiver); each exactly once.
        assert all(count == 1 for count in pair_counts.values()), pair_counts


class TestMessageValidation:
    def test_announcement_head_must_match_sender(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(chain(2))
        node1 = network.node(1)
        node1.deliver(0, Announcement(prefix=PREFIX, path=AsPath((9, 0))))
        with pytest.raises(ProtocolError, match="does not match sender"):
            scheduler.run(max_events=10)

    def test_unexpected_message_type_rejected(self, scheduler, bgp_network_factory):
        network, _log = bgp_network_factory(chain(2))
        network.node(1).deliver(0, "garbage")
        with pytest.raises(ProtocolError, match="unexpected message"):
            scheduler.run(max_events=10)
