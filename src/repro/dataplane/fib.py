"""Forwarding state: per-node FIBs over time.

The data-plane analysis needs the forwarding graph — "which node forwards to
which" — at every instant of the convergence window.  Speakers report each
next-hop change to a :class:`FibChangeLog`; the log can replay itself into a
:class:`ForwardingGraph` snapshot at any time, or stream the sequence of
*epochs* (maximal intervals over which the graph is constant).

Next-hop encoding, shared with :class:`~repro.bgp.speaker.BgpSpeaker`:

* ``next_hop == node``  — the node delivers locally (it is the destination),
* ``next_hop is None`` (or absent) — no route: packets are dropped,
* otherwise — forward to that neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import AnalysisError

Prefix = str


@dataclass(frozen=True, slots=True)
class FibChange:
    """One next-hop change at one node."""

    time: float
    node: int
    prefix: Prefix
    next_hop: Optional[int]


class ForwardingGraph:
    """A snapshot of every node's next hop for one prefix.

    This is a functional graph (out-degree ≤ 1), which is what makes loop
    analysis cheap: every walk either terminates or enters exactly one cycle.
    """

    def __init__(self, next_hops: Optional[Dict[int, Optional[int]]] = None) -> None:
        self._next_hops: Dict[int, Optional[int]] = dict(next_hops or {})

    def set_next_hop(self, node: int, next_hop: Optional[int]) -> None:
        self._next_hops[node] = next_hop

    def next_hop(self, node: int) -> Optional[int]:
        """The node's next hop (None = no route)."""
        return self._next_hops.get(node)

    def delivers_locally(self, node: int) -> bool:
        """True when the node is a local-delivery point for the prefix."""
        return self._next_hops.get(node) == node

    def nodes_with_route(self) -> List[int]:
        """Nodes currently holding some forwarding entry, ascending."""
        return sorted(n for n, nh in self._next_hops.items() if nh is not None)

    def as_dict(self) -> Dict[int, Optional[int]]:
        """A copy of the underlying mapping."""
        return dict(self._next_hops)

    def copy(self) -> "ForwardingGraph":
        return ForwardingGraph(self._next_hops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForwardingGraph):
            return NotImplemented
        return self._next_hops == other._next_hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ForwardingGraph entries={len(self._next_hops)}>"


class FibChangeLog:
    """Append-only, time-ordered log of FIB changes across all nodes.

    Wire a speaker's ``fib_listener`` to :meth:`record`; the experiment
    harness does this for every node.
    """

    def __init__(self) -> None:
        self._changes: List[FibChange] = []

    def record(
        self, time: float, node: int, prefix: Prefix, next_hop: Optional[int]
    ) -> None:
        """Append one change; times must be non-decreasing."""
        if self._changes and time < self._changes[-1].time:
            raise AnalysisError(
                f"FIB change at t={time} recorded after t={self._changes[-1].time}"
            )
        self._changes.append(FibChange(time, node, prefix, next_hop))

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self) -> Iterator[FibChange]:
        return iter(self._changes)

    def changes_for(self, prefix: Prefix) -> List[FibChange]:
        return [c for c in self._changes if c.prefix == prefix]

    def change_times(self, prefix: Prefix) -> List[float]:
        """Distinct change instants for ``prefix``, ascending."""
        seen = sorted({c.time for c in self._changes if c.prefix == prefix})
        return seen

    def last_change_time(self, prefix: Prefix) -> Optional[float]:
        """Time of the final FIB change for ``prefix``, or ``None``."""
        times = self.change_times(prefix)
        return times[-1] if times else None

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def snapshot_at(self, prefix: Prefix, time: float) -> ForwardingGraph:
        """The forwarding graph for ``prefix`` as of ``time`` (inclusive)."""
        graph = ForwardingGraph()
        for change in self._changes:
            if change.time > time:
                break
            if change.prefix == prefix:
                graph.set_next_hop(change.node, change.next_hop)
        return graph

    def epochs(
        self, prefix: Prefix, start: float, end: float
    ) -> Iterator[Tuple[float, float, ForwardingGraph]]:
        """Yield ``(epoch_start, epoch_end, graph)`` covering ``[start, end)``.

        Each yielded graph is constant over its interval; consecutive graphs
        differ.  The first epoch starts exactly at ``start`` with the state
        accumulated up to (and including) ``start``.  Zero-length epochs
        (several changes at one instant) are merged away.
        """
        if end < start:
            raise AnalysisError(f"epoch window end {end} before start {start}")
        relevant = [c for c in self._changes if c.prefix == prefix]
        graph = ForwardingGraph()
        index = 0
        while index < len(relevant) and relevant[index].time <= start:
            graph.set_next_hop(relevant[index].node, relevant[index].next_hop)
            index += 1

        cursor = start
        while cursor < end:
            # Absorb every change at the next change instant (if within window).
            next_time = relevant[index].time if index < len(relevant) else None
            if next_time is None or next_time >= end:
                yield (cursor, end, graph.copy())
                return
            if next_time > cursor:
                yield (cursor, next_time, graph.copy())
                cursor = next_time
            # lint: allow(float-time-eq) -- next_time was read from this
            # very list, so equality groups records sharing one float value.
            while (
                index < len(relevant)
                and relevant[index].time == next_time  # lint: allow(float-time-eq)
            ):
                graph.set_next_hop(relevant[index].node, relevant[index].next_hop)
                index += 1
