"""Routing policy hooks.

The paper assumes "a shortest-path routing policy, and the smaller node ID is
used for tie-breaking between equal length paths".  That is the default
policy here; the :class:`RoutingPolicy` interface additionally exposes the
standard BGP policy knobs (import/export filtering, LOCAL_PREF assignment) so
the library is usable beyond the paper's scenarios.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import ConfigError
from .messages import Prefix
from .route import DEFAULT_LOCAL_PREF, Route


class RoutingPolicy:
    """Base policy: accept everything, shortest path, low-id tie-break.

    Subclass and override any hook.  All hooks are pure functions of their
    arguments; policies must not keep per-call mutable state, because the
    speaker may re-evaluate routes at any time.
    """

    # ------------------------------------------------------------------
    # Import side
    # ------------------------------------------------------------------

    def accept_import(self, neighbor: int, route: Route) -> bool:
        """Whether to store ``route`` learned from ``neighbor``.

        Loop detection (path-based poison reverse) happens *before* this
        hook and cannot be disabled by policy.
        """
        del neighbor, route
        return True

    def local_pref(self, neighbor: int, route: Route) -> int:
        """LOCAL_PREF to assign to a route learned from ``neighbor``."""
        del neighbor, route
        return DEFAULT_LOCAL_PREF

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def preference_key(self, route: Route) -> Tuple:
        """Total-order key; the *smallest* key wins.

        Default: higher LOCAL_PREF, then shorter AS path, then smaller
        next-hop node id (local origination, next_hop ``None``, sorts before
        every neighbor — a node always prefers its own origination).
        """
        next_hop_rank = -1 if route.next_hop is None else route.next_hop
        return (-route.local_pref, route.hop_count, next_hop_rank)

    # ------------------------------------------------------------------
    # Export side
    # ------------------------------------------------------------------

    def accept_export(self, neighbor: int, route: Route) -> bool:
        """Whether to advertise ``route`` to ``neighbor``.

        Default full-mesh transit: advertise the best route to every peer
        (the receiver's poison reverse handles paths containing itself).
        """
        del neighbor, route
        return True


class ShortestPathPolicy(RoutingPolicy):
    """The paper's policy, by its own name — identical to the base class."""


class NoTransitForPrefix(RoutingPolicy):
    """Example policy: refuse to transit traffic for one prefix.

    A route for ``prefix`` learned from a neighbor is used locally but never
    re-exported.  Included as a realistic policy-hook exercise for tests and
    examples; the paper's experiments do not use it.
    """

    def __init__(self, prefix: Prefix) -> None:
        self._prefix = prefix

    def accept_export(self, neighbor: int, route: Route) -> bool:
        if route.prefix == self._prefix and not route.is_local:
            return False
        return True


class PreferNeighbor(RoutingPolicy):
    """Example policy: LOCAL_PREF boost for routes via a chosen neighbor."""

    def __init__(self, neighbor: int, boost: int = 50) -> None:
        self._neighbor = neighbor
        self._boost = boost

    def local_pref(self, neighbor: int, route: Route) -> int:
        base = DEFAULT_LOCAL_PREF
        if neighbor == self._neighbor:
            return base + self._boost
        return base


class PathRankPolicy(RoutingPolicy):
    """An explicit ranked-path-list policy — the Stable Paths Problem form.

    The stability literature (Griffin–Shepherd–Wilfong's SPP, and the
    DISAGREE / BAD-GADGET / wedgie gadgets built on it) specifies each
    node's policy as an ordered list of *permitted* paths to the
    destination: anything off the list is filtered, and among permitted
    paths the earlier one always wins regardless of length.  This class
    realizes that spec over the standard policy hooks, so the deliberately
    unsafe gadget scenarios run on the unmodified speaker.

    ``ranked`` is the permitted list in *node-path* notation, best first:
    each entry starts at ``node`` itself and ends at the destination, e.g.
    ``PathRankPolicy(1, [(1, 2, 0), (1, 0)])`` — node 1 prefers the route
    through 2 over its direct route to 0.  Routes for other prefixes are
    untouched (accepted, default preference).

    All hooks are pure lookups into state fixed at construction (REP107).
    """

    _RANK_STRIDE = 10_000

    def __init__(
        self,
        node: int,
        ranked: Sequence[Sequence[int]],
        prefix: Prefix = "dest",
    ) -> None:
        self._node = node
        self._prefix = prefix
        rank_of = {}
        for rank, node_path in enumerate(ranked):
            steps = tuple(int(n) for n in node_path)
            if not steps or steps[0] != node:
                raise ConfigError(
                    f"ranked path {steps} must start at node {node}"
                )
            if len(set(steps)) != len(steps):
                raise ConfigError(f"ranked path {steps} repeats a node")
            stored = steps[1:]  # as held in the RIB: own head stripped
            if not stored:
                raise ConfigError(
                    f"ranked path {steps} has no next hop; local origination "
                    f"is implicit and never ranked"
                )
            if stored in rank_of:
                raise ConfigError(f"ranked path {steps} listed twice")
            rank_of[stored] = rank
        self._rank_of = rank_of

    def accept_import(self, neighbor: int, route: Route) -> bool:
        del neighbor
        if route.prefix != self._prefix:
            return True
        return route.path.ases in self._rank_of

    def local_pref(self, neighbor: int, route: Route) -> int:
        del neighbor
        if route.prefix != self._prefix:
            return DEFAULT_LOCAL_PREF
        rank = self._rank_of.get(route.path.ases)
        if rank is None:
            return DEFAULT_LOCAL_PREF
        # Strictly decreasing in rank, so the default preference key
        # (-local_pref first) reproduces the list order exactly; the
        # stride keeps every ranked path above any unranked default.
        return self._RANK_STRIDE - rank
