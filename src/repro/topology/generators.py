"""Parametric topology generators.

These produce the regular topologies the paper simulates (Clique, B-Clique)
plus a family of standard shapes (chain, ring, star, tree, grid) used by the
test suite and by ablation benchmarks.  All generators take an optional link
``delay`` so experiments can deviate from the paper's 2 ms default.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TopologyError
from .graph import DEFAULT_LINK_DELAY, Topology


def clique(n: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """Full mesh of ``n`` nodes (paper Figure 3(a)).

    The destination AS in a Tdown experiment is node 0, matching the
    literature's convention for clique convergence studies.
    """
    if n < 2:
        raise TopologyError(f"clique needs at least 2 nodes, got {n}")
    topo = Topology(f"clique-{n}")
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_edge(u, v, delay)
    return topo


def b_clique(n: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """The paper's B-Clique topology of size ``n`` (Figure 3(b)): 2n nodes.

    Nodes ``0..n-1`` form a chain, nodes ``n..2n-1`` form a clique, node 0
    connects to node ``n`` and node ``n-1`` connects to node ``2n-1``.  It
    models an edge network (node 0) with a direct link to the core and a long
    backup path through the chain.  The Tlong event fails link ``(0, n)``.
    """
    if n < 2:
        raise TopologyError(f"b-clique needs size >= 2, got {n}")
    topo = Topology(f"b-clique-{n}")
    for i in range(n - 1):                     # the chain 0..n-1
        topo.add_edge(i, i + 1, delay)
    for u in range(n, 2 * n):                  # the clique n..2n-1
        for v in range(u + 1, 2 * n):
            topo.add_edge(u, v, delay)
    topo.add_edge(0, n, delay)                 # direct edge-to-core link
    topo.add_edge(n - 1, 2 * n - 1, delay)     # backup chain into the core
    return topo


def chain(n: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """A line of ``n`` nodes: 0-1-2-...-(n-1)."""
    if n < 2:
        raise TopologyError(f"chain needs at least 2 nodes, got {n}")
    topo = Topology(f"chain-{n}")
    for i in range(n - 1):
        topo.add_edge(i, i + 1, delay)
    return topo


def ring(n: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """A cycle of ``n`` nodes; the worst-case shape for §3.2's loop bound."""
    if n < 3:
        raise TopologyError(f"ring needs at least 3 nodes, got {n}")
    topo = chain(n, delay)
    topo.name = f"ring-{n}"
    topo.add_edge(n - 1, 0, delay)
    return topo


def star(n: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """Hub node 0 with ``n - 1`` spokes."""
    if n < 2:
        raise TopologyError(f"star needs at least 2 nodes, got {n}")
    topo = Topology(f"star-{n}")
    for leaf in range(1, n):
        topo.add_edge(0, leaf, delay)
    return topo


def binary_tree(depth: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """Complete binary tree of the given depth (root = node 0)."""
    if depth < 1:
        raise TopologyError(f"tree depth must be >= 1, got {depth}")
    topo = Topology(f"tree-{depth}")
    num_nodes = 2 ** (depth + 1) - 1
    for child in range(1, num_nodes):
        topo.add_edge((child - 1) // 2, child, delay)
    return topo


def grid(rows: int, cols: int, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """A rows × cols mesh; node id is ``r * cols + c``."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs >= 2 nodes, got {rows}x{cols}")
    topo = Topology(f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_edge(node, node + 1, delay)
            if r + 1 < rows:
                topo.add_edge(node, node + cols, delay)
    return topo


def ring_with_core(m: int, backup_len: int = 2, delay: float = DEFAULT_LINK_DELAY) -> Topology:
    """The §3.2 analysis shape: an m-ring with primary and backup exits.

    Nodes ``0..m-1`` form the ring (the potential loop c_1..c_m).  Node
    ``m`` is the destination, directly attached to ring node 0 (the
    primary exit).  A backup chain of ``backup_len`` nodes connects ring
    node 1 to the destination, giving the network a longer alternate route.
    Failing link ``(0, m)`` is then a genuine Tlong event that forces the
    ring members through stale paths via each other — the Figure 2
    situation — before they converge onto the backup chain.
    """
    if m < 3:
        raise TopologyError(f"ring size must be >= 3, got {m}")
    if backup_len < 0:
        raise TopologyError(f"backup length must be >= 0, got {backup_len}")
    topo = ring(m, delay)
    topo.name = f"ring{m}-backup{backup_len}"
    destination = m
    topo.add_edge(0, destination, delay)
    prev = 1
    for extra in range(m + 1, m + 1 + backup_len):
        topo.add_edge(prev, extra, delay)
        prev = extra
    topo.add_edge(prev, destination, delay)
    return topo


def named_generator(kind: str):
    """Look up a generator function by its short name.

    Supported names: ``clique``, ``b-clique``, ``chain``, ``ring``, ``star``,
    ``grid`` (takes ``rows, cols``), ``tree`` (takes ``depth``).
    """
    table = {
        "clique": clique,
        "b-clique": b_clique,
        "bclique": b_clique,
        "chain": chain,
        "ring": ring,
        "star": star,
        "grid": grid,
        "tree": binary_tree,
    }
    try:
        return table[kind]
    except KeyError:
        raise TopologyError(
            f"unknown topology kind {kind!r}; expected one of {sorted(table)}"
        ) from None


def destination_for(topo: Topology, kind: Optional[str] = None) -> int:
    """The conventional destination AS for a generated topology.

    Clique, B-Clique, chain, ring and star experiments all use node 0 as the
    destination, matching the paper's setup.
    """
    del kind  # all built-in shapes share the convention
    if not topo.has_node(0):
        raise TopologyError(f"topology {topo.name!r} has no node 0")
    return 0
