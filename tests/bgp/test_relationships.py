"""Tests for Gao-Rexford relationships and valley-free routing."""

import pytest

from repro.bgp import (
    AsPath,
    BgpConfig,
    BgpSpeaker,
    GaoRexfordPolicy,
    Relationship,
    Route,
    is_valley_free,
    relationships_from_tiers,
)
from repro.engine import RandomStreams, Scheduler
from repro.errors import ProtocolError
from repro.net import Network
from repro.topology import Tier, Topology, internet_like_with_tiers

PREFIX = "dest"
C, P, E = Relationship.CUSTOMER, Relationship.PROVIDER, Relationship.PEER


def route_via(neighbor, *tail, prefix=PREFIX):
    return Route(prefix=prefix, path=AsPath((neighbor,) + tail), next_hop=neighbor)


class TestPolicyRules:
    @pytest.fixture
    def policy(self):
        # Neighbors: 1 is our customer, 2 a peer, 3 our provider.
        return GaoRexfordPolicy({1: C, 2: E, 3: P})

    def test_local_pref_prefers_customers(self, policy):
        assert (
            policy.local_pref(1, route_via(1, 0))
            > policy.local_pref(2, route_via(2, 0))
            > policy.local_pref(3, route_via(3, 0))
        )

    def test_customer_route_beats_shorter_provider_route(self, policy):
        customer = route_via(1, 9, 8, 0)
        customer = Route(
            prefix=PREFIX,
            path=customer.path,
            next_hop=1,
            local_pref=policy.local_pref(1, customer),
        )
        provider = route_via(3, 0)
        provider = Route(
            prefix=PREFIX,
            path=provider.path,
            next_hop=3,
            local_pref=policy.local_pref(3, provider),
        )
        assert policy.preference_key(customer) < policy.preference_key(provider)

    def test_customer_routes_exported_to_everyone(self, policy):
        route = route_via(1, 0)
        assert policy.accept_export(2, route)
        assert policy.accept_export(3, route)

    def test_peer_and_provider_routes_only_to_customers(self, policy):
        for learned_from in (2, 3):
            route = route_via(learned_from, 0)
            assert policy.accept_export(1, route)       # to customer: yes
            other = 3 if learned_from == 2 else 2
            assert not policy.accept_export(other, route)

    def test_own_routes_exported_to_everyone(self, policy):
        from repro.bgp import local_route

        route = local_route(PREFIX)
        assert all(policy.accept_export(n, route) for n in (1, 2, 3))

    def test_unknown_neighbor_raises(self, policy):
        with pytest.raises(ProtocolError, match="no business relationship"):
            policy.relationship(99)


class TestRelationshipsFromTiers:
    def test_tier_orientation(self):
        topo = Topology.from_edges([(0, 1), (1, 2), (0, 3)])
        tiers = {0: Tier.CORE, 1: Tier.TRANSIT, 2: Tier.STUB, 3: Tier.CORE}
        rel = relationships_from_tiers(topo, tiers)
        assert rel[0][1] == C          # core sees transit as customer
        assert rel[1][0] == P
        assert rel[1][2] == C          # transit sees stub as customer
        assert rel[2][1] == P
        assert rel[0][3] == E == rel[3][0]  # core-core peering

    def test_transit_chain_orientation(self):
        topo = Topology.from_edges([(4, 7)])
        tiers = {4: Tier.TRANSIT, 7: Tier.TRANSIT}
        rel = relationships_from_tiers(topo, tiers)
        assert rel[4][7] == C  # smaller id is the provider
        assert rel[7][4] == P

    def test_stub_to_stub_link_becomes_peering(self):
        # Generated graphs never wire stub-stub, but hand-built ones may;
        # neither stub can sell transit, so peering is the only sane tie.
        topo = Topology.from_edges([(5, 6)])
        rel = relationships_from_tiers(topo, {5: Tier.STUB, 6: Tier.STUB})
        assert rel[5][6] == E == rel[6][5]

    def test_missing_tier_rejected(self):
        from repro.errors import ConfigError

        topo = Topology.from_edges([(0, 1)])
        with pytest.raises(ConfigError, match="missing from tier map"):
            relationships_from_tiers(topo, {0: Tier.CORE})

    def test_missing_tier_on_either_endpoint_is_config_error(self):
        # A hole in the tier map must surface as ConfigError, never as a
        # raw KeyError leaking the implementation.
        from repro.errors import ConfigError

        topo = Topology.from_edges([(0, 1), (1, 2)])
        for tiers in (
            {1: Tier.TRANSIT, 2: Tier.STUB},          # first endpoint
            {0: Tier.CORE, 1: Tier.TRANSIT},          # second endpoint
            {},                                        # everything missing
        ):
            with pytest.raises(ConfigError):
                relationships_from_tiers(topo, tiers)

    def test_unknown_tier_label_is_config_error(self):
        from repro.errors import ConfigError

        topo = Topology.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            relationships_from_tiers(topo, {0: Tier.CORE, 1: "mezzanine"})

    def test_isolated_nodes_get_empty_maps(self):
        topo = Topology.from_edges([(0, 1)])
        topo.add_node(7)
        rel = relationships_from_tiers(
            topo, {0: Tier.CORE, 1: Tier.STUB, 7: Tier.STUB}
        )
        assert rel[0][1] == C and rel[1][0] == P
        assert rel[7] == {}

    def test_generated_graph_fully_covered(self):
        topo, tiers = internet_like_with_tiers(30, seed=2)
        rel = relationships_from_tiers(topo, tiers)
        for u, v, _d in topo.edges():
            assert v in rel[u] and u in rel[v]


class TestValleyFree:
    REL = {
        # hierarchy: 0 (core) over 1, 2 (transit, peers of each other via
        # their ranks being different ids doesn't apply here) over 3, 4.
        0: {1: C, 2: C},
        1: {0: P, 2: E, 3: C},
        2: {0: P, 1: E, 4: C},
        3: {1: P},
        4: {2: P},
    }

    def test_uphill_then_downhill_ok(self):
        # 3 -> 1 -> 0 -> 2 -> 4 (climb, cross the core, descend).
        assert is_valley_free([4, 2, 0, 1, 3], self.REL)

    def test_single_peering_step_ok(self):
        # 3 -> 1 -> 2 -> 4 (climb, one peer edge, descend).
        assert is_valley_free([4, 2, 1, 3], self.REL)

    def test_valley_rejected(self):
        # Announcement direction: 0 -> 1 (down to customer), then 1 -> 2
        # (peer edge after descending) — a classic valley.
        assert not is_valley_free([2, 1, 0], self.REL)

    def test_ascend_after_peering_is_a_valley(self):
        # Announcement: 3 -> 1 (up), 1 -> 2 (peer), 2 -> 0 (up after peer).
        assert not is_valley_free([0, 2, 1, 3], self.REL)

    def test_double_peering_rejected(self):
        rel = {
            1: {2: E}, 2: {1: E, 3: E}, 3: {2: E},
        }
        assert not is_valley_free([3, 2, 1], rel)

    def test_trivial_paths(self):
        assert is_valley_free([5], self.REL)
        assert is_valley_free([], self.REL)


class TestGaoRexfordConvergence:
    """End-to-end: a tiered AS graph under Gao-Rexford policies converges
    to all-reachable, valley-free routing."""

    def converge(self, n=24, seed=3):
        from repro.topology import InternetShape

        # Gao-Rexford semantics require a fully-meshed tier-1 core: peer
        # routes are never re-exported to peers, so a partially-meshed core
        # can legitimately strand far-side core nodes.
        shape = InternetShape(core_mesh_probability=1.0)
        topo, tiers = internet_like_with_tiers(n, seed=seed, shape=shape)
        relationships = relationships_from_tiers(topo, tiers)
        scheduler = Scheduler()
        streams = RandomStreams(seed)
        config = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))

        def factory(nid, sch):
            return BgpSpeaker(
                nid,
                sch,
                config=config,
                streams=streams,
                policy=GaoRexfordPolicy(relationships[nid]),
            )

        network = Network(topo, scheduler, factory)
        origin = max(topo.nodes)  # a stub AS originates
        network.node(origin).originate(PREFIX)
        network.start()
        scheduler.run(max_events=500_000)
        return network, relationships, origin

    def test_all_nodes_reach_the_stub_destination(self):
        network, _rel, origin = self.converge()
        for nid, node in network.nodes.items():
            assert node.best_route(PREFIX) is not None, f"node {nid} unreachable"
            node.check_invariants()

    def test_every_selected_path_is_valley_free(self):
        network, relationships, _origin = self.converge()
        for nid, node in network.nodes.items():
            path = node.full_path(PREFIX)
            assert path is not None
            assert is_valley_free(list(path), relationships), (
                f"node {nid} selected non-valley-free path {path!r}"
            )

    def test_customer_routes_win_over_shorter_provider_routes(self):
        network, relationships, _origin = self.converge()
        from repro.bgp import Relationship

        for nid, node in network.nodes.items():
            best = node.best_route(PREFIX)
            if best is None or best.is_local:
                continue
            best_rel = relationships[nid][best.next_hop]
            if best_rel is Relationship.CUSTOMER:
                continue
            # If the best is a peer/provider route, no customer route may
            # exist in the Adj-RIB-In.
            for neighbor, route in node.adj_rib_in.entries():
                if route.prefix != PREFIX:
                    continue
                assert relationships[nid][neighbor] is not Relationship.CUSTOMER
