"""On-disk layout and single-daemon locking for one service instance.

Everything the sweep service persists lives under one *state directory*:

.. code-block:: text

    <state>/
        daemon.sock          # Unix-domain socket (exists while serving)
        jobs.jsonl           # durable job queue (CRC-framed JSONL)
        jobs.jsonl.lock      # queue writer lock (flock sidecar)
        daemon.lock          # one-daemon-per-state-dir lock
        journals/
            <job-id>.trials.jsonl   # per-job crash-safe trial journal
        artifacts/
            <job-id>/               # figure tables, bench documents, traces

The trial journals are ordinary :class:`~repro.experiments.journal.
SweepJournal` files — the same system of record a foreground
``repro sweep --journal`` writes — which is exactly why a SIGKILLed
daemon resumes: restarting the job re-runs only the ``(x, seed)`` trials
whose records never landed.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ServiceError
from ..experiments.journal import WriterLock


class ServiceState:
    """Path bookkeeping for one service state directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    @property
    def socket_path(self) -> Path:
        return self.root / "daemon.sock"

    @property
    def queue_path(self) -> Path:
        return self.root / "jobs.jsonl"

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    @property
    def artifacts_dir(self) -> Path:
        return self.root / "artifacts"

    def journal_path(self, job_id: str) -> Path:
        return self.journals_dir / f"{job_id}.trials.jsonl"

    def artifact_dir(self, job_id: str) -> Path:
        return self.artifacts_dir / job_id

    def ensure_layout(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self.journals_dir.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)

    def daemon_lock(self) -> WriterLock:
        """The one-daemon-per-state-dir lock (``daemon.lock`` sidecar).

        Acquired (non-blocking) by the daemon on startup; a second
        daemon pointed at the same state directory fails fast instead of
        double-executing the queue.
        """
        return WriterLock(self.root / "daemon")

    def require_socket(self) -> Path:
        """The socket path, raising :class:`~repro.errors.ServiceError`
        with a remedy when no daemon appears to be serving."""
        path = self.socket_path
        if not path.exists():
            raise ServiceError(
                f"no service daemon socket at {path}; start one with "
                f"`repro serve --state {self.root}`"
            )
        return path
