"""Unit tests for AS-path algebra."""

import pytest

from repro.bgp import AsPath
from repro.errors import ProtocolError


class TestConstruction:
    def test_empty_path(self):
        path = AsPath.empty()
        assert path.is_empty
        assert len(path) == 0
        assert path.head is None
        assert path.origin is None

    def test_basic_path(self):
        path = AsPath((5, 4, 0))
        assert len(path) == 3
        assert path.head == 5
        assert path.origin == 0
        assert list(path) == [5, 4, 0]

    def test_duplicate_ases_rejected(self):
        with pytest.raises(ProtocolError):
            AsPath((1, 2, 1))

    def test_negative_asn_rejected(self):
        with pytest.raises(ProtocolError):
            AsPath((1, -2))

    def test_value_equality_and_hash(self):
        assert AsPath((1, 2)) == AsPath((1, 2))
        assert AsPath((1, 2)) != AsPath((2, 1))
        assert hash(AsPath((1, 2))) == hash(AsPath((1, 2)))

    def test_repr_matches_paper_notation(self):
        assert repr(AsPath((5, 4, 0))) == "(5 4 0)"


class TestPrepend:
    def test_prepend_puts_asn_at_head(self):
        assert AsPath((4, 0)).prepend(5) == AsPath((5, 4, 0))

    def test_prepend_existing_asn_rejected(self):
        with pytest.raises(ProtocolError):
            AsPath((4, 0)).prepend(4)

    def test_prepend_to_empty(self):
        assert AsPath.empty().prepend(0) == AsPath((0,))

    def test_prepend_is_pure(self):
        original = AsPath((4, 0))
        original.prepend(5)
        assert original == AsPath((4, 0))


class TestContainment:
    def test_contains(self):
        path = AsPath((5, 4, 0))
        assert 4 in path
        assert 9 not in path

    def test_contains_any(self):
        path = AsPath((5, 4, 0))
        assert path.contains_any([9, 4])
        assert not path.contains_any([9, 8])
        assert not path.contains_any([])


class TestConcat:
    def test_concat_is_paper_dot_operator(self):
        # (c1 c2) . path(c2, old) with path(ck, old) = (7 0)
        assert AsPath((1, 2)).concat(AsPath((7, 0))) == AsPath((1, 2, 7, 0))

    def test_concat_with_empty(self):
        path = AsPath((1, 2))
        assert path.concat(AsPath.empty()) == path
        assert AsPath.empty().concat(path) == path

    def test_concat_overlapping_rejected(self):
        with pytest.raises(ProtocolError):
            AsPath((1, 2)).concat(AsPath((2, 3)))


class TestSuffix:
    def test_suffix_from_member(self):
        assert AsPath((5, 4, 0)).suffix_from(4) == AsPath((4, 0))

    def test_suffix_from_head_is_whole_path(self):
        path = AsPath((5, 4, 0))
        assert path.suffix_from(5) == path

    def test_suffix_from_nonmember_is_none(self):
        assert AsPath((5, 4, 0)).suffix_from(9) is None

    def test_next_after(self):
        path = AsPath((5, 4, 0))
        assert path.next_after(5) == 4
        assert path.next_after(0) is None
        assert path.next_after(9) is None

    def test_indexing(self):
        path = AsPath((5, 4, 0))
        assert path[0] == 5
        assert path[-1] == 0
        assert path[1:] == (4, 0)
