"""Property-based tests for the AsPath intern table.

The hot-path speedup rests on three promises the intern table makes:
interning is idempotent (same sequence -> same object), value semantics
are indistinguishable from the un-interned tuple semantics, and pickling
re-interns on load so paths crossing into sweep workers keep the identity
fast path.  Each promise gets a property here.
"""

import pickle

from hypothesis import given, strategies as st

from repro.bgp import AsPath, intern_path
from repro.bgp.path import intern_table_size

# Valid AS paths: non-negative ASNs without duplicates.
as_sequences = st.lists(
    st.integers(min_value=0, max_value=10_000), unique=True, max_size=8
)


@given(as_sequences)
def test_intern_is_idempotent(ases):
    assert AsPath.of(ases) is AsPath.of(tuple(ases))
    assert AsPath.of(ases) is intern_path(ases)


@given(as_sequences, as_sequences)
def test_eq_and_hash_agree_with_tuple_semantics(left, right):
    a, b = AsPath.of(left), AsPath.of(right)
    assert (a == b) == (tuple(left) == tuple(right))
    if a == b:
        assert hash(a) == hash(b)
        assert a is b  # interning makes value equality an identity check


@given(as_sequences)
def test_uninterned_twin_is_equal_and_hash_compatible(ases):
    # Direct construction (tests, ad-hoc analysis) must stay value-
    # compatible with the canonical instance even though it is a
    # distinct object.
    interned = AsPath.of(ases)
    twin = AsPath(ases)
    assert twin == interned
    assert hash(twin) == hash(interned)
    if ases:
        assert twin is not interned


@given(as_sequences, st.integers(min_value=0, max_value=10_500))
def test_membership_matches_tuple_membership(ases, probe):
    assert (probe in AsPath.of(ases)) == (probe in tuple(ases))


@given(as_sequences)
def test_pickle_round_trip_reinterns(ases):
    # Sweep workers unpickle routes shipped across the process boundary;
    # __reduce__ routes them through intern_path, so the loaded path is
    # the receiving process's canonical instance, not a fresh copy.
    original = AsPath.of(ases)
    loaded = pickle.loads(pickle.dumps(original))
    assert loaded is original
    assert intern_table_size() == intern_table_size()  # no duplicate entry


@given(as_sequences, st.integers(min_value=10_001, max_value=10_100))
def test_algebra_results_are_interned(ases, head):
    path = AsPath.of(ases)
    prepended = path.prepend(head)
    assert prepended is AsPath.of((head, *ases))
    assert prepended.suffix_from(head) is prepended
    if ases:
        assert path.suffix_from(ases[0]) is path
    assert AsPath.empty() is AsPath.of(())
