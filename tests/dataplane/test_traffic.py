"""Unit tests for CBR traffic arithmetic."""

import pytest

from repro.dataplane import CbrSource, sources_for
from repro.errors import ConfigError


class TestCbrSource:
    def test_departure_times(self):
        src = CbrSource(node=1, rate=10.0, start=2.0)
        assert src.departure_time(0) == 2.0
        assert src.departure_time(5) == pytest.approx(2.5)

    def test_interval(self):
        assert CbrSource(node=1, rate=4.0).interval == 0.25

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            CbrSource(node=1, rate=0.0)

    def test_negative_index(self):
        with pytest.raises(ConfigError):
            CbrSource(node=1).departure_time(-1)


class TestCounting:
    def test_count_in_simple_window(self):
        src = CbrSource(node=1, rate=10.0, start=0.0)
        assert src.count_in(0.0, 1.0) == 10

    def test_window_is_half_open(self):
        src = CbrSource(node=1, rate=10.0, start=0.0)
        # Packet at exactly t=1.0 belongs to the NEXT window.
        assert src.count_in(0.0, 1.0) + src.count_in(1.0, 2.0) == src.count_in(0.0, 2.0)

    def test_count_before_start(self):
        src = CbrSource(node=1, rate=10.0, start=5.0)
        assert src.count_in(0.0, 5.0) == 0
        assert src.count_in(0.0, 5.1) == 1

    def test_empty_window(self):
        src = CbrSource(node=1, rate=10.0)
        assert src.count_in(3.0, 3.0) == 0
        assert src.count_in(3.0, 2.0) == 0

    def test_count_matches_times(self):
        src = CbrSource(node=1, rate=3.0, start=0.7)
        for t0, t1 in [(0.0, 2.0), (0.7, 1.7), (1.0, 1.05), (5.5, 9.25)]:
            assert src.count_in(t0, t1) == len(list(src.times_in(t0, t1)))

    def test_times_in_are_ascending_and_in_window(self):
        src = CbrSource(node=1, rate=7.0, start=0.3)
        times = list(src.times_in(1.0, 2.0))
        assert times == sorted(times)
        assert all(1.0 <= t < 2.0 for t in times)

    def test_first_index_at_or_after(self):
        src = CbrSource(node=1, rate=10.0, start=0.0)
        assert src.first_index_at_or_after(0.0) == 0
        assert src.first_index_at_or_after(0.1) == 1
        assert src.first_index_at_or_after(0.05) == 1
        # Floating-point guard: an instant a hair before a departure still
        # maps to that departure.
        assert src.first_index_at_or_after(0.3 - 1e-15) == 3


class TestSourcesFor:
    def test_one_source_per_non_destination_node(self):
        sources = sources_for([0, 1, 2, 3], destination=2)
        assert [s.node for s in sources] == [0, 1, 3]

    def test_stagger_offsets_phases(self):
        sources = sources_for([0, 1, 2], destination=0, stagger=0.01)
        assert sources[0].start != sources[1].start

    def test_rate_passthrough(self):
        sources = sources_for([0, 1], destination=0, rate=25.0)
        assert sources[0].rate == 25.0
