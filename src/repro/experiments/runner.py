"""The single-run experiment driver.

:func:`run_experiment` executes the paper's measurement protocol end to end:

1. Build the network of :class:`~repro.bgp.speaker.BgpSpeaker` nodes over the
   scenario's topology; the destination AS originates the prefix.
2. Run to quiescence — the warm-up convergence that establishes steady-state
   routing (its messages are excluded from all metrics).
3. Inject the scenario's event — Tdown origin withdrawal, Tlong link
   failure, one of the churn events (session reset, node crash, link
   flap), or a Tagg aggregate/deaggregate cycle — after a short guard
   interval.
4. Run to quiescence again, with an event budget as a non-convergence alarm.
   With the session layer enabled the run gets a *settle* window sized to
   the hold time, so detections carried by housekeeping timers still fire;
   quiescence is judged on substantive events only (keepalive heartbeats
   never block it).
5. Measure: convergence time from the message trace, packet fates from the
   FIB change log via the epoch evaluator, and per-loop lifetimes from the
   loop timeline.

A run that exhausts its budget or horizon raises
:class:`~repro.errors.BudgetExceededError` carrying a
:class:`~repro.experiments.diagnostics.DiagnosticSnapshot` of the dying
simulation, so sweeps can record the post-mortem and continue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotation only)
    from ..analysis.determinism import RunFingerprint
    from ..analysis.stability import StabilityReport
    from ..telemetry import MetricsSnapshot, Timeline

from ..bgp import BgpConfig, BgpSpeaker, RoutingPolicy
from ..bgp.aggregation import apply_aggregate, apply_deaggregate
from ..core import LoopStudyResult, loop_timeline, measure_convergence
from ..core.exploration import RouteChangeLog
from ..dataplane import (
    EpochEvaluator,
    FibChangeLog,
    TrafficMatrix,
    TrafficMatrixEvaluator,
    sources_for,
)
from ..engine import RandomStreams, Scheduler
from ..errors import BudgetExceededError, ConfigError, SchedulingError
from ..net import LinkFlap, Network, NodeCrash, SessionReset
from .config import RunSettings
from .diagnostics import capture_snapshot
from .scenarios import EventKind, Scenario

PolicyFactory = Callable[[int], RoutingPolicy]
"""``factory(node_id) -> RoutingPolicy`` for per-node policies (e.g. a
Gao-Rexford assignment); ``None`` gives every node the default
shortest-path policy."""


@dataclass
class ExperimentRun:
    """A completed run: the metrics plus enough context to interpret them.

    Everything here except ``network`` is plain data and picklable, so a
    run produced inside a parallel-sweep worker travels home intact.  The
    live ``network`` (scheduler callbacks, channels) is only retained on
    request and never crosses a process boundary; sweeps that need the
    trace digest set ``fingerprint`` before dropping it.
    """

    scenario: Scenario
    bgp_config: BgpConfig
    settings: RunSettings
    seed: int
    result: LoopStudyResult
    warmup_time: float
    failure_time: float
    end_time: float
    fib_log: FibChangeLog
    route_log: RouteChangeLog = field(default_factory=RouteChangeLog)
    network: Optional[Network] = None
    fingerprint: Optional["RunFingerprint"] = None
    """SHA-256 reduction of the run (trace/FIB/summary), populated by
    ``sweep(..., digests=True)`` as the parallel-equivalence oracle."""
    metrics: Optional["MetricsSnapshot"] = None
    """Frozen telemetry counters/gauges/histograms when
    ``settings.telemetry`` (or ``settings.timeline``) was set.  Plain
    picklable data; deliberately *not* part of the fingerprint, so
    digests stay bit-identical with telemetry on or off."""
    timeline: Optional["Timeline"] = None
    """Simulation-time instants and spans when ``settings.timeline`` was
    set; export with ``timeline.write_chrome_trace(path)`` or
    ``timeline.write_jsonl(path)``."""
    attempt: int = 1
    """Which attempt produced this run (resilient sweeps only; > 1 means
    earlier attempts were lost to worker death or watchdog timeout and
    the identical task was re-run).  Provenance, not simulation state —
    deliberately outside the fingerprint."""
    stability: Optional["StabilityReport"] = None
    """Static policy-stability verdict when ``settings.certify`` was set
    (see :mod:`repro.analysis.stability`).  Computed without scheduling a
    single event, and — like ``metrics`` and ``attempt`` — deliberately
    outside the fingerprint: digests are identical with certification on
    or off."""

    @property
    def converged(self) -> bool:
        """True when the post-failure phase reached quiescence."""
        return self.end_time < self.failure_time + self.settings.horizon


def build_network(
    scenario: Scenario,
    bgp_config: BgpConfig,
    streams: RandomStreams,
    scheduler: Scheduler,
    fib_log: FibChangeLog,
    policy_factory: Optional[PolicyFactory] = None,
    route_log: Optional[RouteChangeLog] = None,
) -> Network:
    """Instantiate speakers over the scenario topology, origin configured."""

    def factory(node_id: int, sched: Scheduler) -> BgpSpeaker:
        return BgpSpeaker(
            node_id,
            sched,
            config=bgp_config,
            streams=streams,
            policy=policy_factory(node_id) if policy_factory else None,
            fib_listener=fib_log.record,
            route_listener=route_log.record if route_log is not None else None,
        )

    network = Network(scenario.topology, scheduler, factory)
    # Legacy single-prefix scenarios yield exactly ((destination, prefix),)
    # here, so this loop is the historical code path bit-for-bit.
    for node_id, prefix in scenario.effective_originations:
        origin = network.node(node_id)
        assert isinstance(origin, BgpSpeaker)
        origin.originate(prefix)
    return network


def run_experiment(
    scenario: Scenario,
    bgp_config: BgpConfig,
    settings: RunSettings = RunSettings(),
    seed: int = 0,
    keep_network: bool = False,
    on_network_ready: Optional[Callable[[Network, float], None]] = None,
    policy_factory: Optional[PolicyFactory] = None,
) -> ExperimentRun:
    """Run one complete scenario and return its measurements.

    Parameters
    ----------
    scenario, bgp_config, settings:
        What to simulate.
    seed:
        Root seed for all randomness (jitter, processing delays).
    keep_network:
        Retain the live network on the returned record (tests/debugging).
    on_network_ready:
        Optional hook invoked after warm-up with ``(network, failure_time)``
        — used by validation code to attach an event-driven packet forwarder
        before the failure phase begins.
    policy_factory:
        Optional per-node routing-policy assignment (e.g. Gao-Rexford
        relationships); default is the paper's shortest-path policy.
    """
    streams = RandomStreams(seed)
    scheduler = Scheduler()
    if settings.sanitize:
        from ..analysis.sanitizers import build_suite

        scheduler.install_invariants(build_suite())
    probe = None
    if settings.telemetry or settings.timeline:
        from ..telemetry import TelemetryProbe, Timeline

        probe = TelemetryProbe(
            timeline=Timeline() if settings.timeline else None
        )
        scheduler.install_telemetry(probe)
    # Static pre-flight certification: consult the policy graph only —
    # the scheduler is untouched, so the simulation below is bit-identical
    # with certification on or off (the determinism tests pin this).
    stability = None
    if settings.certify:
        from ..analysis.stability import certify_scenario

        stability = certify_scenario(
            scenario,
            policy_factory=policy_factory,
            registry=probe.registry if probe is not None else None,
        )
    fib_log = FibChangeLog()
    route_log = RouteChangeLog()
    network = build_network(
        scenario, bgp_config, streams, scheduler, fib_log, policy_factory, route_log
    )
    network.start()

    # Sessions quiesce up to housekeeping heartbeats; the settle window keeps
    # those heartbeats (and the detections that ride on them — hold expiries)
    # firing for a bounded quiet period after routing activity stops.
    settle = None
    if bgp_config.sessions_enabled:
        settle = bgp_config.hold_time + bgp_config.effective_keepalive

    def run_phase(until: Optional[float], what: str) -> None:
        try:
            scheduler.run(
                until=until, max_events=settings.event_budget, settle=settle
            )
        except SchedulingError as exc:
            snapshot = capture_snapshot(scheduler, network)
            raise BudgetExceededError(
                f"scenario {scenario.name!r} (seed {seed}) exhausted its "
                f"{settings.event_budget}-event budget during {what}\n"
                f"{snapshot.render()}",
                snapshot=snapshot,
            ) from exc

    # Phase 1: warm-up convergence (not part of any metric).
    run_phase(None, "warm-up")
    warmup_time = scheduler.now
    failure_time = warmup_time + settings.failure_guard

    # Phase 2: inject the event.
    if scenario.event is EventKind.TDOWN:
        origin = network.node(scenario.destination)
        assert isinstance(origin, BgpSpeaker)
        scheduler.call_at(
            failure_time,
            lambda: origin.withdraw_origin(scenario.prefix),
            priority=0,
            name="tdown",
        )
    elif scenario.event is EventKind.TLONG:
        assert scenario.failed_link is not None
        u, v = scenario.failed_link
        network.schedule_link_failure(u, v, failure_time)
    elif scenario.event is EventKind.TRESET:
        assert scenario.failed_link is not None
        u, v = scenario.failed_link
        SessionReset(u, v, failure_time).inject(network)
    elif scenario.event is EventKind.TCRASH:
        assert scenario.crash_node is not None
        NodeCrash(
            scenario.crash_node, failure_time, restart_after=scenario.restart_after
        ).inject(network)
    elif scenario.event is EventKind.TFLAP:
        assert scenario.failed_link is not None and scenario.flap_period is not None
        u, v = scenario.failed_link
        LinkFlap(
            u, v, failure_time, scenario.flap_period, count=scenario.flap_count
        ).inject(network)
    elif scenario.event is EventKind.TAGG:
        assert scenario.agg_blocks and scenario.agg_hold is not None

        def inject_aggregate() -> None:
            for block in scenario.agg_blocks:
                speaker = network.node(block.origin)
                assert isinstance(speaker, BgpSpeaker)
                apply_aggregate(speaker, block)

        def inject_deaggregate() -> None:
            for block in scenario.agg_blocks:
                speaker = network.node(block.origin)
                assert isinstance(speaker, BgpSpeaker)
                apply_deaggregate(speaker, block)

        scheduler.call_at(
            failure_time, inject_aggregate, priority=0, name="tagg-aggregate"
        )
        scheduler.call_at(
            failure_time + scenario.agg_hold,
            inject_deaggregate,
            priority=0,
            name="tagg-deaggregate",
        )
    else:  # pragma: no cover - exhaustive dispatch guard
        raise ConfigError(f"unknown event kind {scenario.event!r}")

    if on_network_ready is not None:
        on_network_ready(network, failure_time)

    # Phase 3: post-failure convergence.
    run_phase(failure_time + settings.horizon, "post-failure convergence")
    if scheduler.next_substantive_time() is not None:
        snapshot = capture_snapshot(scheduler, network)
        raise BudgetExceededError(
            f"scenario {scenario.name!r} (seed {seed}) did not converge "
            f"within the {settings.horizon}s horizon\n{snapshot.render()}",
            snapshot=snapshot,
        )
    end_time = max(failure_time, scheduler.last_substantive_event_time or failure_time)

    # Phase 4: measurement.
    convergence = measure_convergence(network.trace, failure_time)
    window = (failure_time, convergence.convergence_end)
    sources = sources_for(
        scenario.topology.nodes,
        scenario.destination,
        rate=settings.packet_rate,
    )
    evaluator = EpochEvaluator(
        log=fib_log,
        prefix=scenario.prefix,
        sources=sources,
        ttl=settings.ttl,
    )
    dataplane = evaluator.evaluate(*window)
    intervals = loop_timeline(fib_log, scenario.prefix, window[0], window[1])
    # Traffic-matrix measurement (opt-in): a seeded CBR demand per
    # (source, prefix) over the steady-state originated specifics,
    # classified by LPM forwarding across *all* prefixes.  The matrix seed
    # is the run seed, so jobs=1 and jobs=N workers rebuild it identically.
    traffic = None
    if settings.traffic_matrix:
        matrix = TrafficMatrix.seeded(
            nodes=scenario.topology.nodes,
            prefixes=sorted({p for _n, p in scenario.effective_originations}),
            seed=seed,
            rate_range=(min(1.0, settings.packet_rate), settings.packet_rate),
            origins=scenario.origins_by_prefix(),
        )
        traffic = TrafficMatrixEvaluator(
            fib_log,
            matrix,
            ttl=settings.ttl,
            epoch_rows=settings.traffic_epoch_rows,
        ).evaluate(*window)
    result = LoopStudyResult(
        convergence=convergence,
        dataplane=dataplane,
        loop_intervals=intervals,
        total_messages=len(network.trace),
        traffic=traffic,
    )

    # Telemetry enrichment: lift the post-run analyses (dataplane packet
    # fates, trace tallies, loop intervals) into the same registry/timeline
    # as the live instrumentation, then freeze.  Observation only — nothing
    # here can alter the simulation that already happened.
    metrics = None
    timeline = None
    if probe is not None:
        registry = probe.registry
        registry.counter("dataplane.loops_entered").inc(len(intervals))
        registry.counter("dataplane.loops_exited").inc(
            sum(1 for iv in intervals if iv.end < window[1])
        )
        registry.counter("dataplane.ttl_exhaustions").inc(
            dataplane.ttl_exhaustions
        )
        registry.counter("dataplane.packets_sent").inc(dataplane.packets_sent)
        registry.counter("dataplane.packets_delivered").inc(dataplane.delivered)
        registry.counter("dataplane.packets_dropped_no_route").inc(
            dataplane.dropped_no_route
        )
        for kind, total in network.trace.kind_counts().items():
            registry.counter(f"trace.messages.{kind}").inc(total)
        timeline = probe.timeline
        if timeline is not None:
            timeline.span(0.0, warmup_time, "warm-up", "phase")
            timeline.instant(failure_time, "failure", "phase")
            timeline.span(failure_time, end_time, "post-failure", "phase")
            for iv in intervals:
                timeline.span(
                    iv.start,
                    iv.end,
                    f"loop[{'-'.join(str(n) for n in iv.cycle)}]",
                    "loop",
                    size=iv.size,
                )
        metrics = probe.snapshot()

    return ExperimentRun(
        scenario=scenario,
        bgp_config=bgp_config,
        settings=settings,
        seed=seed,
        result=result,
        warmup_time=warmup_time,
        failure_time=failure_time,
        end_time=end_time,
        fib_log=fib_log,
        route_log=route_log,
        network=network if keep_network else None,
        metrics=metrics,
        timeline=timeline,
        stability=stability,
    )
