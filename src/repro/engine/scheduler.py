"""The discrete-event scheduler.

This is the core of the simulation substrate that replaces SSFNET's event
kernel in the original study.  It is a classic calendar-of-events design: a
binary heap of :class:`~repro.engine.event.Event` objects, popped in
``(time, priority, sequence)`` order.

Design points that matter for reproducing the paper:

* **Determinism** — for a fixed seed every run pops events in the same order,
  because simultaneous events are tie-broken by scheduling sequence number.
* **Lazy cancellation** — protocol code cancels and re-arms MRAI timers
  constantly; cancellation just flags the event and the heap skips it later.
* **Run guards** — ``run()`` accepts both a time horizon and an event-count
  budget so runaway protocol bugs fail loudly instead of spinning forever.
* **Housekeeping events** — periodic background activity (BGP keepalives,
  hold-timer re-arms) can be scheduled with ``housekeeping=True``; such
  events never block quiescence detection, so session-mode simulations work
  with run-to-quiescence instead of requiring a fixed horizon.  A ``settle``
  window lets housekeeping keep firing for a bounded quiet period after the
  last substantive event, so detections that *ride on* housekeeping timers
  (a hold expiry after a silent failure) still get their chance to fire.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SchedulingError
from .event import Event, EventPriority

#: Heap entries are ``(time, priority, seq, event)`` tuples rather than bare
#: events: ``seq`` is unique, so heap comparisons resolve on the first three
#: (C-level) int/float fields and never fall through to the event object.
HeapEntry = Tuple[float, int, int, Event]

#: Compact the heap once at least this many cancelled entries have piled up
#: *and* they make up at least half the heap (see ``_note_cancelled``).
COMPACTION_MIN_CANCELLED = 64


class Scheduler:
    """A deterministic discrete-event scheduler.

    Typical use::

        sched = Scheduler()
        sched.call_at(1.5, lambda: print("fires at t=1.5"))
        sched.run(until=10.0)
    """

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._cancelled_pending = 0
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._last_event_time: Optional[float] = None
        self._last_substantive_time: Optional[float] = None
        self._substantive = 0
        # Optional invariant-hook object (see repro.analysis.sanitizers);
        # duck-typed so the engine never imports the analysis layer.
        self.invariants: Optional[Any] = None
        # Optional telemetry probe (see repro.telemetry.probe), same
        # duck-typed pattern: None means disabled and costs one attribute
        # read per hook site.
        self.telemetry: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def last_event_time(self) -> Optional[float]:
        """Time of the most recently fired event (``None`` before any).

        Unlike :attr:`now`, this does not advance when ``run(until=...)``
        moves the clock to an event-free horizon, so it marks the true
        quiescence point of a simulation.
        """
        return self._last_event_time

    @property
    def last_substantive_event_time(self) -> Optional[float]:
        """Time of the most recent non-housekeeping event (``None`` before any).

        This is the quiescence point of the *routing* activity: keepalive
        heartbeats and other housekeeping events do not move it.
        """
        return self._last_substantive_time

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def substantive_pending(self) -> int:
        """Number of live non-housekeeping events still pending.

        Zero means the simulation has quiesced up to housekeeping heartbeats
        (exact count: cancellations are reflected immediately).
        """
        return self._substantive

    def _adjust_substantive(self, delta: int) -> None:
        """Internal: events report cancellation/upgrade to keep the count exact."""
        self._substantive += delta

    def _note_cancelled(self) -> None:
        """Internal: a pending event was cancelled; compact if mostly dead.

        MRAI restart churn (cancel + re-arm per update sent) leaves lazily-
        deleted entries in the heap; once they are both numerous and the
        majority, rebuilding the heap without them is cheaper than sifting
        every later push/pop past them.  Compaction cannot change pop order:
        ``(time, priority, seq)`` is a strict total order, so the heapified
        survivors pop exactly as they would have.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= COMPACTION_MIN_CANCELLED
            and self._cancelled_pending * 2 >= len(self._heap)
        ):
            self._heap = [entry for entry in self._heap if not entry[3].cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Invariant hooks
    # ------------------------------------------------------------------

    def install_invariants(self, hooks: Optional[Any]) -> None:
        """Install (or, with ``None``, remove) an invariant-hook object.

        The object receives ``on_schedule`` and ``on_event_fired`` calls
        from this scheduler; other layers holding this scheduler (channels,
        speakers) dispatch their own hook points through :attr:`invariants`
        as well.  See :class:`repro.analysis.sanitizers.InvariantHooks`.
        """
        self.invariants = hooks

    def install_telemetry(self, probe: Optional[Any]) -> None:
        """Install (or, with ``None``, remove) a telemetry probe.

        The probe receives ``on_event_scheduled`` and ``on_event_fired``
        calls from this scheduler; other layers holding this scheduler
        (channels, speakers) dispatch their own hook points through
        :attr:`telemetry`.  See
        :class:`repro.telemetry.probe.TelemetryProbe`.
        """
        self.telemetry = probe

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = EventPriority.TIMER,
        name: Optional[str] = None,
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``action`` to run at absolute simulation time ``time``.

        ``housekeeping=True`` marks the event as background activity that
        must not block quiescence detection (see the module docstring).
        Returns the :class:`Event` handle, which supports ``cancel()``.
        Raises :class:`SchedulingError` if ``time`` is in the past.
        """
        if self.invariants is not None:
            self.invariants.on_schedule(self._now, time, name, housekeeping)
        if self.telemetry is not None:
            self.telemetry.on_event_scheduled(self._now, time, name, housekeeping)
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {name or action!r} at t={time}; "
                f"clock is already at t={self._now}"
            )
        event = Event(
            time,
            int(priority),
            self._seq,
            action,
            name,
            housekeeping=housekeeping,
            counter=self,
        )
        self._seq += 1
        if not housekeeping:
            self._substantive += 1
        heapq.heappush(self._heap, (event.time, event.priority, event.seq, event))
        return event

    def call_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = EventPriority.TIMER,
        name: Optional[str] = None,
        housekeeping: bool = False,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay} for {name or action!r}")
        return self.call_at(self._now + delay, action, priority, name, housekeeping)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask a running simulation to stop after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns ``True`` if an event fired, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if event.time < self._now:
                raise SchedulingError(
                    f"heap returned event {event!r} earlier than clock {self._now}"
                )
            if self.invariants is not None:
                self.invariants.on_event_fired(self._now, event.time, event.name)
            if self.telemetry is not None:
                self.telemetry.on_event_fired(
                    event.time, event.name, len(self._heap)
                )
            self._now = event.time
            self._events_processed += 1
            self._last_event_time = event.time
            event._fired = True
            if not event.housekeeping:
                self._substantive -= 1
                self._last_substantive_time = event.time
            event.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        settle: Optional[float] = None,
    ) -> float:
        """Run events until quiescence, a time horizon, or an event budget.

        Parameters
        ----------
        until:
            Absolute simulation time at which to stop.  Events scheduled at
            exactly ``until`` still fire; later ones stay queued.  ``None``
            means run to quiescence: no substantive events pending (pure
            housekeeping heartbeats — keepalive schedules and the like — do
            not keep the simulation alive).
        max_events:
            Fail-safe budget; exceeding it raises :class:`SchedulingError`
            because a healthy routing simulation always quiesces.
        settle:
            Quiet-period length in seconds.  When given, housekeeping events
            keep firing after substantive activity stops, and the run only
            ends once ``settle`` seconds of simulated time pass with no
            substantive event.  This gives detections carried *by*
            housekeeping timers — a BGP hold timer expiring after a silent
            failure — their window to fire; pick a settle longer than the
            longest such timer.  Ignored while substantive events remain.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SchedulingError("scheduler is not re-entrant; run() already active")
        self._running = True
        self._stopped = False
        fired = 0
        quiet_origin = self._now
        try:
            while self._heap and not self._stopped:
                nxt = self._heap[0][3]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_pending -= 1
                    continue
                if self._substantive == 0:
                    if settle is None:
                        if until is None:
                            break
                        # Horizon mode without settle: housekeeping runs to
                        # the horizon (legacy, e.g. manually-driven session
                        # simulations that inspect timer-driven behavior).
                    else:
                        quiet_since = (
                            self._last_substantive_time
                            if self._last_substantive_time is not None
                            else quiet_origin
                        )
                        if nxt.time > quiet_since + settle:
                            break
                if until is not None and nxt.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SchedulingError(
                        f"exceeded event budget of {max_events} events at "
                        f"t={self._now}; the protocol is likely not converging"
                    )
            else:
                if until is not None and self._now < until and not self._stopped:
                    # Heap drained before the horizon: advance clock to it so
                    # post-run measurements (e.g. traffic windows) line up.
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when quiescent."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1
        return self._heap[0][0] if self._heap else None

    def next_substantive_time(self) -> Optional[float]:
        """Time of the next pending substantive event, ``None`` if only
        housekeeping (or nothing) remains.  O(pending); diagnostics use."""
        if self._substantive == 0:
            return None
        times = [
            e.time
            for _, _, _, e in self._heap
            if not e.cancelled and not e.housekeeping
        ]
        return min(times) if times else None

    def pending_by_name(self) -> Dict[str, int]:
        """Live pending events grouped by name family (diagnostics).

        The family is the event name up to the first ``:`` — e.g. every
        ``mrai:<peer>:<prefix>`` timer counts under ``"mrai"``.
        """
        counts: Counter = Counter()
        for _, _, _, event in self._heap:
            if not event.cancelled:
                counts[(event.name or "<anonymous>").split(":", 1)[0]] += 1
        return dict(counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler t={self._now:.6f} pending={len(self._heap)}>"
