#!/usr/bin/env python
"""Observation 3: the four convergence enhancements, side by side.

Runs the five §5 protocol variants — standard BGP, SSLD, WRATE, Assertion,
Ghost Flushing — on the same Tdown events (a clique and an Internet-like
graph) and prints convergence time and TTL exhaustions per variant, plus
the paper's ranking checks.

Usage::

    python examples/enhancement_comparison.py [clique_size] [internet_size]
"""

import sys

from repro import RunSettings, VARIANT_NAMES, run_experiment, variant
from repro import tdown_clique, tdown_internet
from repro.core import check_enhancement_ranking
from repro.util import mean, render_table


def compare(make_scenario, seeds, mrai=30.0):
    rows = []
    exhaustions = {}
    for name in VARIANT_NAMES:
        config = variant(name, mrai=mrai)
        results = [
            run_experiment(make_scenario(seed), config, RunSettings(), seed=seed).result
            for seed in seeds
        ]
        exh = mean([float(r.ttl_exhaustions) for r in results])
        rows.append(
            [
                name,
                mean([r.convergence_time for r in results]),
                exh,
                mean([r.looping_ratio for r in results]),
            ]
        )
        exhaustions[name] = exh
    return rows, exhaustions


def main() -> None:
    clique_size = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    internet_size = int(sys.argv[2]) if len(sys.argv) > 2 else 29
    headers = ["variant", "convergence_s", "ttl_exhaustions", "looping_ratio"]

    print(f"Tdown on clique-{clique_size} (2 trials per variant)...")
    rows, _exh = compare(lambda seed: tdown_clique(clique_size), seeds=(0, 1))
    print(render_table(headers, rows, title=f"clique-{clique_size} Tdown") + "\n")

    print(f"Tdown on internet-{internet_size} (3 trials per variant)...")
    rows, exh = compare(
        lambda seed: tdown_internet(internet_size, seed=seed), seeds=(0, 1, 2)
    )
    print(render_table(headers, rows, title=f"internet-{internet_size} Tdown") + "\n")

    print("Observation 3 checks (on the Internet-like Tdown):")
    for check in check_enhancement_ranking(exh):
        print(f"  {check}")


if __name__ == "__main__":
    main()
