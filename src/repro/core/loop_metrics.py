"""The study's four metrics, combined into one result record.

§4.2 defines: **Overall Looping Duration** (first to last TTL exhaustion),
**Convergence Time** (failure to last update sent), **Number of TTL
Exhaustions**, and **Looping Ratio** (exhaustions / packets sent during
convergence).  :class:`LoopStudyResult` carries all four plus the supporting
detail, and is what every experiment runner returns and every figure driver
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dataplane import DataPlaneReport, TrafficReport
from .convergence import ConvergenceReport
from .loop_detector import LoopInterval


@dataclass(frozen=True)
class LoopStudyResult:
    """Everything one simulation run tells us about transient looping."""

    convergence: ConvergenceReport
    dataplane: DataPlaneReport
    loop_intervals: List[LoopInterval] = field(default_factory=list)
    total_messages: int = 0
    traffic: Optional[TrafficReport] = None

    # ------------------------------------------------------------------
    # The §4.2 metrics
    # ------------------------------------------------------------------

    @property
    def convergence_time(self) -> float:
        return self.convergence.convergence_time

    @property
    def overall_looping_duration(self) -> float:
        return self.dataplane.overall_looping_duration

    @property
    def ttl_exhaustions(self) -> int:
        return self.dataplane.ttl_exhaustions

    @property
    def looping_ratio(self) -> float:
        return self.dataplane.looping_ratio

    # ------------------------------------------------------------------
    # Supporting views
    # ------------------------------------------------------------------

    @property
    def packets_sent(self) -> int:
        return self.dataplane.packets_sent

    @property
    def looping_gap(self) -> float:
        """Convergence time minus overall looping duration.

        The paper reads this gap directly off Figure 4: a few seconds for
        Tdown, 30-45 s (one MRAI round) for Tlong.
        """
        return self.convergence_time - self.overall_looping_duration

    @property
    def distinct_loop_count(self) -> int:
        """Number of distinct loop lifetimes observed in the FIB history."""
        return len(self.loop_intervals)

    @property
    def max_loop_size(self) -> int:
        return max((i.size for i in self.loop_intervals), default=0)

    @property
    def max_loop_duration(self) -> float:
        return max((i.duration for i in self.loop_intervals), default=0.0)

    def loop_sizes(self) -> List[int]:
        """Sizes of all observed loop lifetimes."""
        return [i.size for i in self.loop_intervals]

    # ------------------------------------------------------------------
    # Traffic-weighted metrics (multi-prefix runs only)
    # ------------------------------------------------------------------

    @property
    def traffic_looped_fraction(self) -> float:
        """Fraction of offered traffic lost to loops (0 without a matrix)."""
        return self.traffic.looped_fraction if self.traffic is not None else 0.0

    @property
    def traffic_blackholed_fraction(self) -> float:
        """Fraction of offered traffic blackholed (0 without a matrix)."""
        return self.traffic.blackholed_fraction if self.traffic is not None else 0.0

    def summary_row(self) -> Dict[str, float]:
        """The metrics as a flat dict (for tables and aggregation).

        The traffic-weighted keys appear **only** when a traffic matrix was
        evaluated: the row feeds the run digest, so single-prefix runs must
        keep the exact key set (and bytes) they have always had.
        """
        row = {
            "convergence_time": self.convergence_time,
            "looping_duration": self.overall_looping_duration,
            "ttl_exhaustions": float(self.ttl_exhaustions),
            "looping_ratio": self.looping_ratio,
            "packets_sent": float(self.packets_sent),
            "updates_sent": float(self.convergence.update_count),
            "distinct_loops": float(self.distinct_loop_count),
        }
        if self.traffic is not None:
            row["traffic_offered"] = float(self.traffic.offered)
            row["traffic_looped_fraction"] = self.traffic.looped_fraction
            row["traffic_blackholed_fraction"] = self.traffic.blackholed_fraction
            row["traffic_delivered_fraction"] = self.traffic.delivered_fraction
        return row
