"""Unit tests for the Internet-like topology generator."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    InternetShape,
    Topology,
    choose_destination,
    choose_failure_link,
    internet_like,
    provider_load,
)


class TestGenerator:
    @pytest.mark.parametrize("n", [8, 29, 48, 110])
    def test_size_and_connectivity(self, n):
        topo = internet_like(n, seed=1)
        assert topo.num_nodes == n
        assert topo.is_connected()

    def test_deterministic_for_seed(self):
        assert internet_like(29, seed=4) == internet_like(29, seed=4)

    def test_different_seeds_differ(self):
        assert internet_like(29, seed=1) != internet_like(29, seed=2)

    def test_hierarchy_core_has_high_degree(self):
        topo = internet_like(60, seed=0)
        core_degrees = [topo.degree(n) for n in range(4)]
        stub_degrees = [topo.degree(n) for n in topo.lowest_degree_nodes(10)]
        assert min(core_degrees) > max(stub_degrees)

    def test_stub_majority_is_low_degree(self):
        topo = internet_like(60, seed=0)
        low = sum(1 for node in topo.nodes if topo.degree(node) <= 2)
        assert low >= topo.num_nodes // 3

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            internet_like(5)

    def test_shape_validation(self):
        with pytest.raises(TopologyError):
            internet_like(30, shape=InternetShape(core_fraction=0.0))
        with pytest.raises(TopologyError):
            internet_like(30, shape=InternetShape(core_fraction=0.6, transit_fraction=0.5))
        with pytest.raises(TopologyError):
            internet_like(30, shape=InternetShape(stub_multihome_probability=1.5))


class TestDestinationChoice:
    def test_destination_has_lowest_degree(self):
        topo = internet_like(40, seed=2)
        destination = choose_destination(topo, seed=0)
        assert topo.degree(destination) == min(topo.degree(n) for n in topo.nodes)

    def test_deterministic(self):
        topo = internet_like(40, seed=2)
        assert choose_destination(topo, seed=5) == choose_destination(topo, seed=5)


class TestFailureLinkChoice:
    def test_single_homed_destination_rejected(self):
        topo = Topology.from_edges([(0, 1), (1, 2), (2, 0), (1, 3)])
        with pytest.raises(TopologyError):
            choose_failure_link(topo, destination=3)

    def test_failed_link_is_not_a_cut_edge(self):
        topo = internet_like(40, seed=3)
        for destination in topo.nodes:
            if topo.degree(destination) < 2:
                continue
            try:
                u, v = choose_failure_link(topo, destination)
            except TopologyError:
                continue
            assert u == destination
            assert not topo.is_cut_edge(u, v)
            break
        else:
            pytest.fail("no multi-homed destination found")

    def test_primary_link_preferred(self):
        # Destination 9 homed to hub 0 (serves everyone) and to leaf 8.
        topo = Topology.from_edges(
            [(0, 1), (0, 2), (0, 3), (0, 4), (0, 8), (8, 9), (0, 9)]
        )
        link = choose_failure_link(topo, destination=9)
        assert link == (9, 0)


class TestProviderLoad:
    def test_loads_sum_over_sources(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        loads = provider_load(topo, destination=3)
        assert set(loads) == {1, 2}
        # sources are 0, 1, 2: node 1 -> provider 1, node 2 -> provider 2,
        # node 0 ties (dist 1 to both) -> provider 1 by the id tie-break.
        assert loads == {1: 2, 2: 1}
