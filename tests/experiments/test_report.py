"""Tests for figure/report rendering."""

import pytest

from repro.bgp import BgpConfig
from repro.core import ObservationCheck
from repro.errors import AnalysisError
from repro.experiments import (
    FigureData,
    RunSettings,
    run_experiment,
    run_summary_table,
    tdown_clique,
)


def figure(checks=()):
    return FigureData(
        figure_id="figX",
        title="demo",
        x_label="size",
        xs=[3.0, 5.0],
        series={"conv": [1.0, 2.0], "loop": [0.5, 1.5]},
        checks=list(checks),
    )


class TestFigureData:
    def test_misaligned_series_rejected(self):
        with pytest.raises(AnalysisError):
            FigureData("f", "t", "x", xs=[1.0], series={"bad": [1.0, 2.0]})

    def test_render_contains_series(self):
        text = figure().render()
        assert "figX" in text and "conv" in text and "loop" in text
        assert "3" in text and "5" in text

    def test_render_includes_check_verdicts(self):
        check = ObservationCheck(name="obs", holds=True, detail="fine")
        assert "HOLDS" in figure([check]).render()

    def test_check_failures(self):
        good = ObservationCheck("a", True, "")
        bad = ObservationCheck("b", False, "")
        assert figure([good, bad]).check_failures() == [bad]


class TestJsonExport:
    def test_round_trips_through_json(self):
        import json

        payload = json.loads(figure().to_json())
        assert payload["figure_id"] == "figX"
        assert payload["series"]["conv"] == [1.0, 2.0]
        assert payload["xs"] == [3.0, 5.0]

    def test_non_finite_values_serialized_as_strings(self):
        import json

        fig = FigureData(
            "f", "t", "x", xs=[1.0], series={"s": [float("inf")]}
        )
        payload = json.loads(fig.to_json())
        assert payload["series"]["s"] == ["inf"]

    def test_checks_included(self):
        import json

        check = ObservationCheck(name="obs", holds=False, detail="nope")
        payload = json.loads(figure([check]).to_json())
        assert payload["checks"] == [
            {"name": "obs", "holds": False, "detail": "nope"}
        ]


class TestDescribeRun:
    @pytest.fixture(scope="class")
    def run(self):
        config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
        return run_experiment(
            tdown_clique(5),
            config,
            settings=RunSettings(failure_guard=0.5),
            seed=1,
            keep_network=True,
        )

    def test_mentions_all_metric_sections(self, run):
        from repro.experiments.report import describe_run

        text = describe_run(run)
        assert "convergence time" in text
        assert "looping ratio" in text
        assert "updates sent" in text          # churn section (network kept)
        assert "individual loops" in text
        assert "tdown-clique-5" in text

    def test_without_network_omits_churn(self, run):
        from dataclasses import replace

        from repro.experiments.report import describe_run

        stripped = replace(run, network=None)
        text = describe_run(stripped)
        assert "updates sent" not in text
        assert "individual loops" in text


class TestRunSummaryTable:
    def test_renders_one_row_per_run(self):
        config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
        runs = [
            run_experiment(
                tdown_clique(3), config, settings=RunSettings(failure_guard=0.5), seed=s
            )
            for s in (0, 1)
        ]
        text = run_summary_table(runs)
        assert text.count("tdown-clique-3") == 2
        assert "conv_time" in text
