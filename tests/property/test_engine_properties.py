"""Property-based tests for the simulation engine."""

from hypothesis import given, settings, strategies as st

from repro.engine import Scheduler, SerialProcessor


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_events_fire_in_non_decreasing_time_order(times):
    scheduler = Scheduler()
    fired = []
    for t in times:
        scheduler.call_at(t, lambda t=t: fired.append(scheduler.now))
    scheduler.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=30)
)
def test_same_time_events_fire_fifo(delays):
    scheduler = Scheduler()
    order = []
    for index, _ in enumerate(delays):
        scheduler.call_at(1.0, lambda i=index: order.append(i))
    scheduler.run()
    assert order == list(range(len(delays)))


@given(
    st.lists(
        st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_serial_processor_completion_times_are_prefix_sums(service_times):
    scheduler = Scheduler()
    cpu = SerialProcessor(scheduler)
    done = []
    for s in service_times:
        cpu.submit(s, lambda: done.append(scheduler.now))
    scheduler.run()
    expected = []
    acc = 0.0
    for s in service_times:
        acc += s
        expected.append(acc)
    assert len(done) == len(expected)
    for got, want in zip(done, expected):
        assert abs(got - want) < 1e-9 * max(1.0, want)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), max_size=40),
    st.sets(st.integers(min_value=0, max_value=39)),
)
def test_cancelled_events_never_fire(times, cancel_indices):
    scheduler = Scheduler()
    fired = []
    handles = []
    for index, t in enumerate(times):
        handles.append(scheduler.call_at(t, lambda i=index: fired.append(i)))
    for index in cancel_indices:
        if index < len(handles):
            handles[index].cancel()
    scheduler.run()
    surviving = {i for i in range(len(times))} - {
        i for i in cancel_indices if i < len(times)
    }
    assert set(fired) == surviving
