"""Extension study: the §2 protocol triangle on one failure.

The paper situates path-vector routing between link state ("propagate
updates fast to reduce the duration of inconsistency, but transient loops
can still form") and distance vector ("poison-reverse ... fails to detect
longer loops").  With all three protocols implemented over the same
substrate, one identical failure compares them directly: same ring, same
failed link, same processing delays, same loop metrics.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig, BgpSpeaker
from repro.core import loop_timeline
from repro.dataplane import FibChangeLog
from repro.dv import RipSpeaker
from repro.engine import RandomStreams, Scheduler
from repro.ls import LinkStateSpeaker
from repro.net import Network
from repro.topology import b_clique
from repro.util import render_table

PREFIX = "dest"
SIZE = 4  # b-clique size: 8 nodes, the paper's Tlong shape in miniature
PROC = (0.1, 0.5)  # the paper's processing-delay model, all protocols


def run_protocol(label, make_speaker, seed=0):
    scheduler = Scheduler()
    log = FibChangeLog()
    network = Network(
        b_clique(SIZE), scheduler, lambda nid, sch: make_speaker(nid, sch, log)
    )
    origin = network.node(0)
    if hasattr(origin, "originate"):
        origin.originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)

    failure_time = scheduler.now + 1.0
    network.schedule_link_failure(0, SIZE, at=failure_time)
    before = len(network.trace)
    scheduler.run(max_events=500_000)

    last = network.trace.last_time(lambda r: r.time >= failure_time)
    convergence = (last - failure_time) if last is not None else 0.0
    intervals = loop_timeline(log, PREFIX, failure_time, scheduler.now)
    longest = max((i.duration for i in intervals), default=0.0)
    messages = len(network.trace) - before
    return [label, convergence, len(intervals), longest, messages]


def test_three_protocol_comparison(benchmark):
    def measure():
        streams_ls = RandomStreams(1)
        streams_dv = RandomStreams(1)
        streams_pv = RandomStreams(1)
        bgp_config = BgpConfig(mrai=30.0, processing_delay=PROC)
        rows = [
            run_protocol(
                "link-state",
                lambda nid, sch, log: LinkStateSpeaker(
                    nid, sch, streams_ls, destinations={PREFIX: 0},
                    processing_delay=PROC, fib_listener=log.record,
                ),
            ),
            run_protocol(
                "distance-vector",
                lambda nid, sch, log: RipSpeaker(
                    nid, sch, streams_dv, processing_delay=PROC,
                    poison_reverse=True, fib_listener=log.record,
                ),
            ),
            run_protocol(
                "path-vector (BGP)",
                lambda nid, sch, log: BgpSpeaker(
                    nid, sch, config=bgp_config, streams=streams_pv,
                    fib_listener=log.record,
                ),
            ),
        ]
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["protocol", "convergence_s", "loops", "longest_loop_s", "messages"],
        rows,
        title=f"One Tlong failure on B-Clique-{SIZE}, three protocols",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "protocol_triangle.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    by_name = {row[0]: row for row in rows}
    ls, dv, pv = (
        by_name["link-state"],
        by_name["distance-vector"],
        by_name["path-vector (BGP)"],
    )
    # §2/§6's comparative claims, all on identical events:
    assert ls[1] < dv[1] < pv[1]      # LS fastest; BGP MRAI-dominated
    assert dv[4] > max(ls[4], pv[4])  # DV's metric bouncing costs messages
    assert all(row[2] >= 1 for row in rows)  # every protocol loops transiently