"""Tests for the unsafe policy gadgets and the oscillation runner.

The static analyzer and the dynamic runner cross-validate here in both
directions: certified-SAFE scenarios must converge, and the measured
persistent oscillation of BAD-GADGET must come with a dispute-wheel
certificate.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.stability import Verdict
from repro.bgp import BgpConfig, PathRankPolicy, ShortestPathPolicy
from repro.errors import ConfigError
from repro.experiments import (
    RunSettings,
    bad_gadget,
    disagree,
    observe_oscillation,
    run_experiment,
    stability_suite,
    wedgie,
)

PREFIX = "dest"


class TestPathRankPolicy:
    def test_list_order_beats_path_length(self):
        policy = PathRankPolicy(1, [(1, 2, 3, 0), (1, 0)])
        from repro.bgp import AsPath, Route

        long = Route(prefix=PREFIX, path=AsPath.of((2, 3, 0)), next_hop=2)
        long = Route(
            prefix=PREFIX, path=long.path, next_hop=2,
            local_pref=policy.local_pref(2, long),
        )
        short = Route(prefix=PREFIX, path=AsPath.of((0,)), next_hop=0)
        short = Route(
            prefix=PREFIX, path=short.path, next_hop=0,
            local_pref=policy.local_pref(0, short),
        )
        assert policy.preference_key(long) < policy.preference_key(short)

    def test_unranked_paths_rejected_for_the_prefix_only(self):
        policy = PathRankPolicy(1, [(1, 0)])
        from repro.bgp import AsPath, Route

        unranked = Route(prefix=PREFIX, path=AsPath.of((2, 0)), next_hop=2)
        other = Route(prefix="other", path=AsPath.of((2, 0)), next_hop=2)
        assert not policy.accept_import(2, unranked)
        assert policy.accept_import(2, other)

    def test_ranked_path_must_start_at_the_owner(self):
        with pytest.raises(ConfigError, match="must start at node"):
            PathRankPolicy(1, [(2, 0)])

    def test_ranked_path_must_not_repeat_nodes(self):
        with pytest.raises(ConfigError, match="repeats a node"):
            PathRankPolicy(1, [(1, 2, 1, 0)])

    def test_bare_origination_and_duplicates_rejected(self):
        with pytest.raises(ConfigError, match="no next hop"):
            PathRankPolicy(1, [(1,)])
        with pytest.raises(ConfigError, match="listed twice"):
            PathRankPolicy(1, [(1, 0), (1, 0)])


class TestGadgetDefinitions:
    def test_suite_names_are_unique_and_fixed(self):
        names = [ps.name for ps in stability_suite()]
        assert len(names) == len(set(names)) == 7
        assert names[-3:] == ["disagree", "bad-gadget", "bgp-wedgie"]

    def test_factories_are_picklable(self):
        for gadget in (disagree(), bad_gadget(), wedgie()):
            clone = pickle.loads(pickle.dumps(gadget.policy_factory))
            assert isinstance(clone(1), PathRankPolicy)

    def test_destination_gets_the_default_policy(self):
        factory = disagree().policy_factory
        assert isinstance(factory(0), ShortestPathPolicy)

    def test_gadgets_certify_unsafe_and_baselines_safe(self):
        from repro.analysis.stability import certify_scenario

        expected = {
            "disagree": Verdict.UNSAFE,
            "bad-gadget": Verdict.UNSAFE,
            "bgp-wedgie": Verdict.UNSAFE,
            "tdown-clique-5": Verdict.SAFE,
            "tlong-bclique-4": Verdict.SAFE,
            "tdown-internet-24-s0": Verdict.SAFE,
            "gao-rexford-internet-24-s3": Verdict.SAFE,
        }
        for entry in stability_suite():
            report = certify_scenario(
                entry.scenario, policy_factory=entry.policy_factory
            )
            assert report.verdict is expected[entry.name], entry.name


class TestObserveOscillation:
    def test_bad_gadget_oscillates_with_persistent_loops(self):
        report = observe_oscillation(bad_gadget(), horizon=30.0, seed=0)
        assert report.classification == "persistent-oscillation"
        assert report.oscillating
        assert not report.quiescent
        # The forwarding loop keeps re-forming: many intervals, and some
        # still alive in the trailing window.
        assert len(report.loop_intervals) > 10
        assert report.persistent_loops > 0
        # Cross-check: the measured oscillation comes with a wheel.
        assert report.stability is not None
        assert report.stability.verdict is Verdict.UNSAFE
        assert report.stability.wheel is not None

    def test_bad_gadget_oscillates_across_seeds(self):
        for seed in (1, 2):
            report = observe_oscillation(
                bad_gadget(), horizon=20.0, seed=seed, certify=False
            )
            assert report.classification == "persistent-oscillation", seed

    def test_disagree_converges_under_mrai_timing(self):
        config = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
        report = observe_oscillation(disagree(), config=config, seed=0)
        assert report.classification == "converged"
        assert report.quiescent
        assert report.persistent_loops == 0
        # Wheel present, yet convergent: necessity without sufficiency.
        assert report.stability.verdict is Verdict.UNSAFE

    def test_disagree_oscillates_when_phase_locked(self):
        # mrai=0 keeps the two nodes in lockstep: the divergent execution
        # the dispute wheel admits is actually realized.
        report = observe_oscillation(
            disagree(), horizon=20.0, seed=0, certify=False
        )
        assert report.classification == "persistent-oscillation"

    def test_safe_baseline_converges_and_certifies_safe(self):
        suite = {ps.name: ps for ps in stability_suite()}
        report = observe_oscillation(
            suite["tdown-clique-5"], horizon=30.0, seed=0
        )
        assert report.classification == "converged"
        assert report.stability.verdict is Verdict.SAFE

    def test_report_json_and_render(self):
        report = observe_oscillation(bad_gadget(), horizon=10.0, seed=0)
        payload = report.to_json()
        assert payload["classification"] == "persistent-oscillation"
        assert payload["loop_intervals"] == len(report.loop_intervals)
        text = report.render()
        assert "persistent-oscillation" in text
        assert "static verdict: UNSAFE" in text

    def test_window_defaults_to_three_mrai_rounds(self):
        config = BgpConfig(mrai=30.0, processing_delay=(0.01, 0.05))
        report = observe_oscillation(
            disagree(), config=config, horizon=100.0, certify=False
        )
        assert report.window == pytest.approx(90.0)


class TestWedgie:
    def test_wedgie_starts_in_the_intended_state(self):
        gadget = wedgie()
        report = observe_oscillation(
            gadget,
            config=BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05)),
            horizon=60.0,
            seed=0,
            certify=False,
        )
        assert report.classification == "converged"

    def test_one_flap_wedges_the_network(self):
        gadget = wedgie()
        run = run_experiment(
            gadget.scenario,
            BgpConfig(mrai=2.0),
            settings=RunSettings(certify=True),
            seed=0,
            keep_network=True,
            policy_factory=gadget.policy_factory,
        )
        # The primary link is back up, yet routing is stuck in the
        # unintended stable state: 1 on its direct customer link, 2
        # riding it — not the 1-(1,2,3,0) / 2-(2,3,0) intent.
        network = run.network
        assert tuple(network.node(1).full_path(PREFIX)) == (1, 0)
        assert tuple(network.node(2).full_path(PREFIX)) == (2, 1, 0)
        # Both states are stable; the analyzer still flags the wheel
        # behind the wedge.
        assert run.stability.verdict is Verdict.UNSAFE


class TestRunnerIntegration:
    def test_runner_attaches_stability_provenance(self):
        from repro.experiments import tdown_clique

        run = run_experiment(
            tdown_clique(4),
            BgpConfig(mrai=1.0),
            settings=RunSettings(certify=True),
            seed=3,
        )
        assert run.stability is not None
        assert run.stability.verdict is Verdict.SAFE
        assert run.stability.method == "shortest-path"

    def test_certified_run_with_telemetry_counts_verdicts(self):
        from repro.experiments import tdown_clique

        run = run_experiment(
            tdown_clique(4),
            BgpConfig(mrai=1.0),
            settings=RunSettings(certify=True, telemetry=True),
            seed=3,
        )
        assert run.metrics.counter("stability.scenarios_analyzed") == 1
        assert run.metrics.counter("stability.certified_safe") == 1
        assert run.metrics.counter("stability.certified_unsafe") == 0
