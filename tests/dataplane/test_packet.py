"""Unit tests for packet walks over static forwarding graphs."""

import pytest

from repro.dataplane import ForwardingGraph, PacketFate, canonical_cycle, walk


def graph_of(mapping):
    return ForwardingGraph(mapping)


class TestDelivery:
    def test_direct_delivery(self):
        graph = graph_of({0: 0, 1: 0})
        result = walk(graph, 1)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 1
        assert not result.looped

    def test_multi_hop_delivery(self):
        graph = graph_of({0: 0, 1: 0, 2: 1, 3: 2})
        result = walk(graph, 3)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 3

    def test_source_is_destination(self):
        graph = graph_of({0: 0})
        result = walk(graph, 0)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 0


class TestDrops:
    def test_source_without_route(self):
        graph = graph_of({0: 0})
        result = walk(graph, 5)
        assert result.fate is PacketFate.DROPPED_NO_ROUTE
        assert result.hops == 0

    def test_drop_mid_path(self):
        graph = graph_of({0: 0, 1: None, 2: 1})
        result = walk(graph, 2)
        assert result.fate is PacketFate.DROPPED_NO_ROUTE
        assert result.hops == 1


class TestLoops:
    def test_two_node_loop_detected(self):
        graph = graph_of({5: 6, 6: 5})
        result = walk(graph, 5, ttl=128)
        assert result.fate is PacketFate.TTL_EXPIRED
        assert result.hops == 128
        assert result.loop == (5, 6)

    def test_loop_entered_from_outside(self):
        graph = graph_of({1: 2, 2: 3, 3: 2})
        result = walk(graph, 1)
        assert result.fate is PacketFate.TTL_EXPIRED
        assert result.loop == (2, 3)

    def test_long_cycle_canonicalized(self):
        graph = graph_of({3: 7, 7: 1, 1: 3})
        result = walk(graph, 7)
        assert result.loop == (1, 3, 7)

    def test_ttl_death_without_loop_on_long_path(self):
        # Path of 5 hops with ttl 3: dies of length, no cycle.
        graph = graph_of({0: 0, 1: 0, 2: 1, 3: 2, 4: 3, 5: 4})
        result = walk(graph, 5, ttl=3)
        assert result.fate is PacketFate.TTL_EXPIRED
        assert result.hops == 3
        assert result.loop is None

    def test_exact_ttl_delivery_succeeds(self):
        graph = graph_of({0: 0, 1: 0, 2: 1, 3: 2})
        result = walk(graph, 3, ttl=3)
        assert result.fate is PacketFate.DELIVERED

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            walk(graph_of({0: 0}), 0, ttl=0)


class TestCanonicalCycle:
    def test_rotation(self):
        assert canonical_cycle((5, 6, 2)) == (2, 5, 6)
        assert canonical_cycle((2, 5, 6)) == (2, 5, 6)

    def test_preserves_order(self):
        # (7, 3, 9) rotated to start at 3 keeps forwarding order 3->9->7.
        assert canonical_cycle((7, 3, 9)) == (3, 9, 7)

    def test_empty(self):
        assert canonical_cycle(()) == ()
