"""Extension study: failure-detection latency vs packet damage.

The paper models interface-level detection — the nodes adjacent to a
failure react instantly, so all damage comes from *convergence* after
detection.  Real failures can be silent (detected only by BGP hold-timer
expiry), which adds a black-hole phase before convergence even starts.
This benchmark sweeps the hold time on a silent B-Clique Tlong event and
measures packet fates with the event-driven forwarder, whose FIB lookup is
wired to the live link state so packets forwarded into the dead link are
counted as lost.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig, BgpSpeaker
from repro.dataplane import PacketForwarder, sources_for
from repro.engine import RandomStreams, Scheduler
from repro.net import Network
from repro.topology import b_clique
from repro.util import render_table

PREFIX = "dest"
HOLD_TIMES = (3.0, 9.0, 18.0)
MEASURE_AFTER_DETECTION = 40.0


def run_silent_failure(hold_time: float, seed: int = 0):
    config = BgpConfig(
        mrai=5.0,
        processing_delay=(0.05, 0.15),
        hold_time=hold_time,
        keepalive_interval=hold_time / 3.0,
    )
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    topo = b_clique(5)
    network = Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
    )
    network.node(0).originate(PREFIX)
    network.start()
    scheduler.run(until=60.0)

    failure_time = scheduler.now
    window_end = failure_time + hold_time + MEASURE_AFTER_DETECTION

    def live_fib(node):
        next_hop = network.nodes[node].fib.get(PREFIX)
        if next_hop is None or next_hop == node:
            return next_hop
        if not network.link_is_up(node, next_hop):
            return None  # packet black-holed at the dead link
        return next_hop

    forwarder = PacketForwarder(scheduler, topo, live_fib, ttl=64)
    forwarder.launch(
        sources_for(topo.nodes, 0, rate=5.0), failure_time, window_end
    )
    network.fail_link(0, 5, silent=True)
    scheduler.run(until=window_end + 1.0)
    for node in network.nodes.values():
        if node.sessions is not None:
            node.sessions.teardown_all()
    scheduler.run()  # drain remaining packet events
    return forwarder.report


def test_detection_latency_costs_packets(benchmark):
    def sweep():
        return {hold: run_silent_failure(hold) for hold in HOLD_TIMES}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for hold, report in reports.items():
        lost = report.dropped_no_route + report.ttl_exhaustions
        rows.append(
            [
                hold,
                report.packets_sent,
                report.delivered,
                report.dropped_no_route,
                report.ttl_exhaustions,
                lost / report.packets_sent,
            ]
        )
    table = render_table(
        ["hold_s", "packets", "delivered", "no_route", "looped", "loss_ratio"],
        rows,
        title="Silent Tlong failure on B-Clique-5: hold time vs packet loss",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "detection_latency.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    losses = [row[3] + row[4] for row in rows]
    # Longer silent windows black-hole strictly more packets.
    assert losses == sorted(losses), losses
    assert losses[-1] > losses[0]
