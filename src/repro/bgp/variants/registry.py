"""Named protocol variants: the five configurations compared in §5.

The registry maps the names used throughout the experiment harness, the
benchmarks, and EXPERIMENTS.md onto :class:`~repro.bgp.config.BgpConfig`
factories, so a figure driver can ask for ``variant("ghost-flushing",
mrai=30)`` without touching config internals.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...errors import ConfigError
from ..config import BgpConfig
from ..mrai import DEFAULT_MRAI

_FACTORIES: Dict[str, Callable[[float], BgpConfig]] = {
    "standard": lambda mrai: BgpConfig(mrai=mrai),
    "ssld": lambda mrai: BgpConfig(mrai=mrai, ssld=True),
    "wrate": lambda mrai: BgpConfig(mrai=mrai, wrate=True),
    "assertion": lambda mrai: BgpConfig(mrai=mrai, assertion=True),
    "ghost-flushing": lambda mrai: BgpConfig(mrai=mrai, ghost_flushing=True),
}

#: Presentation order used by every comparison figure.
VARIANT_NAMES: List[str] = [
    "standard",
    "ssld",
    "wrate",
    "assertion",
    "ghost-flushing",
]


def variant(name: str, mrai: float = DEFAULT_MRAI) -> BgpConfig:
    """Build the named protocol variant's configuration.

    Raises :class:`~repro.errors.ConfigError` for unknown names, listing the
    valid ones.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown BGP variant {name!r}; expected one of {VARIANT_NAMES}"
        ) from None
    return factory(mrai)


def all_variants(mrai: float = DEFAULT_MRAI) -> Dict[str, BgpConfig]:
    """All five §5 protocol configurations at the given MRAI, in order."""
    return {name: variant(name, mrai) for name in VARIANT_NAMES}


def combine(names, mrai: float = DEFAULT_MRAI) -> BgpConfig:
    """A configuration with several enhancements enabled together.

    The paper evaluates each mechanism in isolation; they are not mutually
    exclusive, and their speaker hook points are independent (SSLD at
    export, WRATE at withdrawal send, Assertion at receipt, Ghost Flushing
    at MRAI hold), so any subset composes.  ``names`` may include
    ``"standard"`` as a no-op.  Duplicate names are tolerated.

    >>> combine(["ssld", "ghost-flushing"]).variant_name
    'ssld+ghost-flushing'
    """
    flags = dict(ssld=False, wrate=False, assertion=False, ghost_flushing=False)
    for name in names:
        if name == "standard":
            continue
        if name not in _FACTORIES:
            raise ConfigError(
                f"unknown BGP variant {name!r}; expected one of {VARIANT_NAMES}"
            )
        flags[name.replace("-", "_")] = True
    return BgpConfig(mrai=mrai, **flags)
