"""Unit tests for repro.engine.process (the serialized router CPU)."""

import pytest

from repro.engine import Scheduler, SerialProcessor


@pytest.fixture
def cpu(scheduler):
    return SerialProcessor(scheduler, name="cpu")


class TestSerialization:
    def test_single_job_runs_after_service_time(self, scheduler, cpu):
        done = []
        cpu.submit(0.25, lambda: done.append(scheduler.now))
        scheduler.run()
        assert done == [0.25]

    def test_jobs_are_serialized_fifo(self, scheduler, cpu):
        done = []
        cpu.submit(0.2, lambda: done.append(("a", scheduler.now)))
        cpu.submit(0.3, lambda: done.append(("b", scheduler.now)))
        cpu.submit(0.1, lambda: done.append(("c", scheduler.now)))
        scheduler.run()
        assert done == [("a", 0.2), ("b", 0.5), ("c", 0.6)]

    def test_job_submitted_mid_run_queues_behind_current(self, scheduler, cpu):
        done = []
        cpu.submit(1.0, lambda: done.append(("first", scheduler.now)))
        scheduler.call_at(
            0.5, lambda: cpu.submit(1.0, lambda: done.append(("second", scheduler.now)))
        )
        scheduler.run()
        assert done == [("first", 1.0), ("second", 2.0)]

    def test_idle_gap_then_new_job(self, scheduler, cpu):
        done = []
        cpu.submit(0.1, lambda: done.append(scheduler.now))
        scheduler.call_at(5.0, lambda: cpu.submit(0.1, lambda: done.append(scheduler.now)))
        scheduler.run()
        assert done == [pytest.approx(0.1), pytest.approx(5.1)]

    def test_job_body_may_submit_more_work(self, scheduler, cpu):
        done = []

        def chain():
            done.append(scheduler.now)
            if len(done) < 3:
                cpu.submit(0.5, chain)

        cpu.submit(0.5, chain)
        scheduler.run()
        assert done == [0.5, 1.0, 1.5]


class TestIntrospection:
    def test_busy_flag(self, scheduler, cpu):
        assert not cpu.busy
        cpu.submit(1.0, lambda: None)
        assert cpu.busy
        scheduler.run()
        assert not cpu.busy

    def test_queue_length_counts_waiting_only(self, scheduler, cpu):
        cpu.submit(1.0, lambda: None)
        cpu.submit(1.0, lambda: None)
        cpu.submit(1.0, lambda: None)
        assert cpu.queue_length == 2

    def test_jobs_completed_counter(self, scheduler, cpu):
        for _ in range(4):
            cpu.submit(0.1, lambda: None)
        scheduler.run()
        assert cpu.jobs_completed == 4

    def test_backlog_time_estimates_drain(self, scheduler, cpu):
        cpu.submit(1.0, lambda: None)
        cpu.submit(2.0, lambda: None)
        assert cpu.backlog_time == pytest.approx(3.0)

    def test_negative_service_time_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.submit(-0.1, lambda: None)

    def test_zero_service_time_allowed(self, scheduler, cpu):
        done = []
        cpu.submit(0.0, lambda: done.append(scheduler.now))
        scheduler.run()
        assert done == [0.0]
