"""Convergence-time measurement.

"Convergence Time starts when the link failure happens, and ends when the
last BGP update message is sent" (§4.2).  The measurement is taken from the
network-level :class:`~repro.net.trace.MessageTrace`, so every protocol
variant is measured by identical machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bgp.messages import is_update
from ..net import MessageTrace, TraceRecord


@dataclass(frozen=True)
class ConvergenceReport:
    """Timing and volume of the post-failure update activity."""

    failure_time: float
    first_update_time: Optional[float]
    last_update_time: Optional[float]
    update_count: int
    announcement_count: int
    withdrawal_count: int

    @property
    def convergence_time(self) -> float:
        """Seconds from the failure to the last update sent (0 if silent)."""
        if self.last_update_time is None:
            return 0.0
        return self.last_update_time - self.failure_time

    @property
    def convergence_end(self) -> float:
        """Absolute time convergence completed (= failure time if silent)."""
        if self.last_update_time is None:
            return self.failure_time
        return self.last_update_time

    @property
    def reaction_delay(self) -> float:
        """Failure to first update sent (0 if silent)."""
        if self.first_update_time is None:
            return 0.0
        return self.first_update_time - self.failure_time


def measure_convergence(trace: MessageTrace, failure_time: float) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` from the run's message trace.

    Only update messages (announcements and withdrawals) sent at or after
    ``failure_time`` count; the warm-up convergence that established initial
    routes is excluded.
    """

    def after_failure(record: TraceRecord) -> bool:
        return record.time >= failure_time and is_update(record.message)

    relevant = trace.records(after_failure)
    announcements = sum(1 for r in relevant if r.kind == "Announcement")
    return ConvergenceReport(
        failure_time=failure_time,
        first_update_time=relevant[0].time if relevant else None,
        last_update_time=relevant[-1].time if relevant else None,
        update_count=len(relevant),
        announcement_count=announcements,
        withdrawal_count=len(relevant) - announcements,
    )
