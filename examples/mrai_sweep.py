#!/usr/bin/env python
"""Observations 1 & 2: everything scales linearly with the MRAI timer.

Sweeps the MRAI value on a clique Tdown scenario and prints the four §4.2
metrics per point, then fits lines to verify:

* convergence time and overall looping duration grow linearly with M,
* the number of TTL exhaustions grows linearly with M,
* the looping ratio stays (almost) constant.

Usage::

    python examples/mrai_sweep.py [clique_size]
"""

import sys

from repro import BgpConfig, RunSettings, sweep, tdown_clique
from repro.core import check_linear_in_mrai, check_ratio_constant
from repro.experiments.sweep import series, xs_of
from repro.util import render_series


def main() -> None:
    clique_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    mrai_values = [5.0, 10.0, 20.0, 30.0, 45.0]
    seeds = (0, 1)

    print(
        f"Sweeping MRAI over {mrai_values} on a {clique_size}-clique Tdown "
        f"({len(seeds)} trials per point)..."
    )
    points = sweep(
        mrai_values,
        lambda x, seed: tdown_clique(clique_size),
        lambda x: BgpConfig.standard(x),
        seeds=seeds,
        settings=RunSettings(),
    )

    table = render_series(
        "mrai",
        xs_of(points),
        [
            ("convergence_s", series(points, "convergence_time")),
            ("looping_s", series(points, "looping_duration")),
            ("ttl_exhaustions", series(points, "ttl_exhaustions")),
            ("looping_ratio", series(points, "looping_ratio")),
        ],
        title=f"Tdown on clique-{clique_size}, metrics vs MRAI",
    )
    print("\n" + table + "\n")

    for metric, label in [
        ("convergence_time", "convergence time"),
        ("looping_duration", "looping duration"),
        ("ttl_exhaustions", "TTL exhaustions"),
    ]:
        check = check_linear_in_mrai(xs_of(points), series(points, metric))
        print(f"  {label:18s}: {check}")
    ratio_check = check_ratio_constant(series(points, "looping_ratio"))
    print(f"  {'looping ratio':18s}: {ratio_check}")


if __name__ == "__main__":
    main()
