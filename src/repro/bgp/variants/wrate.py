"""Withdrawal Rate Limiting (WRATE) [Labovitz et al. / Griffin & Premore].

Standard RFC 1771 BGP exempts withdrawals from the MRAI timer; WRATE applies
the timer to withdrawals as well, and was adopted as standard behavior by the
post-1771 specification drafts.

The paper's finding (§5, Observation 3): WRATE "hopes" to reduce loops by
propagating withdrawals and announcements at the same speed, but "can delay a
withdrawal that could have resolved a loop, thus lengthening the looping
duration" — on Internet-derived topologies it makes Tlong packet looping an
order of magnitude worse than standard BGP.

There is no algorithm here beyond the predicate below: the speaker routes
withdrawal sends through the same hold-and-release path as announcements
whenever it returns True.
"""

from __future__ import annotations

from ..config import BgpConfig


def withdrawals_rate_limited(config: BgpConfig) -> bool:
    """True when withdrawals must respect the MRAI timer."""
    return config.wrate
