"""Experiment harness: scenarios, single runs, sweeps, figures, reports."""

from .config import RunSettings
from .diagnostics import DiagnosticSnapshot, NodeState, capture_snapshot
from .report import FigureData, run_summary_table
from .runner import ExperimentRun, build_network, run_experiment
from .scenarios import (
    DEFAULT_PREFIX,
    EventKind,
    Scenario,
    custom_tdown,
    custom_tlong,
    tcrash_clique,
    tdown_clique,
    tdown_internet,
    tflap_bclique,
    tlong_bclique,
    tlong_internet,
    treset_clique,
)
from .sweep import SweepPoint, TrialFailure, failures_of, series, sweep, xs_of

__all__ = [
    "DEFAULT_PREFIX",
    "DiagnosticSnapshot",
    "EventKind",
    "ExperimentRun",
    "FigureData",
    "NodeState",
    "RunSettings",
    "Scenario",
    "SweepPoint",
    "TrialFailure",
    "build_network",
    "capture_snapshot",
    "custom_tdown",
    "custom_tlong",
    "failures_of",
    "run_experiment",
    "run_summary_table",
    "series",
    "sweep",
    "tcrash_clique",
    "tdown_clique",
    "tdown_internet",
    "tflap_bclique",
    "tlong_bclique",
    "tlong_internet",
    "treset_clique",
    "xs_of",
]
