"""Tests for the link-state routing substrate."""

import pytest

from repro.core import is_loop_free, loop_timeline
from repro.dataplane import FibChangeLog, ForwardingGraph, PacketFate, walk
from repro.engine import RandomStreams, Scheduler
from repro.errors import ProtocolError
from repro.ls import LinkStateAd, LinkStateSpeaker, make_lsa
from repro.net import Network
from repro.topology import Topology, chain, clique, grid, ring

PREFIX = "dest"


def make_ls_network(scheduler, topo, owner=0, seed=6, fib_log=None,
                    processing_delay=(0.01, 0.05)):
    streams = RandomStreams(seed)
    destinations = {PREFIX: owner}

    def factory(nid, sch):
        return LinkStateSpeaker(
            nid,
            sch,
            streams,
            destinations=destinations,
            processing_delay=processing_delay,
            fib_listener=fib_log.record if fib_log is not None else None,
        )

    return Network(topo, scheduler, factory)


def forwarding_graph(network):
    graph = ForwardingGraph()
    for nid, node in network.nodes.items():
        graph.set_next_hop(nid, node.fib.get(PREFIX))
    return graph


class TestLsa:
    def test_freshness(self):
        old = make_lsa(1, 3, [2, 4])
        new = make_lsa(1, 4, [2])
        assert new.newer_than(old)
        assert not old.newer_than(new)

    def test_cross_origin_comparison_rejected(self):
        with pytest.raises(ValueError):
            make_lsa(1, 1, []).newer_than(make_lsa(2, 1, []))

    def test_self_neighbor_rejected(self):
        with pytest.raises(ValueError):
            make_lsa(1, 1, [1, 2])

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            make_lsa(1, -1, [])


class TestConvergence:
    @pytest.mark.parametrize("topo_factory", [
        lambda: chain(5),
        lambda: ring(6),
        lambda: clique(5),
        lambda: grid(3, 3),
    ])
    def test_all_nodes_reach_destination(self, scheduler, topo_factory):
        topo = topo_factory()
        network = make_ls_network(scheduler, topo)
        network.start()
        scheduler.run(max_events=500_000)
        graph = forwarding_graph(network)
        assert is_loop_free(graph)
        for nid in topo.nodes:
            assert walk(graph, nid).fate is PacketFate.DELIVERED, nid

    def test_shortest_paths_with_id_tie_break(self, scheduler):
        network = make_ls_network(scheduler, ring(6))
        network.start()
        scheduler.run(max_events=500_000)
        assert network.node(1).next_hop(PREFIX) == 0
        assert network.node(5).next_hop(PREFIX) == 0
        # Node 3 is equidistant both ways (3 hops): smaller first hop wins.
        assert network.node(3).next_hop(PREFIX) == 2

    def test_owner_delivers_locally(self, scheduler):
        network = make_ls_network(scheduler, chain(3))
        network.start()
        scheduler.run(max_events=500_000)
        assert network.node(0).next_hop(PREFIX) == 0

    def test_unexpected_message_rejected(self, scheduler):
        network = make_ls_network(scheduler, chain(2))
        network.node(1).deliver(0, "not-an-lsa")
        with pytest.raises(ProtocolError):
            scheduler.run(max_events=10)


class TestFailureResponse:
    def test_reroutes_after_failure(self, scheduler):
        network = make_ls_network(scheduler, ring(5))
        network.start()
        scheduler.run(max_events=500_000)
        assert network.node(1).next_hop(PREFIX) == 0
        network.fail_link(0, 1)
        scheduler.run(max_events=500_000)
        assert network.node(1).next_hop(PREFIX) == 2
        graph = forwarding_graph(network)
        assert is_loop_free(graph)
        for nid in range(5):
            assert walk(graph, nid).fate is PacketFate.DELIVERED

    def test_partition_clears_routes(self, scheduler):
        network = make_ls_network(scheduler, chain(3))
        network.start()
        scheduler.run(max_events=500_000)
        network.fail_link(0, 1)
        scheduler.run(max_events=500_000)
        assert network.node(2).next_hop(PREFIX) is None
        assert network.node(1).next_hop(PREFIX) is None

    def test_recovery_resyncs_database(self, scheduler):
        network = make_ls_network(scheduler, chain(3))
        network.start()
        scheduler.run(max_events=500_000)
        network.fail_link(0, 1)
        scheduler.run(max_events=500_000)
        network.restore_link(0, 1)
        scheduler.run(max_events=500_000)
        assert network.node(2).next_hop(PREFIX) == 1

    def test_transient_loop_can_form_during_reconvergence(self, scheduler):
        """§2's observation: link-state transient loops exist (Hengartner).

        On a ring with slow message processing, the node adjacent to the
        failure reroutes before distant nodes hear the new LSAs — briefly
        producing a 2-node loop.
        """
        log = FibChangeLog()
        network = make_ls_network(
            scheduler, ring(6), fib_log=log, processing_delay=(0.3, 0.5)
        )
        network.start()
        scheduler.run(max_events=500_000)
        failure_time = scheduler.now + 1.0
        network.schedule_link_failure(0, 1, at=failure_time)
        scheduler.run(max_events=500_000)
        intervals = loop_timeline(log, PREFIX, failure_time, scheduler.now)
        assert intervals, "expected a transient loop during LS reconvergence"
        # ... but they are short: bounded by flooding + processing, far
        # below BGP's MRAI-scale loops.
        assert max(i.duration for i in intervals) < 5.0
        assert is_loop_free(forwarding_graph(network))
