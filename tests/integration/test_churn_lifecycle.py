"""End-to-end churn lifecycle tests: restore reconvergence, determinism,
the Treset acceptance scenario, and sweep fault isolation."""

import pytest

from repro.bgp import BgpConfig, BgpSpeaker
from repro.engine import RandomStreams, Scheduler
from repro.errors import BudgetExceededError
from repro.experiments import (
    DiagnosticSnapshot,
    RunSettings,
    failures_of,
    run_experiment,
    sweep,
    tcrash_clique,
    tdown_clique,
    tflap_bclique,
    treset_clique,
)
from repro.net import Network
from repro.topology import b_clique

PREFIX = "dest"
FAST = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
SESSION = BgpConfig(
    mrai=2.0,
    processing_delay=(0.01, 0.05),
    hold_time=9.0,
    keepalive_interval=3.0,
    connect_retry=0.5,
    connect_retry_cap=4.0,
)


def trace_signature(run):
    """The full message trace as comparable tuples."""
    return [
        (r.time, r.src, r.dst, repr(r.message))
        for r in run.network.trace.records()
    ]


class TestLinkRestoreReconvergence:
    @pytest.mark.parametrize(
        "config", [FAST, SESSION], ids=["paper-mode", "session-mode"]
    )
    def test_fail_and_restore_returns_to_prefailure_locribs(self, config):
        """Failing and then restoring a transit link must reconverge every
        speaker to exactly its pre-failure best path."""
        scheduler = Scheduler()
        streams = RandomStreams(11)
        topo = b_clique(4)
        network = Network(
            topo,
            scheduler,
            lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
        )
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=60.0, max_events=200_000)
        before = {
            nid: network.node(nid).full_path(PREFIX) for nid in topo.nodes
        }
        assert all(path is not None for path in before.values())

        network.fail_link(0, 4)
        scheduler.run(until=scheduler.now + 60.0, max_events=200_000)
        degraded = {
            nid: network.node(nid).full_path(PREFIX) for nid in topo.nodes
        }
        assert degraded != before  # the failure forced longer paths

        network.restore_link(0, 4)
        scheduler.run(until=scheduler.now + 60.0, max_events=200_000)
        after = {
            nid: network.node(nid).full_path(PREFIX) for nid in topo.nodes
        }
        assert after == before
        for node in network.nodes.values():
            node.check_invariants()


class TestTresetAcceptance:
    def test_treset_clique5_runs_end_to_end(self):
        run = run_experiment(treset_clique(5), SESSION, seed=3)
        assert run.converged
        # The reset generated observable re-exchange traffic.
        assert run.result.convergence.update_count > 0
        assert run.end_time > run.failure_time

    @pytest.mark.parametrize("seed", [0, 1])
    def test_treset_is_deterministic_per_seed(self, seed):
        runs = [
            run_experiment(treset_clique(5), SESSION, seed=seed, keep_network=True)
            for _ in range(2)
        ]
        assert trace_signature(runs[0]) == trace_signature(runs[1])
        assert runs[0].result.loop_intervals == runs[1].result.loop_intervals
        assert runs[0].end_time == runs[1].end_time


class TestChurnDeterminism:
    """Same scenario + seed => byte-identical traces and loop timelines."""

    @pytest.mark.parametrize(
        "scenario_factory",
        [
            lambda: tcrash_clique(4, restart_after=15.0),
            lambda: tflap_bclique(4, period=10.0, count=2),
        ],
        ids=["tcrash", "tflap"],
    )
    def test_churn_runs_replay_identically(self, scenario_factory):
        runs = [
            run_experiment(
                scenario_factory(), SESSION, seed=7, keep_network=True
            )
            for _ in range(2)
        ]
        assert trace_signature(runs[0]) == trace_signature(runs[1])
        assert runs[0].result.loop_intervals == runs[1].result.loop_intervals
        assert (
            runs[0].result.convergence.convergence_time
            == runs[1].result.convergence.convergence_time
        )

    def test_different_seeds_diverge(self):
        runs = [
            run_experiment(
                tcrash_clique(4, restart_after=15.0),
                SESSION,
                seed=seed,
                keep_network=True,
            )
            for seed in (0, 1)
        ]
        assert trace_signature(runs[0]) != trace_signature(runs[1])


class TestSweepFaultIsolation:
    """One budget-exhausted trial must not take down the sweep."""

    TIGHT = RunSettings(event_budget=30)  # clique-2 fits, clique-5 cannot

    def test_failed_trials_recorded_and_survivors_measured(self):
        points = sweep(
            (2, 5),
            make_scenario=lambda x, seed: tdown_clique(int(x)),
            make_config=lambda x: FAST,
            seeds=(0, 1),
            settings=self.TIGHT,
        )
        ok, dead = points
        assert ok.succeeded == 2 and ok.failed == 0
        assert dead.succeeded == 0 and dead.failed == 2
        # Survivors still produce metrics.
        assert ok.metrics()["convergence_time"] >= 0.0
        # Failures carry the post-mortem snapshot.
        for failure in dead.failures:
            assert isinstance(failure.error, BudgetExceededError)
            assert isinstance(failure.snapshot, DiagnosticSnapshot)
            assert failure.snapshot.pending_events > 0
            assert "pending" in failure.snapshot.render()
        assert len(failures_of(points)) == 2

    def test_on_error_raise_preserves_seed_behavior(self):
        with pytest.raises(BudgetExceededError):
            sweep(
                (5,),
                make_scenario=lambda x, seed: tdown_clique(int(x)),
                make_config=lambda x: FAST,
                seeds=(0,),
                settings=self.TIGHT,
                on_error="raise",
            )

    def test_trial_error_hook_observes_failures(self):
        seen = []
        sweep(
            (5,),
            make_scenario=lambda x, seed: tdown_clique(int(x)),
            make_config=lambda x: FAST,
            seeds=(0, 1),
            settings=self.TIGHT,
            on_trial_error=seen.append,
        )
        assert [(f.x, f.seed) for f in seen] == [(5, 0), (5, 1)]
