"""Traffic-weighted data-plane evaluation over prefix populations.

The paper's ``looping_ratio`` treats every packet equally and one destination
at a time.  Production damage is weighted: a loop that catches the heaviest
flows of a 256-prefix table hurts more than one catching a trickle.
:class:`TrafficMatrixEvaluator` replays the run's FIB log as *multi-prefix*
epochs (any change to any prefix is a boundary), resolves every flow by
longest prefix match, and reports the **fraction of offered traffic** that
was looped / blackholed / delivered — the ROADMAP's millions-of-users metric.

Per epoch the forwarding state for one destination address is a functional
graph, so all sources sharing a destination are classified in one pass.  With
numpy available that pass is vectorized pointer doubling (``nxt = nxt[nxt]``
until every walk is absorbed); without it, a memoized per-source walk
computes the identical classification.  All accounting is integer packet
counts from the CBR arithmetic, so results are bit-identical across both
paths, platforms, and process counts.

Two structural facts keep this O(changes), not O(epochs × flows):

* a destination's fate can change **only** when a prefix containing its
  address changed at the epoch boundary (:meth:`FibChangeLog.multi_epochs`
  reports exactly that set), so classifications are cached and epochs with
  no relevant change extend the current constant-fate *segment*;
* CBR counting is an index difference, so per-flow counts over a merged
  segment equal the sum of its per-epoch counts exactly — accounting can
  happen once per segment (vectorized over every flow at once with numpy)
  with bit-identical totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..errors import AnalysisError
from ..prefixes import ADDRESS_BITS, PrefixSpec, parse_prefix
from ..prefixes.trie import RadixTrie
from .fib import FibChangeLog, MultiPrefixFib
from .packet import DEFAULT_TTL, PacketFate, walk_lpm
from .traffic import TrafficMatrix

_parse_spec = lru_cache(maxsize=None)(parse_prefix)

try:  # numpy is optional: the pure-python path is exactly equivalent.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

_DELIVERED = 0
_BLACKHOLED = 1
_LOOPED = 2


@dataclass(frozen=True, slots=True)
class EpochTraffic:
    """Traffic accounting for one multi-prefix epoch."""

    start: float
    end: float
    offered: int
    delivered: int
    blackholed: int
    looped: int

    @property
    def looped_fraction(self) -> float:
        return self.looped / self.offered if self.offered else 0.0

    @property
    def blackholed_fraction(self) -> float:
        return self.blackholed / self.offered if self.offered else 0.0


@dataclass
class TrafficReport:
    """Offered-traffic fate totals over an evaluation window.

    All counts are integer packets (CBR arithmetic), so every derived
    fraction is an exact ratio of integers — digest-safe.
    """

    window: Tuple[float, float]
    flows: int = 0
    prefixes: int = 0
    offered: int = 0
    delivered: int = 0
    blackholed: int = 0
    looped: int = 0
    epoch_rows: List[EpochTraffic] = field(default_factory=list)

    @property
    def looped_fraction(self) -> float:
        """Fraction of offered traffic that died looping (traffic-weighted
        analogue of the paper's looping ratio)."""
        return self.looped / self.offered if self.offered else 0.0

    @property
    def blackholed_fraction(self) -> float:
        """Fraction of offered traffic dropped for lack of a route."""
        return self.blackholed / self.offered if self.offered else 0.0

    @property
    def delivered_fraction(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def lost_fraction(self) -> float:
        """Looped plus blackholed, as a fraction of offered traffic."""
        return (self.looped + self.blackholed) / self.offered if self.offered else 0.0

    def worst_epoch(self) -> Optional[EpochTraffic]:
        """The epoch with the highest looped fraction (ties: earliest)."""
        worst: Optional[EpochTraffic] = None
        for row in self.epoch_rows:
            if worst is None or row.looped_fraction > worst.looped_fraction:
                worst = row
        return worst


class TrafficMatrixEvaluator:
    """Computes a :class:`TrafficReport` from a FIB log and a traffic matrix.

    Parameters
    ----------
    log:
        The run's :class:`~repro.dataplane.fib.FibChangeLog` (all prefixes).
    matrix:
        The offered demand.
    ttl:
        Initial TTL.  The vectorized path requires ``ttl`` to exceed the
        node count (so cycle membership and TTL death coincide); epochs
        violating that fall back to the walk-based path automatically.
    use_numpy:
        ``None`` (default) uses numpy when importable; ``False`` forces the
        pure-python path; ``True`` raises if numpy is missing.  Both paths
        produce identical classifications — the switch exists for the
        equivalence tests and numpy-free installs.
    epoch_rows:
        ``True`` (default) collects one :class:`EpochTraffic` row per
        constant-fate segment, which costs one whole-matrix accounting
        pass per segment — O(segments × flows), quadratic in population
        at routing-table scale since both factors grow with the prefix
        count.  ``False`` switches to per-destination segment accounting:
        the report's totals (and every derived fraction) are bit-identical
        — per-flow CBR counts telescope exactly across any partition of
        the window — but ``report.epoch_rows`` stays empty.  Use for 10k+
        prefix populations where per-epoch detail is not worth O(P²).
    """

    def __init__(
        self,
        log: FibChangeLog,
        matrix: TrafficMatrix,
        ttl: int = DEFAULT_TTL,
        use_numpy: Optional[bool] = None,
        epoch_rows: bool = True,
    ) -> None:
        if not matrix.flows:
            raise AnalysisError("traffic matrix has no flows")
        if use_numpy and _np is None:
            raise AnalysisError("numpy requested but not importable")
        self._log = log
        self._matrix = matrix
        self._ttl = ttl
        self._numpy = (_np is not None) if use_numpy is None else bool(use_numpy)
        self._epoch_rows = bool(epoch_rows)
        # Group flows by destination once: all flows to one address share a
        # functional graph per epoch and classify together.
        self._by_destination: Dict[Union[int, str], List] = {}
        for flow in matrix.flows:
            self._by_destination.setdefault(flow.destination, []).append(flow)
        self._destinations = list(self._by_destination)
        self._sources_of = {
            dest: [f.source for f in flows]
            for dest, flows in self._by_destination.items()
        }
        # Flat flow order (grouped by destination) for whole-matrix
        # accounting; each destination owns the slice [lo, hi) of it.
        self._flat_flows = [
            flow for dest in self._destinations
            for flow in self._by_destination[dest]
        ]
        self._dest_slice: Dict[Union[int, str], Tuple[int, int]] = {}
        lo = 0
        for dest in self._destinations:
            hi = lo + len(self._by_destination[dest])
            self._dest_slice[dest] = (lo, hi)
            lo = hi
        if _np is not None:
            self._flat_starts = _np.array(
                [f.start for f in self._flat_flows], dtype=_np.float64
            )
            self._flat_rates = _np.array(
                [f.rate for f in self._flat_flows], dtype=_np.float64
            )
        # The node universe for vectorized classification: anywhere a packet
        # can start or be forwarded through.
        nodes = {flow.source for flow in matrix.flows}
        nodes.update(change.node for change in log)
        for change in log:
            if change.next_hop is not None:
                nodes.add(change.next_hop)
        self._nodes = sorted(nodes)
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        self._flat_fates: List[int] = [_BLACKHOLED] * len(self._flat_flows)
        # Inverted destination index: every integer destination as a /32
        # radix-trie entry, so "which destinations does this changed prefix
        # touch?" is a subtree walk (specifics enumeration), not a scan over
        # every destination.  Opaque destinations match exactly, by name.
        self._dest_order = {dest: i for i, dest in enumerate(self._destinations)}
        self._dest_trie = RadixTrie()
        self._opaque_dests: Dict[str, str] = {}
        for dest in self._destinations:
            if isinstance(dest, int):
                self._dest_trie.insert(PrefixSpec(dest, ADDRESS_BITS), dest)
            else:
                self._opaque_dests[dest] = dest

    # ------------------------------------------------------------------

    def evaluate(self, start: float, end: float) -> TrafficReport:
        """Evaluate flow fates over ``[start, end)``."""
        if end < start:
            raise AnalysisError(f"window end {end} before start {start}")
        report = TrafficReport(
            window=(start, end),
            flows=len(self._matrix.flows),
            prefixes=len(self._matrix.prefixes()),
        )
        if not self._epoch_rows:
            return self._evaluate_totals(report, start, end)
        segment: Optional[List[float]] = None
        classified = False
        for t0, t1, fib, changed in self._log.multi_epochs(start, end):
            if not classified:
                self._reclassify(fib, self._destinations)
                classified = True
                segment = [t0, t1]
                continue
            invalid = self._invalidated(changed)
            if invalid:
                assert segment is not None
                self._flush_segment(report, segment[0], segment[1])
                self._reclassify(fib, invalid)
                segment = [t0, t1]
            else:
                assert segment is not None
                segment[1] = t1
        if segment is not None:
            self._flush_segment(report, segment[0], segment[1])
        return report

    def _evaluate_totals(
        self, report: TrafficReport, start: float, end: float
    ) -> TrafficReport:
        """Totals-only evaluation with per-destination segments.

        Instead of closing a whole-matrix segment whenever *any*
        destination reclassifies, each destination carries its own segment
        start and is accounted only when *it* reclassifies (and once at the
        end).  Per-flow CBR counts telescope exactly across partitions of
        the window, so the report totals are bit-identical to the
        epoch-row path; only the per-epoch rows are not materialized.
        """
        segment_start: Dict[Union[int, str], float] = {}
        classified = False
        for t0, _t1, fib, changed in self._log.multi_epochs(start, end):
            if not classified:
                self._reclassify(fib, self._destinations)
                classified = True
                for dest in self._destinations:
                    segment_start[dest] = t0
                continue
            invalid = self._invalidated(changed)
            if invalid:
                for dest in invalid:
                    self._flush_destination(report, dest, segment_start[dest], t0)
                    segment_start[dest] = t0
                self._reclassify(fib, invalid)
        if classified:
            for dest in self._destinations:
                self._flush_destination(report, dest, segment_start[dest], end)
        return report

    def _flush_destination(
        self, report: TrafficReport, dest: Union[int, str], t0: float, t1: float
    ) -> None:
        """Account one destination's flows over ``[t0, t1)`` (totals only)."""
        lo, hi = self._dest_slice[dest]
        for index in range(lo, hi):
            count = self._flat_flows[index].count_in(t0, t1)
            if not count:
                continue
            report.offered += count
            fate = self._flat_fates[index]
            if fate == _DELIVERED:
                report.delivered += count
            elif fate == _BLACKHOLED:
                report.blackholed += count
            else:
                report.looped += count

    # ------------------------------------------------------------------
    # Segment machinery: cached fates, invalidation, exact accounting
    # ------------------------------------------------------------------

    def _invalidated(
        self, changed: FrozenSet
    ) -> List[Union[int, str]]:
        """Destinations whose LPM resolution could differ after ``changed``.

        Exact, not heuristic: a destination's functional graph reads
        ``fib.next_hop(node, address)`` at every node, which can only move
        when a changed prefix *contains* the address (structured) or equals
        it (opaque legacy name)."""
        if not changed:
            return []
        touched: Set[Union[int, str]] = set()
        for prefix in changed:
            spec = _parse_spec(prefix)
            if spec is None:
                dest = self._opaque_dests.get(prefix)
                if dest is not None:
                    touched.add(dest)
            else:
                # Subtree walk over the /32 destination entries the changed
                # prefix covers — O(hits), not O(destinations).
                for _spec, dest in self._dest_trie.covered(spec):
                    touched.add(dest)
        return sorted(touched, key=self._dest_order.__getitem__)

    def _reclassify(
        self, fib: MultiPrefixFib, destinations: Sequence[Union[int, str]]
    ) -> None:
        for dest in destinations:
            fates = self._classify(fib, dest, self._sources_of[dest])
            lo, _hi = self._dest_slice[dest]
            for offset, fate in enumerate(fates):
                self._flat_fates[lo + offset] = fate

    def _flush_segment(
        self, report: TrafficReport, t0: float, t1: float
    ) -> None:
        """Account ``[t0, t1)`` under the current (constant) classification.

        Per-flow counts over a merged segment telescope to the sum of its
        per-epoch counts (CBR counting is a first-index difference), so
        this is bit-identical to per-epoch accounting."""
        offered = delivered = blackholed = looped = 0
        if self._numpy:
            counts = self._counts_vector(t0, t1)
            fates = _np.array(self._flat_fates, dtype=_np.int64)
            offered = int(counts.sum())
            if offered:
                delivered = int(counts[fates == _DELIVERED].sum())
                blackholed = int(counts[fates == _BLACKHOLED].sum())
                looped = offered - delivered - blackholed
        else:
            for flow, fate in zip(self._flat_flows, self._flat_fates):
                count = flow.count_in(t0, t1)
                if not count:
                    continue
                offered += count
                if fate == _DELIVERED:
                    delivered += count
                elif fate == _BLACKHOLED:
                    blackholed += count
                else:
                    looped += count
        report.offered += offered
        report.delivered += delivered
        report.blackholed += blackholed
        report.looped += looped
        report.epoch_rows.append(
            EpochTraffic(t0, t1, offered, delivered, blackholed, looped)
        )

    def _counts_vector(self, t0: float, t1: float):
        """Vectorized :meth:`CbrSource.count_in` over every flow at once.

        Replicates the scalar arithmetic operation for operation (same
        float64 subtraction/multiply/ceil, same epsilon), so each element
        equals ``flow.count_in(t0, t1)`` bitwise."""

        def first_index(time: float):
            raw = _np.ceil(
                (time - self._flat_starts) * self._flat_rates - 1e-12
            )
            return _np.where(
                time <= self._flat_starts, 0.0, raw
            ).astype(_np.int64)

        return _np.maximum(first_index(t1) - first_index(t0), 0)

    # ------------------------------------------------------------------
    # Classification backends
    # ------------------------------------------------------------------

    def _classify(
        self, fib: MultiPrefixFib, destination: Union[int, str], sources: List[int]
    ) -> List[int]:
        # Vectorization has fixed per-call numpy overhead; on small graphs
        # the memoized walks win.  Both backends produce the identical
        # classification (pinned by the equivalence tests), so the cutover
        # is a pure performance knob.
        n = len(self._nodes)
        if self._numpy and self._ttl >= n and n >= 16:
            return self._classify_vectorized(fib, destination, sources)
        return self._classify_walks(fib, destination, sources)

    def _classify_walks(
        self, fib: MultiPrefixFib, destination: Union[int, str], sources: List[int]
    ) -> List[int]:
        if self._ttl < len(self._nodes):
            # TTL can die of sheer path length; only the full hop-by-hop
            # walk reproduces that fate exactly.
            return self._classify_walks_ttl(fib, destination, sources)
        # ttl >= node count: TTL death coincides with cycle membership, so
        # one memoized walk classifies every node it touches.  Each trail's
        # terminal fate (delivered / no-route / entered-a-cycle / reached an
        # already-classified node) propagates to the whole trail — every
        # node feeding a cycle spins with it.
        fate_of: Dict[int, int] = {}
        fates = []
        for source in sources:
            fate = fate_of.get(source)
            if fate is None:
                trail = []
                on_trail: Dict[int, None] = {}
                node = source
                while True:
                    fate = fate_of.get(node)
                    if fate is not None:
                        break
                    hop = fib.next_hop(node, destination)
                    if hop == node:
                        fate = _DELIVERED
                        trail.append(node)
                        break
                    if hop is None:
                        fate = _BLACKHOLED
                        trail.append(node)
                        break
                    if hop in on_trail:
                        fate = _LOOPED
                        trail.append(node)
                        break
                    on_trail[node] = None
                    trail.append(node)
                    node = hop
                for walked in trail:
                    fate_of[walked] = fate
            fates.append(fate)
        return fates

    def _classify_walks_ttl(
        self, fib: MultiPrefixFib, destination: Union[int, str], sources: List[int]
    ) -> List[int]:
        cache: Dict[int, int] = {}
        fates = []
        for source in sources:
            fate = cache.get(source)
            if fate is None:
                result = walk_lpm(fib, source, destination, self._ttl)
                if result.fate is PacketFate.DELIVERED:
                    fate = _DELIVERED
                elif result.fate is PacketFate.DROPPED_NO_ROUTE:
                    fate = _BLACKHOLED
                else:
                    fate = _LOOPED
                cache[source] = fate
            fates.append(fate)
        return fates

    def _classify_vectorized(
        self, fib: MultiPrefixFib, destination: Union[int, str], sources: List[int]
    ) -> List[int]:
        """Pointer-doubling classification of every node at once.

        Index ``n`` is a sink sentinel ("no route"); delivery nodes and the
        sentinel are absorbing self-loops, so after ``2**k >= n`` doubled
        hops every walk rests at its delivery node, at the sentinel, or
        inside a forwarding cycle.  Requires ``ttl >= n`` (checked by the
        caller) so "inside a cycle" and "TTL death" coincide with
        :func:`~repro.dataplane.packet.walk_lpm`.
        """
        n = len(self._nodes)
        nxt = _np.full(n + 1, n, dtype=_np.int64)
        delivers = _np.zeros(n + 1, dtype=bool)
        for i, node in enumerate(self._nodes):
            hop = fib.next_hop(node, destination)
            if hop is None:
                continue
            if hop == node:
                nxt[i] = i
                delivers[i] = True
            else:
                nxt[i] = self._node_index.get(hop, n)
        steps = 1
        while steps < n:
            nxt = nxt[nxt]
            steps *= 2
        final = nxt
        fates = []
        for source in sources:
            i = self._node_index[source]
            f = int(final[i])
            if f < n and delivers[f]:
                fates.append(_DELIVERED)
            elif f == n:
                fates.append(_BLACKHOLED)
            else:
                fates.append(_LOOPED)
        return fates
