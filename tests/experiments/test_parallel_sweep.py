"""The parallel sweep executor: digest-verified equivalence to sequential.

The contract under test: ``sweep(..., jobs=N)`` is *bit-identical* to
``sweep(..., jobs=1)`` — same per-trial trace/FIB/summary SHA-256
fingerprints, same aggregate point metrics, same failures in the same
order — with fault isolation preserved across the process boundary.
"""

import pytest

from repro.bgp import BgpConfig
from repro.errors import AnalysisError, BudgetExceededError, ConfigError
from repro.experiments import (
    RunSettings,
    TrialProgress,
    bclique_tflap_trial,
    clique_tdown_trial,
    constant_config,
    factory_ref,
    failures_of,
    sweep,
    xs_of,
)

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
TRACED = RunSettings(failure_guard=0.5, telemetry=True)
#: Kills the 6-clique's warm-up while the 3-clique sails through
#: (calibrated: the 6-clique needs > 200 events, the 3-clique far fewer).
TIGHT = RunSettings(failure_guard=0.5, event_budget=200)

MAKE_CONFIG = factory_ref(constant_config, config=FAST)

JOBS = 4


def digests(points):
    return [run.fingerprint.digest for point in points for run in point.runs]


class TestGoldenEquivalence:
    """jobs=1 and jobs=4 must be indistinguishable, digest by digest."""

    @pytest.fixture(scope="class")
    def tdown_pair(self):
        kwargs = dict(seeds=(0, 1), settings=SETTINGS, digests=True)
        sequential = sweep([3, 4], clique_tdown_trial, MAKE_CONFIG, **kwargs)
        parallel = sweep(
            [3, 4], clique_tdown_trial, MAKE_CONFIG, jobs=JOBS, **kwargs
        )
        return sequential, parallel

    @pytest.fixture(scope="class")
    def tflap_pair(self):
        make_scenario = factory_ref(bclique_tflap_trial, size=3, count=2)
        kwargs = dict(seeds=(0, 1), settings=SETTINGS, digests=True)
        sequential = sweep([5.0, 9.0], make_scenario, MAKE_CONFIG, **kwargs)
        parallel = sweep(
            [5.0, 9.0], make_scenario, MAKE_CONFIG, jobs=JOBS, **kwargs
        )
        return sequential, parallel

    def test_tdown_trial_digests_identical(self, tdown_pair):
        sequential, parallel = tdown_pair
        assert digests(sequential) == digests(parallel)
        assert len(digests(sequential)) == 4

    def test_tdown_aggregate_metrics_identical(self, tdown_pair):
        sequential, parallel = tdown_pair
        assert [p.metrics() for p in sequential] == [
            p.metrics() for p in parallel
        ]

    def test_tdown_point_order_is_task_order(self, tdown_pair):
        _, parallel = tdown_pair
        assert xs_of(parallel) == [3, 4]
        assert [run.seed for point in parallel for run in point.runs] == [
            0, 1, 0, 1,
        ]

    def test_tflap_trial_digests_identical(self, tflap_pair):
        sequential, parallel = tflap_pair
        assert digests(sequential) == digests(parallel)
        assert len(digests(sequential)) == 4

    def test_tflap_aggregate_metrics_identical(self, tflap_pair):
        sequential, parallel = tflap_pair
        assert [p.metrics() for p in sequential] == [
            p.metrics() for p in parallel
        ]

    def test_fingerprints_cover_trace_fib_and_summary(self, tdown_pair):
        sequential, _ = tdown_pair
        fingerprint = sequential[0].runs[0].fingerprint
        assert fingerprint.messages > 0
        assert fingerprint.fib_changes > 0
        assert "convergence_time=" in fingerprint.summary_line

    def test_networks_dropped_in_both_modes(self, tdown_pair):
        sequential, parallel = tdown_pair
        assert all(r.network is None for p in sequential for r in p.runs)
        assert all(r.network is None for p in parallel for r in p.runs)


class TestTelemetryEquivalence:
    """Telemetry snapshots ride home from workers without touching digests."""

    @pytest.fixture(scope="class")
    def traced_pair(self):
        kwargs = dict(seeds=(0, 1), settings=TRACED, digests=True)
        sequential = sweep([3, 4], clique_tdown_trial, MAKE_CONFIG, **kwargs)
        parallel = sweep(
            [3, 4], clique_tdown_trial, MAKE_CONFIG, jobs=JOBS, **kwargs
        )
        return sequential, parallel

    @pytest.fixture(scope="class")
    def plain(self):
        return sweep(
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0, 1),
            settings=SETTINGS,
            digests=True,
        )

    def test_telemetry_on_off_digests_identical(self, traced_pair, plain):
        """The probe only observes: fingerprints are bit-identical either way."""
        sequential, _ = traced_pair
        assert digests(sequential) == digests(plain)

    def test_traced_parallel_digests_match_sequential(self, traced_pair):
        sequential, parallel = traced_pair
        assert digests(sequential) == digests(parallel)
        assert len(digests(sequential)) == 4

    def test_snapshots_pickle_across_workers(self, traced_pair):
        _, parallel = traced_pair
        for point in parallel:
            for run in point.runs:
                assert run.metrics is not None
                assert run.metrics.counter("engine.events_executed") > 0
                assert run.metrics.counter("bgp.decision_runs") > 0

    def test_worker_snapshots_equal_sequential(self, traced_pair):
        sequential, parallel = traced_pair
        seq_runs = [run for point in sequential for run in point.runs]
        par_runs = [run for point in parallel for run in point.runs]
        assert [r.metrics for r in seq_runs] == [r.metrics for r in par_runs]

    def test_point_aggregation(self, traced_pair):
        _, parallel = traced_pair
        point = parallel[0]
        aggregate = point.telemetry()
        per_run = sum(
            run.metrics.counter("engine.events_executed") for run in point.runs
        )
        assert aggregate.counter("engine.events_executed") == per_run

    def test_plain_runs_carry_no_snapshots(self, plain):
        assert all(run.metrics is None for p in plain for run in p.runs)
        assert all(run.timeline is None for p in plain for run in p.runs)


class TestFailureEquivalence:
    """An injected BudgetExceededError trial must not perturb equivalence."""

    @pytest.fixture(scope="class")
    def pair(self):
        kwargs = dict(seeds=(0,), settings=TIGHT, digests=True)
        sequential = sweep([3, 6], clique_tdown_trial, MAKE_CONFIG, **kwargs)
        parallel = sweep(
            [3, 6], clique_tdown_trial, MAKE_CONFIG, jobs=JOBS, **kwargs
        )
        return sequential, parallel

    def test_failure_is_injected(self, pair):
        sequential, _ = pair
        assert [(p.succeeded, p.failed) for p in sequential] == [(1, 0), (0, 1)]

    def test_failures_match_sequential(self, pair):
        sequential, parallel = pair
        seq_failure = failures_of(sequential)[0]
        par_failure = failures_of(parallel)[0]
        assert (par_failure.x, par_failure.seed) == (seq_failure.x, seq_failure.seed)
        assert isinstance(par_failure.error, BudgetExceededError)
        assert str(par_failure.error) == str(seq_failure.error)

    def test_snapshot_survives_worker_boundary(self, pair):
        sequential, parallel = pair
        seq_snapshot = failures_of(sequential)[0].snapshot
        par_snapshot = failures_of(parallel)[0].snapshot
        assert par_snapshot is not None
        assert par_snapshot == seq_snapshot
        assert par_snapshot.events_processed > 0
        assert "t=" in par_snapshot.render()

    def test_surviving_trials_digest_identical(self, pair):
        sequential, parallel = pair
        assert digests(sequential) == digests(parallel)
        assert len(digests(sequential)) == 1

    def test_on_trial_error_called_in_task_order(self):
        seen = []
        sweep(
            [3, 6],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=TIGHT,
            jobs=JOBS,
            on_trial_error=lambda failure: seen.append((failure.x, failure.seed)),
        )
        assert seen == [(6, 0)]

    def test_on_error_raise_raises_from_workers(self):
        with pytest.raises(BudgetExceededError) as excinfo:
            sweep(
                [3, 6],
                clique_tdown_trial,
                MAKE_CONFIG,
                seeds=(0,),
                settings=TIGHT,
                jobs=JOBS,
                on_error="raise",
            )
        # The snapshot still rides on the raised error.
        assert excinfo.value.snapshot is not None


class TestExecutorPlumbing:
    def test_jobs_zero_means_cpu_count(self):
        points = sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            jobs=0,
        )
        assert points[0].succeeded == 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(AnalysisError):
            sweep([3], clique_tdown_trial, MAKE_CONFIG, jobs=-1)

    def test_closures_rejected_with_remedy(self):
        with pytest.raises(AnalysisError, match="factory_ref"):
            sweep(
                [3],
                lambda x, seed: None,
                MAKE_CONFIG,
                settings=SETTINGS,
                jobs=2,
            )

    def test_closures_still_fine_sequentially(self):
        from repro.experiments import tdown_clique

        points = sweep(
            [3],
            lambda x, seed: tdown_clique(int(x)),
            lambda x: FAST,
            seeds=(0,),
            settings=SETTINGS,
        )
        assert points[0].succeeded == 1

    def test_progress_callback_sees_every_trial(self):
        seen = []
        sweep(
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0, 1),
            settings=SETTINGS,
            jobs=2,
            on_progress=seen.append,
        )
        assert len(seen) == 4
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(isinstance(p, TrialProgress) and p.ok for p in seen)
        assert {(p.x, p.seed) for p in seen} == {
            (3, 0), (3, 1), (4, 0), (4, 1),
        }

    def test_progress_callback_sequential_order(self):
        seen = []
        sweep(
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            on_progress=seen.append,
        )
        assert [(p.x, p.seed, p.done, p.total) for p in seen] == [
            (3, 0, 1, 2), (4, 0, 2, 2),
        ]


class TestFactoryRef:
    def test_ref_is_callable_like_the_function(self):
        ref = factory_ref(clique_tdown_trial)
        assert ref(4, 0).name == "tdown-clique-4"

    def test_kwargs_are_bound(self):
        ref = factory_ref(bclique_tflap_trial, size=3, count=2)
        scenario = ref(5.0, 1)
        assert scenario.flap_period == 5.0
        assert scenario.flap_count == 2

    def test_string_target_resolves(self):
        ref = factory_ref(
            "repro.experiments.scenarios:clique_tdown_trial"
        )
        assert ref(3, 0).name == "tdown-clique-3"

    def test_lambda_rejected(self):
        with pytest.raises(ConfigError, match="module-level"):
            factory_ref(lambda x, seed: None)

    def test_inner_function_rejected(self):
        def inner(x, seed):
            return None

        with pytest.raises(ConfigError, match="module-level"):
            factory_ref(inner)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigError):
            factory_ref("repro.experiments.scenarios:does_not_exist")

    def test_unpicklable_kwargs_rejected(self):
        with pytest.raises(ConfigError, match="picklable"):
            factory_ref(clique_tdown_trial, hook=lambda: None)

    def test_ref_round_trips_through_pickle(self):
        import pickle

        ref = factory_ref(bclique_tflap_trial, size=3)
        clone = pickle.loads(pickle.dumps(ref))
        assert clone == ref
        assert clone(5.0, 0).name == ref(5.0, 0).name
