"""Property tests for the epoch evaluator and loop statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.core import LoopStatistics
from repro.core.loop_detector import LoopInterval
from repro.dataplane import CbrSource, EpochEvaluator, FibChangeLog

P = "dest"

fib_histories = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=0, max_value=5),
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    ),
    max_size=25,
)

source_sets = st.lists(
    st.builds(
        CbrSource,
        node=st.integers(min_value=0, max_value=5),
        rate=st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
        start=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=4,
)


def build_log(changes):
    log = FibChangeLog()
    for time, node, hop in sorted(changes, key=lambda c: c[0]):
        log.record(time, node, P, hop)
    return log


@given(fib_histories, source_sets, st.floats(min_value=0.0, max_value=40.0),
       st.floats(min_value=0.0, max_value=20.0))
def test_packet_fates_are_conserved(changes, sources, start, width):
    """delivered + dropped + exhausted == packets sent, always."""
    log = build_log(changes)
    report = EpochEvaluator(log, P, sources, ttl=32).evaluate(start, start + width)
    assert (
        report.delivered + report.dropped_no_route + report.ttl_exhaustions
        == report.packets_sent
    )
    expected = sum(s.count_in(start, start + width) for s in sources)
    assert report.packets_sent == expected


@given(fib_histories, source_sets)
def test_looping_ratio_bounded(changes, sources):
    log = build_log(changes)
    report = EpochEvaluator(log, P, sources, ttl=32).evaluate(0.0, 30.0)
    assert 0.0 <= report.looping_ratio <= 1.0
    assert 0.0 <= report.delivery_ratio <= 1.0


@given(fib_histories, source_sets)
def test_exhaustion_timestamps_ordered(changes, sources):
    log = build_log(changes)
    report = EpochEvaluator(log, P, sources, ttl=32).evaluate(0.0, 30.0)
    if report.ttl_exhaustions:
        assert report.first_exhaustion is not None
        assert report.last_exhaustion is not None
        assert report.first_exhaustion <= report.last_exhaustion
    else:
        assert report.first_exhaustion is None
        assert report.overall_looping_duration == 0.0


intervals = st.lists(
    st.builds(
        lambda cycle, start, dur: LoopInterval(
            cycle=tuple(sorted(cycle)), start=start, end=start + dur
        ),
        cycle=st.sets(st.integers(min_value=0, max_value=20), min_size=2, max_size=5),
        start=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        dur=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    ),
    max_size=15,
)


@given(intervals, intervals)
def test_loop_statistics_merge_is_additive(a, b):
    stats_a = LoopStatistics.from_intervals(a)
    stats_b = LoopStatistics.from_intervals(b)
    merged = LoopStatistics.merge([stats_a, stats_b])
    assert merged.count == stats_a.count + stats_b.count
    assert merged.total_loop_seconds() == pytest.approx(
        stats_a.total_loop_seconds() + stats_b.total_loop_seconds()
    )
    for size, count in stats_a.size_histogram().items():
        assert merged.size_histogram()[size] >= count


@given(intervals)
def test_two_node_share_in_unit_interval(a):
    stats = LoopStatistics.from_intervals(a)
    assert 0.0 <= stats.two_node_share() <= 1.0
    if stats.count:
        histogram = stats.size_histogram()
        assert sum(histogram.values()) == stats.count
        participation = stats.node_participation()
        assert sum(participation.values()) == sum(stats.sizes())
