"""Multi-prefix benchmark: Tagg runs and epoch-evaluator throughput.

The CI-gated performance benchmark backing the prefix dimension: full
:func:`repro.experiments.runner.run_experiment` trials on the Tagg family
(aggregate/deaggregate churn over a seeded prefix population, traffic
matrix on) at two population sizes, plus an isolated timing of the
traffic-matrix epoch evaluator over the 256-prefix log — the component the
fate-cache/segment optimization targets.

* ``tagg64``: 64 specifics, 2 origins, 4-clique — updates/sec of the
  control plane with per-prefix state fanned out;
* ``tagg256``: the acceptance-criteria population (256 specifics);
* ``eval256``: re-evaluates the 256-prefix run's FIB log against its
  traffic matrix; ``updates_per_s`` reports *offered packets per second of
  evaluator wall-clock* (integer CBR packets classified and accounted).

Same medians-of-``--repeat`` JSON schema as ``bench_hotpath.py``; gate with
``compare_baselines.py`` against ``benchmarks/baselines/BENCH_multiprefix.json``:

    PYTHONPATH=src python benchmarks/bench_multiprefix.py --output BENCH_multiprefix.json
    python benchmarks/compare_baselines.py \
        benchmarks/baselines/BENCH_multiprefix.json BENCH_multiprefix.json

Scaling mode
------------

``--population N [N ...]`` switches to the routing-table-scale curve: one
Tagg run per population under the memory-lean configuration (per-peer
MRAI, batched UPDATEs, totals-only traffic accounting) that 10k-prefix
workloads use.  The emitted document's benchmark name is
``multiprefix-scaling`` with one ``pop<N>`` result per population; the
committed curve lives at ``benchmarks/baselines/BENCH_scaling.json``:

    PYTHONPATH=src python benchmarks/bench_multiprefix.py \
        --population 1024 4096 10240 --output BENCH_scaling.json
    python benchmarks/compare_baselines.py \
        benchmarks/baselines/BENCH_scaling.json BENCH_scaling.json

Refreshing the scaling baseline after an intentional perf change: run the
exact command above on a quiet machine (repeat 3) and commit the output
over ``benchmarks/baselines/BENCH_scaling.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bgp import BgpConfig  # noqa: E402
from repro.dataplane import TrafficMatrix, TrafficMatrixEvaluator  # noqa: E402
from repro.experiments import RunSettings  # noqa: E402
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.experiments.scenarios import tagg_clique  # noqa: E402

SCHEMA_VERSION = 1

CONFIG = BgpConfig(mrai=2.0)
SETTINGS = RunSettings(traffic_matrix=True)
POPULATIONS = {"tagg64": 64, "tagg256": 256}

# Routing-table-scale curve: the memory-lean configuration.  Per-peer MRAI
# and batched UPDATEs amortize timer and dissemination work over the whole
# dirtied prefix set; totals-only traffic accounting drops the per-epoch
# row log that dominates memory at 10k prefixes.
SCALING_CONFIG = BgpConfig(mrai=2.0, mrai_mode="per-peer", batch_updates=True)
SCALING_SETTINGS = RunSettings(traffic_matrix=True, traffic_epoch_rows=False)


def _scenario(prefixes: int):
    return tagg_clique(4, prefixes=prefixes, origins=2, hold=5.0)


def run_tagg(name: str, repeat: int, seed: int) -> Dict[str, object]:
    """Median-of-``repeat`` full-run timing for one population size."""
    samples = []
    updates = 0
    scenario_name = ""
    for _ in range(repeat):
        scenario = _scenario(POPULATIONS[name])
        scenario_name = scenario.name
        start = time.perf_counter()
        run = run_experiment(scenario, CONFIG, SETTINGS, seed=seed)
        samples.append(time.perf_counter() - start)
        updates = run.result.convergence.update_count
    wall = statistics.median(samples)
    return {
        "scenario": scenario_name,
        "wall_clock_s": round(wall, 6),
        "samples_s": [round(s, 6) for s in samples],
        "updates": updates,
        "updates_per_s": round(updates / wall, 1),
    }


def run_scaling(population: int, repeat: int, seed: int) -> Dict[str, object]:
    """Median-of-``repeat`` full-run timing at one scaling population."""
    samples = []
    updates = 0
    scenario_name = ""
    for _ in range(repeat):
        scenario = _scenario(population)
        scenario_name = scenario.name
        start = time.perf_counter()
        run = run_experiment(scenario, SCALING_CONFIG, SCALING_SETTINGS, seed=seed)
        samples.append(time.perf_counter() - start)
        updates = run.result.convergence.update_count
    wall = statistics.median(samples)
    return {
        "scenario": scenario_name,
        "wall_clock_s": round(wall, 6),
        "samples_s": [round(s, 6) for s in samples],
        "updates": updates,
        "updates_per_s": round(updates / wall, 1),
    }


def run_eval(repeat: int, seed: int) -> Dict[str, object]:
    """Median-of-``repeat`` evaluator-only timing on the 256-prefix log.

    The simulation runs once (untimed); each sample re-evaluates the same
    FIB log and traffic matrix from scratch, so the number measures the
    epoch evaluator — segment merging, fate caching, vectorized counting —
    not the control plane.
    """
    scenario = _scenario(256)
    run = run_experiment(scenario, CONFIG, RunSettings(), seed=seed)
    matrix = TrafficMatrix.seeded(
        nodes=scenario.topology.nodes,
        prefixes=sorted({p for _n, p in scenario.effective_originations}),
        seed=seed,
        origins=scenario.origins_by_prefix(),
    )
    window = (run.failure_time, run.result.convergence.convergence_end)
    samples = []
    offered = 0
    for _ in range(repeat):
        start = time.perf_counter()
        report = TrafficMatrixEvaluator(run.fib_log, matrix).evaluate(*window)
        samples.append(time.perf_counter() - start)
        offered = report.offered
    wall = statistics.median(samples)
    return {
        "scenario": f"{scenario.name}-eval",
        "wall_clock_s": round(wall, 6),
        "samples_s": [round(s, 6) for s in samples],
        "updates": offered,
        "updates_per_s": round(offered / wall, 1),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time multi-prefix workloads, emit BENCH_multiprefix.json."
    )
    parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="timed trials per scenario; the median is reported (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the JSON document here (default: stdout only)",
    )
    parser.add_argument(
        "--population", type=int, nargs="+", default=None, metavar="N",
        help="scaling mode: one Tagg run per population under the "
        "memory-lean configuration (emits benchmark 'multiprefix-scaling')",
    )
    args = parser.parse_args(argv)

    results: Dict[str, Dict[str, object]] = {}
    if args.population:
        benchmark = "multiprefix-scaling"
        for population in args.population:
            results[f"pop{population}"] = run_scaling(
                population, repeat=args.repeat, seed=args.seed
            )
    else:
        benchmark = "multiprefix"
        for name in sorted(POPULATIONS):
            results[name] = run_tagg(name, repeat=args.repeat, seed=args.seed)
        results["eval256"] = run_eval(repeat=args.repeat, seed=args.seed)
    for name, result in results.items():
        print(
            f"[{name}] {result['scenario']}: "
            f"median {result['wall_clock_s'] * 1e3:.1f} ms, "
            f"{result['updates']} units, "
            f"{result['updates_per_s']:.0f} units/s "
            f"(repeat={args.repeat})"
        )

    document = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "repeat": args.repeat,
        "seed": args.seed,
        "python": platform.python_version(),
        "results": results,
    }
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.output is not None:
        args.output.write_text(payload, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(payload, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
