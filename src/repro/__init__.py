"""repro — a reproduction of "A Study of BGP Path Vector Route Looping
Behavior" (Pei, Zhao, Massey, Zhang; ICDCS 2004).

A discrete-event BGP path-vector simulator with a transient-loop analysis
toolkit.  The typical entry points:

>>> from repro import run_experiment, tdown_clique, BgpConfig
>>> run = run_experiment(tdown_clique(6), BgpConfig.standard(mrai=5.0))
>>> run.result.convergence_time > 0
True

See :mod:`repro.experiments.figures` for drivers that regenerate every
figure of the paper's evaluation, and DESIGN.md / EXPERIMENTS.md at the
repository root for the system inventory and the reproduced results.
"""

from .analysis import (
    DeterminismReport,
    SanitizerSuite,
    build_suite,
    check_determinism,
    lint_paths,
)
from .bgp import (
    AsPath,
    BgpConfig,
    BgpSpeaker,
    Route,
    RoutingPolicy,
    ShortestPathPolicy,
    VARIANT_NAMES,
    all_variants,
    variant,
)
from .core import (
    LoopStudyResult,
    find_loops,
    is_loop_free,
    loop_timeline,
    measure_convergence,
    worst_case_loop_duration,
)
from .dataplane import (
    CbrSource,
    DataPlaneReport,
    EpochEvaluator,
    FibChangeLog,
    ForwardingGraph,
    PacketForwarder,
    walk,
)
from .engine import RandomStreams, Scheduler
from .errors import ReproError
from .experiments import (
    ExperimentRun,
    FigureData,
    RunSettings,
    Scenario,
    run_experiment,
    sweep,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
    tlong_internet,
)
from .net import Network
from .topology import Topology, b_clique, clique, internet_like

__version__ = "1.0.0"

__all__ = [
    "AsPath",
    "BgpConfig",
    "BgpSpeaker",
    "CbrSource",
    "DataPlaneReport",
    "DeterminismReport",
    "EpochEvaluator",
    "ExperimentRun",
    "FibChangeLog",
    "FigureData",
    "ForwardingGraph",
    "LoopStudyResult",
    "Network",
    "PacketForwarder",
    "RandomStreams",
    "ReproError",
    "Route",
    "RoutingPolicy",
    "RunSettings",
    "SanitizerSuite",
    "Scenario",
    "Scheduler",
    "ShortestPathPolicy",
    "Topology",
    "VARIANT_NAMES",
    "all_variants",
    "b_clique",
    "build_suite",
    "check_determinism",
    "clique",
    "find_loops",
    "internet_like",
    "is_loop_free",
    "lint_paths",
    "loop_timeline",
    "measure_convergence",
    "run_experiment",
    "sweep",
    "tdown_clique",
    "tdown_internet",
    "tlong_bclique",
    "tlong_internet",
    "variant",
    "walk",
    "worst_case_loop_duration",
    "__version__",
]
