"""Durable job queue: the service's system of record for job lifecycle.

The queue is an append-only CRC-framed JSONL file (the same framing as
trial journals — :func:`~repro.experiments.journal.frame_line`), holding
two record shapes:

.. code-block:: text

    {"crc": N, "record": {"op": "submit", "id": "job-3", "spec": {...}, "ts": T}}
    {"crc": N, "record": {"op": "state", "id": "job-3", "state": "running",
                          "detail": {...}, "ts": T}}

Every append is flushed and fsynced before the call returns, so a job
acknowledged to a client survives ``kill -9`` of the daemon.  Replay
folds the log into latest-state :class:`~repro.service.jobs.JobView`
objects; a torn final line (daemon killed mid-write) is truncated away
exactly like a trial journal's torn tail.  A :class:`~repro.experiments.
journal.WriterLock` sidecar makes concurrent daemons on one queue fail
fast instead of interleaving frames.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import JournalError, ServiceError
from ..experiments.journal import WriterLock, frame_line, unframe_line
from .jobs import (
    QUEUED,
    JOB_STATES,
    JobSpec,
    JobView,
    job_sort_key,
)


class DurableJobQueue:
    """Append-only job log with replay, for one service state directory."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = WriterLock(self.path)
        self._handle = None
        self._jobs: Dict[str, JobView] = {}
        self._next_id = 1
        self._replay()

    # -- replay ---------------------------------------------------------

    def _replay(self) -> None:
        """Fold the log into job views, truncating a torn tail."""
        self._jobs = {}
        if not self.path.exists():
            return
        good = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.rstrip("\n")
                if not line:
                    continue
                try:
                    record = unframe_line(line)
                except JournalError:
                    break  # torn or corrupt tail: everything after is suspect
                self._apply(record)
                good += len(raw.encode("utf-8"))
        size = self.path.stat().st_size
        if good < size:
            with self.path.open("r+b") as handle:
                handle.truncate(good)
                handle.flush()
                os.fsync(handle.fileno())
        if self._jobs:
            numeric = [
                int(job_id.split("-", 1)[1])
                for job_id in self._jobs
                if job_id.startswith("job-") and job_id.split("-", 1)[1].isdigit()
            ]
            if numeric:
                self._next_id = max(numeric) + 1

    def _apply(self, record: Dict) -> None:
        op = record.get("op")
        job_id = record.get("id", "")
        ts = float(record.get("ts", 0.0))
        if op == "submit":
            spec = JobSpec.from_json(record.get("spec", {}))
            self._jobs[job_id] = JobView(
                job_id=job_id, spec=spec, state=QUEUED, submitted=ts, updated=ts
            )
        elif op == "state":
            view = self._jobs.get(job_id)
            if view is None:
                return  # state for a compacted-away or unknown job
            state = record.get("state", "")
            if state in JOB_STATES:
                view.state = state
            view.updated = ts
            detail = record.get("detail")
            if isinstance(detail, dict):
                view.detail = dict(detail)

    # -- writing --------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self._lock.acquire()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def _append(self, record: Dict) -> None:
        handle = self._open()
        handle.write(frame_line(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def submit(self, spec: JobSpec, now: Optional[float] = None) -> JobView:
        """Durably record a new job and return its view."""
        ts = time.time() if now is None else now
        job_id = f"job-{self._next_id}"
        self._next_id += 1
        self._append(
            {"op": "submit", "id": job_id, "spec": spec.to_json(), "ts": ts}
        )
        view = JobView(
            job_id=job_id, spec=spec, state=QUEUED, submitted=ts, updated=ts
        )
        self._jobs[job_id] = view
        return view

    def transition(
        self,
        job_id: str,
        state: str,
        detail: Optional[Dict] = None,
        now: Optional[float] = None,
    ) -> JobView:
        """Durably record a state change for an existing job."""
        view = self.get(job_id)
        if state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; expected one of "
                f"{', '.join(JOB_STATES)}"
            )
        ts = time.time() if now is None else now
        payload: Dict = {"op": "state", "id": job_id, "state": state, "ts": ts}
        if detail:
            payload["detail"] = dict(detail)
        self._append(payload)
        view.state = state
        view.updated = ts
        if detail:
            view.detail = dict(detail)
        return view

    # -- reading --------------------------------------------------------

    def get(self, job_id: str) -> JobView:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[JobView]:
        """All known jobs, oldest first."""
        return [
            self._jobs[job_id]
            for job_id in sorted(self._jobs, key=job_sort_key)
        ]

    def pending(self) -> List[JobView]:
        """Jobs still owed work (queued, or running when the daemon died)."""
        return [view for view in self.jobs() if not view.terminal]

    # -- compaction -----------------------------------------------------

    def compact(self, keep_terminal: int = 50) -> int:
        """Atomically rewrite the log as one submit+state pair per job,
        dropping all but the newest ``keep_terminal`` finished jobs.

        Returns the number of jobs dropped.  Same tmp+rename+fsync dance
        as a journal checkpoint, so a crash mid-compaction leaves either
        the old log or the new one, never a hybrid.
        """
        self._open()
        terminal = [view for view in self.jobs() if view.terminal]
        drop = (
            set(
                view.job_id
                for view in terminal[: len(terminal) - keep_terminal]
            )
            if keep_terminal >= 0 and len(terminal) > keep_terminal
            else set()
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for view in self.jobs():
                if view.job_id in drop:
                    continue
                handle.write(
                    frame_line(
                        {
                            "op": "submit",
                            "id": view.job_id,
                            "spec": view.spec.to_json(),
                            "ts": view.submitted,
                        }
                    )
                    + "\n"
                )
                if view.state != QUEUED or view.detail:
                    handle.write(
                        frame_line(
                            {
                                "op": "state",
                                "id": view.job_id,
                                "state": view.state,
                                "detail": dict(view.detail),
                                "ts": view.updated,
                            }
                        )
                        + "\n"
                    )
            handle.flush()
            os.fsync(handle.fileno())
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        os.replace(tmp, self.path)
        dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        for job_id in drop:
            del self._jobs[job_id]
        self._open()
        return len(drop)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._lock.release()

    def __enter__(self) -> "DurableJobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
