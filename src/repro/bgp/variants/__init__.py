"""The four BGP convergence enhancements studied in §5, plus a registry.

Each module documents one mechanism and implements its decision logic as a
pure function the speaker calls at the appropriate hook point:

* :mod:`.ssld` — Sender-Side Loop Detection,
* :mod:`.wrate` — Withdrawal Rate Limiting,
* :mod:`.assertion` — the Assertion approach,
* :mod:`.ghost_flushing` — Ghost Flushing.
"""

from .assertion import stale_entries
from .ghost_flushing import should_flush
from .registry import VARIANT_NAMES, all_variants, combine, variant
from .ssld import converts_to_withdrawal
from .wrate import withdrawals_rate_limited

__all__ = [
    "VARIANT_NAMES",
    "all_variants",
    "combine",
    "converts_to_withdrawal",
    "should_flush",
    "stale_entries",
    "variant",
    "withdrawals_rate_limited",
]
