"""The BGP session layer: keepalives, hold timers, and re-establishment.

The paper's failure model is interface-level: the nodes adjacent to a
failed link react instantly.  Real BGP also has a slower detection path —
a *silent* failure (one that the interface does not report) is noticed only
when no message arrives from the peer for a full hold time (keepalives are
sent at a third of it, per RFC 1771's recommended ratio).

:class:`SessionManager` implements that per-neighbor machinery for a
speaker — an inbound hold timer reset by every received message, and an
outbound keepalive schedule — plus the *re-establishment* half of the
lifecycle: after a session loss with the link still up, a ConnectRetry
timer with exponential backoff and jitter drives OPEN handshake attempts
until the session comes back, at which point the speaker re-runs the
RFC 1771 initial table exchange (see ``BgpSpeaker._session_established``).

Detection latency and session churn are thereby first-class experimental
variables — ``bench_detection`` sweeps the hold time, ``bench_churn`` the
flap period, and the Treset scenario family measures reset storms.

Scope notes:

* *Boot-time* establishment is implicit (adjacent speakers are configured
  peers, as in the paper); the OPEN handshake is only used to *re*-build a
  session that was lost while the link stayed up.  After a loss the
  ConnectRetry machinery goes dormant whenever the physical link is down —
  the interface-up notification restarts it.
* Keepalive and hold timers are scheduled as **housekeeping** events, so a
  session-mode simulation quiesces normally (give
  ``Scheduler.run(settle=...)`` a window longer than the hold time when
  silent failures must still be detected).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Set, Tuple

from ..engine import Scheduler, Timer
from ..errors import ConfigError

SendKeepalive = Callable[[int], None]
SessionDown = Callable[[int], None]
SessionUp = Callable[[int], None]
Connect = Callable[[int], None]

DEFAULT_RETRY_JITTER = (0.75, 1.0)
"""ConnectRetry jitter range, mirroring the MRAI convention."""


class SessionManager:
    """Per-neighbor session lifecycle (hold/keepalive/ConnectRetry) for one
    speaker.

    Parameters
    ----------
    scheduler:
        The simulation scheduler.
    hold_time:
        Seconds of silence after which a peer is declared dead.
    keepalive_interval:
        Spacing of outbound keepalives (must be < hold_time; RFC suggests
        a third).
    send_keepalive:
        ``callback(neighbor)`` that transmits a keepalive (the speaker
        guards physical link state).
    on_session_down:
        ``callback(neighbor)`` invoked when the hold timer expires; the
        speaker purges the neighbor's routes exactly as for a link-down.
    connect:
        ``callback(neighbor)`` invoked when the ConnectRetry timer fires;
        the speaker sends an OPEN if the link is up (``None`` disables
        automatic reconnection — the seed's behavior).
    on_session_up:
        ``callback(neighbor)`` invoked when a lost session re-establishes;
        the speaker re-advertises its full Adj-RIB-Out (the RFC 1771
        initial table exchange).
    retry_base, retry_cap:
        ConnectRetry backoff: attempt ``k`` waits
        ``min(cap, base * 2**k)`` seconds, scaled by jitter.
    rng:
        Source for retry-jitter draws (a named stream from the run's
        :class:`~repro.engine.rng.RandomStreams`); ``None`` disables jitter.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        hold_time: float,
        keepalive_interval: float,
        send_keepalive: SendKeepalive,
        on_session_down: SessionDown,
        connect: Optional[Connect] = None,
        on_session_up: Optional[SessionUp] = None,
        retry_base: float = 1.0,
        retry_cap: float = 60.0,
        retry_jitter: Tuple[float, float] = DEFAULT_RETRY_JITTER,
        rng: Optional[random.Random] = None,
    ) -> None:
        if hold_time <= 0:
            raise ConfigError(f"hold_time must be positive, got {hold_time}")
        if not 0 < keepalive_interval < hold_time:
            raise ConfigError(
                f"keepalive_interval must be in (0, hold_time), got "
                f"{keepalive_interval} vs {hold_time}"
            )
        if retry_base <= 0 or retry_cap < retry_base:
            raise ConfigError(
                f"retry backoff must satisfy 0 < base <= cap, got "
                f"{retry_base} vs {retry_cap}"
            )
        low, high = retry_jitter
        if not 0 < low <= high:
            raise ConfigError(f"retry_jitter must satisfy 0 < low <= high: {retry_jitter}")
        self._scheduler = scheduler
        self._hold_time = hold_time
        self._keepalive_interval = keepalive_interval
        self._send_keepalive = send_keepalive
        self._on_session_down = on_session_down
        self._connect = connect
        self._on_session_up = on_session_up
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self._retry_jitter = retry_jitter
        self._rng = rng
        self._hold_timers: Dict[int, Timer] = {}
        self._keepalive_timers: Dict[int, Timer] = {}
        self._retry_timers: Dict[int, Timer] = {}
        self._retry_attempts: Dict[int, int] = {}
        self._established: Set[int] = set()
        self.sessions_lost = 0
        self.sessions_reestablished = 0
        self.connect_attempts = 0

    # ------------------------------------------------------------------

    def established(self, neighbor: int) -> bool:
        """True while the session to ``neighbor`` is considered alive."""
        return neighbor in self._established

    @property
    def established_count(self) -> int:
        return len(self._established)

    def retry_pending(self, neighbor: int) -> bool:
        """True while a ConnectRetry attempt toward ``neighbor`` is armed."""
        timer = self._retry_timers.get(neighbor)
        return timer is not None and timer.running

    def active_timer_count(self) -> int:
        """Number of running timers of any kind (diagnostics)."""
        return sum(
            1
            for timers in (self._hold_timers, self._keepalive_timers, self._retry_timers)
            for timer in timers.values()
            if timer.running
        )

    # ------------------------------------------------------------------

    def establish(self, neighbor: int) -> None:
        """Bring the session up and start both timers (idempotent).

        A (re-)establishment cancels any pending ConnectRetry and resets
        its backoff; when the session had been lost before, the
        ``on_session_up`` callback fires so the speaker re-exchanges its
        table.
        """
        if neighbor in self._established:
            return
        self._established.add(neighbor)
        self._cancel_retry(neighbor)
        was_reconnect = self._retry_attempts.pop(neighbor, 0) > 0
        hold = self._hold_timers.get(neighbor)
        if hold is None:
            hold = Timer(
                self._scheduler,
                callback=lambda n=neighbor: self._hold_expired(n),
                name=f"hold:{neighbor}",
                housekeeping=True,
            )
            self._hold_timers[neighbor] = hold
        hold.restart(self._hold_time)

        keepalive = self._keepalive_timers.get(neighbor)
        if keepalive is None:
            keepalive = Timer(
                self._scheduler,
                callback=lambda n=neighbor: self._keepalive_due(n),
                name=f"keepalive:{neighbor}",
                housekeeping=True,
            )
            self._keepalive_timers[neighbor] = keepalive
        keepalive.restart(self._keepalive_interval)
        if was_reconnect:
            self.sessions_reestablished += 1
        if self._on_session_up is not None:
            self._on_session_up(neighbor)

    def message_received(self, neighbor: int) -> None:
        """Any message from the peer proves liveness: refresh its hold."""
        if neighbor in self._established:
            self._hold_timers[neighbor].restart(self._hold_time)

    def teardown(self, neighbor: int) -> None:
        """Stop tracking the peer (link-down notification or hold expiry).

        Cancels every timer including a pending ConnectRetry — reconnection
        after an interface-level loss is driven by the link-up
        notification, not by retries into a dead link.
        """
        self._established.discard(neighbor)
        for timers in (self._hold_timers, self._keepalive_timers):
            timer = timers.get(neighbor)
            if timer is not None:
                timer.cancel()
        self._cancel_retry(neighbor)

    def teardown_all(self) -> None:
        """Cancel every timer (end of a manually-driven simulation)."""
        for neighbor in sorted(self._established):
            self.teardown(neighbor)
        for neighbor in list(self._retry_timers):
            self._cancel_retry(neighbor)

    def shutdown(self) -> None:
        """Drop all session state and timers (the router crashed)."""
        self.teardown_all()
        self._retry_attempts.clear()

    # ------------------------------------------------------------------
    # ConnectRetry
    # ------------------------------------------------------------------

    def start_reconnect(self, neighbor: int, immediate: bool = False) -> None:
        """Arm the ConnectRetry timer toward a lost peer.

        Each attempt doubles the wait (``retry_base``, capped at
        ``retry_cap``), scaled by jitter so simultaneous losses do not
        retry in lockstep.  ``immediate=True`` resets the backoff first
        (used on a fresh session reset, where the peer is expected back
        momentarily).  No-op while the session is up or a retry is armed.
        """
        if self._connect is None:
            return
        if neighbor in self._established or self.retry_pending(neighbor):
            return
        if immediate:
            self._retry_attempts.pop(neighbor, None)
        attempt = self._retry_attempts.get(neighbor, 0)
        self._retry_attempts[neighbor] = attempt + 1
        delay = min(self._retry_cap, self._retry_base * (2 ** attempt))
        if self._rng is not None:
            low, high = self._retry_jitter
            delay *= self._rng.uniform(low, high)
        timer = self._retry_timers.get(neighbor)
        if timer is None:
            timer = Timer(
                self._scheduler,
                callback=lambda n=neighbor: self._retry_due(n),
                name=f"connect-retry:{neighbor}",
            )
            self._retry_timers[neighbor] = timer
        timer.restart(delay)

    def _retry_due(self, neighbor: int) -> None:
        if neighbor in self._established:
            return
        self.connect_attempts += 1
        assert self._connect is not None
        self._connect(neighbor)

    def _cancel_retry(self, neighbor: int) -> None:
        timer = self._retry_timers.get(neighbor)
        if timer is not None:
            timer.cancel()

    # ------------------------------------------------------------------

    def _hold_expired(self, neighbor: int) -> None:
        self.sessions_lost += 1
        self.teardown(neighbor)
        self._on_session_down(neighbor)
        # The peer fell silent but the interface may still be up (silent
        # failure, remote crash): keep probing with backoff.  If the link
        # is in fact down, the connect callback goes dormant until link-up.
        self.start_reconnect(neighbor)

    def _keepalive_due(self, neighbor: int) -> None:
        if neighbor not in self._established:
            return
        self._send_keepalive(neighbor)
        self._keepalive_timers[neighbor].restart(self._keepalive_interval)
