"""Tests for the static policy-stability analyzer.

Covers lattice extraction, dispute-wheel detection with self-checking
certificates, the structural SAFE short-cuts, UNKNOWN degradation under
search limits, and the contract that certification is purely static.
"""

from __future__ import annotations

import pytest

from repro.analysis import fingerprint_run
from repro.analysis.stability import (
    DisputeWheel,
    SearchLimits,
    Verdict,
    certify,
    certify_scenario,
    extract_policy_graph,
    find_dispute_wheel,
)
from repro.bgp import (
    BgpConfig,
    GaoRexfordPolicy,
    PathRankPolicy,
    Relationship,
    ShortestPathPolicy,
)
from repro.engine import Scheduler
from repro.errors import AnalysisError
from repro.experiments import (
    RunSettings,
    bad_gadget,
    disagree,
    run_experiment,
    stability_suite,
    tdown_clique,
    wedgie,
)
from repro.telemetry import MetricsRegistry
from repro.topology import Topology

C, P, E = Relationship.CUSTOMER, Relationship.PROVIDER, Relationship.PEER


def shortest_path_policies(topology):
    return {node: ShortestPathPolicy() for node in topology.nodes}


def policies_for(policy_scenario):
    factory = policy_scenario.policy_factory
    return {
        node: factory(node)
        for node in policy_scenario.scenario.topology.nodes
    }


class TestPolicyGraphExtraction:
    def test_triangle_lattice_is_complete_and_ranked(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (1, 2)])
        graph = extract_policy_graph(topo, 0, shortest_path_policies(topo))
        assert graph.complete
        # Destination: only its local origination.
        assert [p.nodes for p in graph.paths_of(0)] == [(0,)]
        # Node 1: direct path first (shorter), then through 2.
        assert [p.nodes for p in graph.paths_of(1)] == [(1, 0), (1, 2, 0)]
        assert [p.rank for p in graph.paths_of(1)] == [0, 1]
        assert graph.total_paths == 5

    def test_lattice_is_suffix_closed(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        graph = extract_policy_graph(topo, 0, shortest_path_policies(topo))
        for node in topo.nodes:
            for entry in graph.paths_of(node):
                if len(entry.nodes) == 1:
                    continue
                suffix = entry.nodes[1:]
                assert graph.lookup(suffix[0], suffix) is not None, (
                    f"suffix {suffix} of {entry.nodes} missing"
                )

    def test_poison_reverse_excludes_looping_paths(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (1, 2)])
        graph = extract_policy_graph(topo, 0, shortest_path_policies(topo))
        for node in topo.nodes:
            for entry in graph.paths_of(node):
                assert len(set(entry.nodes)) == len(entry.nodes)

    def test_path_rank_policy_filters_unranked_paths(self):
        gadget = disagree()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        # Node 1 permits exactly its two ranked paths, list order = rank.
        assert [p.nodes for p in graph.paths_of(1)] == [(1, 2, 0), (1, 0)]
        assert [p.nodes for p in graph.paths_of(2)] == [(2, 1, 0), (2, 0)]

    def test_per_node_cap_truncates_and_marks_incomplete(self):
        topo = tdown_clique(5).topology
        limits = SearchLimits(max_paths_per_node=2)
        graph = extract_policy_graph(
            topo, 0, shortest_path_policies(topo), limits=limits
        )
        assert not graph.complete
        assert graph.truncated_nodes
        assert all(len(graph.paths_of(n)) <= 2 for n in topo.nodes)

    def test_unknown_destination_rejected(self):
        topo = Topology.from_edges([(0, 1)])
        with pytest.raises(AnalysisError, match="not in topology"):
            extract_policy_graph(topo, 9, shortest_path_policies(topo))

    def test_search_limits_validate(self):
        with pytest.raises(AnalysisError):
            SearchLimits(max_paths_per_node=0)
        with pytest.raises(AnalysisError):
            SearchLimits(max_search_steps=0)


class TestDisputeWheelDetection:
    def test_shortest_path_clique_has_no_wheel(self):
        topo = tdown_clique(5).topology
        graph = extract_policy_graph(topo, 0, shortest_path_policies(topo))
        assert find_dispute_wheel(graph) is None

    def test_disagree_yields_the_rim_1_2_wheel(self):
        gadget = disagree()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        wheel = find_dispute_wheel(graph)
        assert wheel is not None
        assert sorted(wheel.rim) == [1, 2]
        assert sorted(p.ases for p in wheel.spokes) == [(1, 0), (2, 0)]
        # Every rim node strictly prefers riding the wheel.
        assert all(
            wr <= sr for wr, sr in zip(wheel.wheel_ranks, wheel.spoke_ranks)
        )
        wheel.validate(graph)  # self-checking certificate

    def test_bad_gadget_yields_the_three_node_rim(self):
        gadget = bad_gadget()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        wheel = find_dispute_wheel(graph)
        assert wheel is not None
        assert sorted(wheel.rim) == [1, 2, 3]
        wheel.validate(graph)

    def test_wedgie_carries_a_wheel(self):
        gadget = wedgie()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        wheel = find_dispute_wheel(graph)
        assert wheel is not None
        wheel.validate(graph)

    def test_tampered_certificate_fails_validation(self):
        gadget = disagree()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        wheel = find_dispute_wheel(graph)
        # Swap spoke and wheel paths: the "preference" condition inverts.
        forged = DisputeWheel(
            rim=wheel.rim,
            spokes=wheel.wheel_paths,
            wheel_paths=wheel.spokes,
            spoke_ranks=wheel.wheel_ranks,
            wheel_ranks=wheel.spoke_ranks,
        )
        with pytest.raises(AnalysisError):
            forged.validate(graph)

    def test_rim_paths_end_at_the_next_rim_node(self):
        gadget = bad_gadget()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        wheel = find_dispute_wheel(graph)
        for index, segment in enumerate(wheel.rim_paths()):
            assert segment[0] == wheel.rim[index]
            assert segment[-1] == wheel.rim[(index + 1) % wheel.size]

    def test_wheel_json_round_trips_the_certificate_fields(self):
        gadget = disagree()
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        payload = find_dispute_wheel(graph).to_json()
        assert sorted(payload["rim"]) == [1, 2]
        assert len(payload["spokes"]) == len(payload["wheel_paths"]) == 2
        assert all(isinstance(p, list) for p in payload["spokes"])


class TestStructuralShortcuts:
    def test_shortest_path_scenario_certifies_structurally(self):
        report = certify_scenario(tdown_clique(5))
        assert report.verdict is Verdict.SAFE
        assert report.method == "shortest-path"

    def test_policy_subclass_voids_the_shortest_path_shortcut(self):
        topo = Topology.from_edges([(0, 1), (0, 2), (1, 2)])
        report = certify(
            topo,
            0,
            policy_factory=lambda n: PathRankPolicy(n, [(n, 0)])
            if n
            else ShortestPathPolicy(),
        )
        assert report.method != "shortest-path"
        assert report.verdict is Verdict.SAFE  # direct-only lists: no wheel

    def test_gao_rexford_tiered_graph_certifies_structurally(self):
        suite = {ps.name: ps for ps in stability_suite()}
        entry = suite["gao-rexford-internet-24-s3"]
        report = certify_scenario(
            entry.scenario, policy_factory=entry.policy_factory
        )
        assert report.verdict is Verdict.SAFE
        assert report.method == "gao-rexford"

    def test_inconsistent_relationships_fall_back_to_the_lattice(self):
        # Both ends claim the other is their customer: not a valid
        # Gao-Rexford instance, so the structural argument must not apply.
        topo = Topology.from_edges([(0, 1)])
        maps = {0: {1: C}, 1: {0: C}}
        report = certify(
            topo, 0, policy_factory=lambda n: GaoRexfordPolicy(maps[n])
        )
        assert report.method not in ("gao-rexford", "shortest-path")
        assert report.verdict is Verdict.SAFE  # two nodes cannot wheel here

    def test_provider_customer_cycle_voids_the_structural_argument(self):
        # 0 -> 1 -> 2 -> 0 as a provider chain: everyone is everyone's
        # indirect customer.  Pairwise-consistent, but not a DAG.
        topo = Topology.from_edges([(0, 1), (1, 2), (0, 2)])
        maps = {
            0: {1: C, 2: P},
            1: {0: P, 2: C},
            2: {1: P, 0: C},
        }
        report = certify(
            topo, 0, policy_factory=lambda n: GaoRexfordPolicy(maps[n])
        )
        assert report.method != "gao-rexford"

    def test_structural_false_forces_the_exhaustive_route(self):
        scenario = tdown_clique(4)
        report = certify(
            scenario.topology, scenario.destination, structural=False
        )
        assert report.verdict is Verdict.SAFE
        assert report.method == "no-dispute-wheel"
        assert report.paths > 0


class TestUnknownDegradation:
    def test_truncated_lattice_reports_unknown(self):
        scenario = tdown_clique(6)
        report = certify(
            scenario.topology,
            scenario.destination,
            structural=False,
            limits=SearchLimits(max_paths_per_node=3),
        )
        assert report.verdict is Verdict.UNKNOWN
        assert report.method == "truncated-lattice"
        assert not report.complete

    def test_search_budget_exhaustion_reports_unknown(self):
        scenario = tdown_clique(5)
        report = certify(
            scenario.topology,
            scenario.destination,
            structural=False,
            limits=SearchLimits(max_search_steps=5),
        )
        assert report.verdict is Verdict.UNKNOWN
        assert report.method == "search-budget"

    def test_wheel_found_despite_truncation_stays_unsafe(self):
        # Evidence of a wheel is valid regardless of truncation elsewhere.
        gadget = bad_gadget()
        report = certify_scenario(
            gadget.scenario,
            policy_factory=gadget.policy_factory,
            limits=SearchLimits(max_paths_per_node=2),
        )
        assert report.verdict is Verdict.UNSAFE
        assert report.wheel is not None


class TestCertifier:
    def test_unsafe_report_carries_a_validated_wheel(self):
        gadget = bad_gadget()
        report = certify_scenario(
            gadget.scenario, policy_factory=gadget.policy_factory
        )
        assert report.verdict is Verdict.UNSAFE
        assert report.method == "dispute-wheel"
        graph = extract_policy_graph(
            gadget.scenario.topology, 0, policies_for(gadget)
        )
        report.wheel.validate(graph)

    def test_report_json_and_render_mention_the_verdict(self):
        gadget = disagree()
        report = certify_scenario(
            gadget.scenario, policy_factory=gadget.policy_factory
        )
        payload = report.to_json()
        assert payload["verdict"] == "unsafe"
        assert "wheel" in payload
        assert "UNSAFE" in report.render()
        assert "dispute wheel" in report.render()

    def test_telemetry_counters_track_verdicts(self):
        registry = MetricsRegistry()
        certify_scenario(tdown_clique(4), registry=registry)
        gadget = bad_gadget()
        certify_scenario(
            gadget.scenario,
            policy_factory=gadget.policy_factory,
            registry=registry,
        )
        snap = registry.snapshot()
        assert snap.counter("stability.scenarios_analyzed") == 2
        assert snap.counter("stability.certified_safe") == 1
        assert snap.counter("stability.certified_unsafe") == 1
        assert snap.counter("stability.wheels_found") == 1

    def test_certification_is_purely_static(self):
        # The analyzer must never touch a scheduler: certifying every
        # bundled scenario schedules zero events.
        scheduler = Scheduler()
        before = scheduler.now
        for entry in stability_suite():
            certify_scenario(
                entry.scenario, policy_factory=entry.policy_factory
            )
        assert scheduler.now == before == 0.0

    def test_certify_flag_leaves_the_digest_bit_identical(self):
        scenario = tdown_clique(4)
        config = BgpConfig(mrai=1.0)
        plain = run_experiment(
            scenario, config, settings=RunSettings(), seed=7,
            keep_network=True,
        )
        certified = run_experiment(
            scenario, config, settings=RunSettings(certify=True), seed=7,
            keep_network=True,
        )
        assert certified.stability is not None
        assert certified.stability.verdict is Verdict.SAFE
        assert plain.stability is None
        assert (
            fingerprint_run(plain).digest == fingerprint_run(certified).digest
        )
