"""The BGP decision process.

Given the local origination (if any) and the Adj-RIB-In candidates, pick the
best route under the active :class:`~repro.bgp.policy.RoutingPolicy`.  The
decision process is a pure function of RIB state, which makes the speaker's
invariant checkable: *Loc-RIB always equals the decision-process optimum.*
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .messages import Prefix
from .policy import RoutingPolicy
from .rib import AdjRibIn
from .route import Route, local_route

UsablePredicate = Callable[[Route], bool]
"""Extra eligibility filter (e.g. route-flap damping suppression)."""


class DecisionProcess:
    """Selects best routes under a policy."""

    def __init__(self, policy: RoutingPolicy) -> None:
        self._policy = policy

    @property
    def policy(self) -> RoutingPolicy:
        return self._policy

    def candidates(
        self,
        prefix: Prefix,
        adj_rib_in: AdjRibIn,
        originated: bool,
        usable: Optional[UsablePredicate] = None,
    ) -> List[Route]:
        """All selectable routes for ``prefix`` (deterministic order).

        ``usable`` excludes stored-but-ineligible routes — a damped
        (peer, prefix) stays in the Adj-RIB-In per RFC 2439 but must not be
        selected while suppressed.
        """
        routes: List[Route] = []
        if originated:
            routes.append(local_route(prefix))
        for route in adj_rib_in.candidates(prefix):
            if usable is None or usable(route):
                routes.append(route)
        return routes

    def select(
        self,
        prefix: Prefix,
        adj_rib_in: AdjRibIn,
        originated: bool,
        usable: Optional[UsablePredicate] = None,
    ) -> Optional[Route]:
        """The best route for ``prefix``, or ``None`` when unreachable."""
        routes = self.candidates(prefix, adj_rib_in, originated, usable)
        if not routes:
            return None
        return min(routes, key=self._policy.preference_key)

    def prefers(self, challenger: Route, incumbent: Route) -> bool:
        """True when ``challenger`` would beat ``incumbent``."""
        return (
            self._policy.preference_key(challenger)
            < self._policy.preference_key(incumbent)
        )
