"""Tests for the single-run experiment driver."""

import pytest

from repro.bgp import BgpConfig
from repro.experiments import (
    RunSettings,
    run_experiment,
    tdown_clique,
    tlong_bclique,
)

FAST = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)


class TestRunLifecycle:
    def test_tdown_run_produces_metrics(self):
        run = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=1)
        result = run.result
        assert run.converged
        assert result.convergence_time > 0
        assert result.packets_sent > 0
        assert result.ttl_exhaustions > 0
        assert 0 < result.looping_ratio <= 1
        assert result.overall_looping_duration <= result.convergence_time

    def test_tlong_run_produces_metrics(self):
        run = run_experiment(tlong_bclique(4), FAST, settings=SETTINGS, seed=1)
        assert run.converged
        assert run.result.convergence_time > 0

    def test_failure_time_respects_guard(self):
        run = run_experiment(tdown_clique(4), FAST, settings=SETTINGS, seed=1)
        assert run.failure_time == pytest.approx(run.warmup_time + 0.5)

    def test_network_discarded_by_default(self):
        run = run_experiment(tdown_clique(4), FAST, settings=SETTINGS, seed=1)
        assert run.network is None

    def test_keep_network(self):
        run = run_experiment(
            tdown_clique(4), FAST, settings=SETTINGS, seed=1, keep_network=True
        )
        assert run.network is not None
        for node in run.network.nodes.values():
            node.check_invariants()

    def test_deterministic_for_seed(self):
        a = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=9)
        b = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=9)
        assert a.result.summary_row() == b.result.summary_row()

    def test_seeds_change_outcome_details(self):
        a = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=1)
        b = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=2)
        assert a.result.convergence_time != b.result.convergence_time

    def test_policy_factory_applies_per_node_policies(self):
        from repro.bgp import PreferNeighbor

        seen = []

        def factory(node_id):
            seen.append(node_id)
            return PreferNeighbor(neighbor=0)

        run = run_experiment(
            tdown_clique(4),
            FAST,
            settings=SETTINGS,
            seed=1,
            policy_factory=factory,
            keep_network=True,
        )
        assert sorted(set(seen)) == [0, 1, 2, 3]
        for node in run.network.nodes.values():
            assert isinstance(node.policy, PreferNeighbor)

    def test_route_log_populated(self):
        run = run_experiment(tdown_clique(4), FAST, settings=SETTINGS, seed=1)
        assert len(run.route_log) > 0
        post = run.route_log.changes(prefix="dest", since=run.failure_time)
        assert post and post[-1].is_loss

    def test_on_network_ready_hook(self):
        seen = {}

        def hook(network, failure_time):
            seen["nodes"] = len(network.nodes)
            seen["failure_time"] = failure_time

        run = run_experiment(
            tdown_clique(4),
            FAST,
            settings=SETTINGS,
            seed=1,
            on_network_ready=hook,
        )
        assert seen["nodes"] == 4
        assert seen["failure_time"] == run.failure_time


class TestMeasurementWindows:
    def test_dataplane_window_is_convergence_period(self):
        run = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=1)
        start, end = run.result.dataplane.window
        assert start == run.failure_time
        assert end == run.result.convergence.convergence_end

    def test_loop_intervals_within_window(self):
        run = run_experiment(tdown_clique(5), FAST, settings=SETTINGS, seed=1)
        start, end = run.result.dataplane.window
        for interval in run.result.loop_intervals:
            assert start <= interval.start <= interval.end <= end
