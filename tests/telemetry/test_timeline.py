"""Unit tests for repro.telemetry.timeline, including the schema gate."""

import json
import pickle

import pytest

from repro.errors import TelemetryError
from repro.telemetry import GLOBAL_TRACK, Timeline, validate_chrome_trace


@pytest.fixture
def timeline():
    t = Timeline()
    t.instant(1.0, "failure", "scenario")
    t.span(0.0, 2.5, "warm-up", "phase")
    t.instant(3.0, "mrai-expiry", "bgp", track=2, peer=1)
    return t


class TestRecording:
    def test_len_and_order(self, timeline):
        records = timeline.records()
        assert len(timeline) == 3
        assert [r.name for r in records] == ["failure", "warm-up", "mrai-expiry"]

    def test_instant_vs_span(self, timeline):
        instant, span, _ = timeline.records()
        assert not instant.is_span and instant.end == 1.0
        assert span.is_span and span.duration == 2.5 and span.end == 2.5

    def test_backwards_span_rejected(self):
        with pytest.raises(TelemetryError, match="before it starts"):
            Timeline().span(5.0, 2.0, "bad", "phase")

    def test_args_sorted_and_hashable(self):
        t = Timeline()
        t.instant(0.0, "e", "c", zebra=1, alpha=2)
        (record,) = t.records()
        assert record.args == (("alpha", 2), ("zebra", 1))
        assert hash(record) is not None

    def test_category_filter_and_categories(self, timeline):
        assert [r.name for r in timeline.records("bgp")] == ["mrai-expiry"]
        assert timeline.categories() == ["bgp", "phase", "scenario"]

    def test_records_pickle(self, timeline):
        records = timeline.records()
        assert pickle.loads(pickle.dumps(records)) == records


class TestJsonl:
    def test_one_line_per_record(self, timeline):
        lines = timeline.to_jsonl().splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first == {
            "time": 1.0,
            "name": "failure",
            "category": "scenario",
            "track": GLOBAL_TRACK,
        }
        span = json.loads(lines[1])
        assert span["duration"] == 2.5
        tracked = json.loads(lines[2])
        assert tracked["track"] == 2 and tracked["args"] == {"peer": 1}

    def test_empty_timeline_exports_empty(self):
        assert Timeline().to_jsonl() == ""


class TestChromeTrace:
    def test_payload_validates(self, timeline):
        payload = timeline.to_chrome_trace()
        # 1 process_name + 2 thread_names (global, node 2) + 3 records.
        assert validate_chrome_trace(payload) == 6

    def test_sim_seconds_become_microseconds(self, timeline):
        events = timeline.to_chrome_trace()["traceEvents"]
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 2.5e6

    def test_tracks_map_to_threads(self, timeline):
        events = timeline.to_chrome_trace()["traceEvents"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "sim", 3: "node 2"}

    def test_process_name_metadata(self, timeline):
        events = timeline.to_chrome_trace(process_name="study")["traceEvents"]
        assert events[0]["args"] == {"name": "study"}

    def test_write_round_trip(self, timeline, tmp_path):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "timeline.jsonl"
        timeline.write_chrome_trace(str(trace_path))
        timeline.write_jsonl(str(jsonl_path))
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == 6
        assert len(jsonl_path.read_text().splitlines()) == 3


class TestValidator:
    def good_event(self, **overrides):
        event = {
            "ph": "i", "name": "e", "pid": 0, "tid": 0,
            "ts": 1.0, "cat": "c", "s": "t",
        }
        event.update(overrides)
        return event

    def test_accepts_emitted_subset(self):
        payload = {"traceEvents": [self.good_event()]}
        assert validate_chrome_trace(payload) == 1

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "must be an object"),
            ({}, "traceEvents"),
            ({"traceEvents": [42]}, "not an object"),
        ],
    )
    def test_rejects_malformed_top_level(self, payload, message):
        with pytest.raises(TelemetryError, match=message):
            validate_chrome_trace(payload)

    def test_rejects_unknown_phase(self):
        with pytest.raises(TelemetryError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [self.good_event(ph="B")]})

    def test_rejects_negative_tid_and_ts(self):
        with pytest.raises(TelemetryError, match="negative tid"):
            validate_chrome_trace({"traceEvents": [self.good_event(tid=-1)]})
        with pytest.raises(TelemetryError, match="negative timestamp"):
            validate_chrome_trace({"traceEvents": [self.good_event(ts=-1.0)]})

    def test_rejects_missing_fields(self):
        event = self.good_event()
        del event["cat"]
        with pytest.raises(TelemetryError, match="'cat'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_complete_event_without_duration(self):
        with pytest.raises(TelemetryError, match="dur"):
            validate_chrome_trace({"traceEvents": [self.good_event(ph="X")]})

    def test_rejects_bad_instant_scope(self):
        with pytest.raises(TelemetryError, match="scope"):
            validate_chrome_trace({"traceEvents": [self.good_event(s="q")]})
