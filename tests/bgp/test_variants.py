"""Tests for the four convergence enhancements.

Unit tests exercise each variant's decision function directly; conformance
tests run real simulations and assert the variant's defining property on the
message trace.
"""

import pytest

from repro.bgp import (
    AdjRibIn,
    Announcement,
    AsPath,
    BgpConfig,
    NOTHING_SENT,
    Route,
    SentState,
    Withdrawal,
)
from repro.bgp.variants import (
    converts_to_withdrawal,
    should_flush,
    stale_entries,
    withdrawals_rate_limited,
)
from repro.experiments import RunSettings, run_experiment, tdown_clique

PREFIX = "dest"
FAST = dict(mrai=2.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(packet_rate=10.0, failure_guard=0.5)


def run(config, n=5, seed=3):
    return run_experiment(
        tdown_clique(n), config, settings=SETTINGS, seed=seed, keep_network=True
    )


# ----------------------------------------------------------------------
# Unit level
# ----------------------------------------------------------------------


class TestSsldUnit:
    def test_converts_when_receiver_in_path(self):
        assert converts_to_withdrawal(4, AsPath((5, 4, 0)))

    def test_no_conversion_otherwise(self):
        assert not converts_to_withdrawal(7, AsPath((5, 4, 0)))


class TestWrateUnit:
    def test_flag_passthrough(self):
        assert withdrawals_rate_limited(BgpConfig(wrate=True))
        assert not withdrawals_rate_limited(BgpConfig())


class TestGhostFlushingUnit:
    def test_flush_on_longer_path(self):
        last = SentState(path=AsPath((5, 4, 0)))
        assert should_flush(last, AsPath((5, 6, 4, 0)))

    def test_no_flush_on_shorter_or_equal_path(self):
        last = SentState(path=AsPath((5, 6, 4, 0)))
        assert not should_flush(last, AsPath((5, 4, 0)))
        assert not should_flush(last, AsPath((5, 9, 8, 0)))

    def test_no_flush_when_nothing_was_sent(self):
        assert not should_flush(NOTHING_SENT, AsPath((5, 4, 0)))

    def test_no_flush_for_plain_withdrawal(self):
        assert not should_flush(SentState(path=AsPath((5, 4, 0))), None)


class TestAssertionUnit:
    def make_rib(self):
        rib = AdjRibIn()
        # Neighbor 6's path goes through 4; neighbor 7's does not.
        rib.put(6, Route(prefix=PREFIX, path=AsPath((6, 4, 0)), next_hop=6))
        rib.put(7, Route(prefix=PREFIX, path=AsPath((7, 8, 0)), next_hop=7))
        return rib

    def test_withdrawal_invalidates_paths_through_updater(self):
        rib = self.make_rib()
        assert stale_entries(rib, PREFIX, updating_neighbor=4, new_path=None) == [6]

    def test_consistent_subpath_survives(self):
        rib = self.make_rib()
        # 4 announces (4 0): 6's stored (6 4 0) has suffix (4 0) — consistent.
        assert stale_entries(rib, PREFIX, 4, AsPath((4, 0))) == []

    def test_inconsistent_subpath_invalidated(self):
        rib = self.make_rib()
        # 4 now reaches 0 via 9: 6's stored suffix (4 0) is stale.
        assert stale_entries(rib, PREFIX, 4, AsPath((4, 9, 0))) == [6]

    def test_updating_neighbor_itself_excluded(self):
        rib = self.make_rib()
        assert 6 not in stale_entries(rib, PREFIX, 6, AsPath((6, 9, 0)))

    def test_paths_not_through_updater_untouched(self):
        rib = self.make_rib()
        assert 7 not in stale_entries(rib, PREFIX, 4, None)


# ----------------------------------------------------------------------
# Conformance on real simulations
# ----------------------------------------------------------------------


class TestSsldConformance:
    def test_no_announcement_ever_contains_its_receiver(self):
        done = run(BgpConfig(ssld=True, **FAST))
        for record in done.network.trace:
            if isinstance(record.message, Announcement):
                assert record.dst not in record.message.path

    def test_standard_bgp_does_send_receiver_containing_paths(self):
        """The contrast case: without SSLD such announcements exist (they
        are the path-based poison-reverse signal)."""
        done = run(BgpConfig(**FAST))
        offending = [
            r
            for r in done.network.trace
            if isinstance(r.message, Announcement) and r.dst in r.message.path
        ]
        assert offending, "expected poison-reverse announcements in standard BGP"

    def test_ssld_counter_increments(self):
        done = run(BgpConfig(ssld=True, **FAST))
        total = sum(
            node.ssld_conversions for node in done.network.nodes.values()
        )
        assert total > 0


class TestWrateConformance:
    @staticmethod
    def update_spacing_violations(trace, mrai, jitter_low, include_withdrawals):
        """(src, dst) pairs whose consecutive rate-limited updates are closer
        than the minimum jittered MRAI."""
        last_sent = {}
        violations = []
        for record in trace:
            is_ann = isinstance(record.message, Announcement)
            is_wd = isinstance(record.message, Withdrawal)
            if not is_ann and not is_wd:
                continue
            if is_wd and not include_withdrawals:
                # Standard BGP: withdrawals neither wait for nor reset MRAI.
                continue
            key = (record.src, record.dst)
            prev = last_sent.get(key)
            if prev is not None and record.time - prev < jitter_low * mrai - 1e-9:
                violations.append((key, prev, record.time))
            last_sent[key] = record.time
        return violations

    def test_standard_announcements_respect_mrai(self):
        done = run(BgpConfig(**FAST))
        violations = self.update_spacing_violations(
            done.network.trace, mrai=2.0, jitter_low=0.75, include_withdrawals=False
        )
        assert violations == []

    def test_wrate_spaces_all_updates(self):
        done = run(BgpConfig(wrate=True, **FAST))
        violations = self.update_spacing_violations(
            done.network.trace, mrai=2.0, jitter_low=0.75, include_withdrawals=True
        )
        assert violations == []

    def test_standard_sends_withdrawals_inside_mrai_window(self):
        """Contrast: standard BGP withdrawals may follow an announcement
        within the MRAI window (they are exempt)."""
        done = run(BgpConfig(**FAST), n=6)
        trace = list(done.network.trace)
        last_ann = {}
        found = False
        for record in trace:
            key = (record.src, record.dst)
            if isinstance(record.message, Announcement):
                last_ann[key] = record.time
            elif isinstance(record.message, Withdrawal):
                prev = last_ann.get(key)
                if prev is not None and record.time - prev < 0.75 * 2.0:
                    found = True
        assert found, "expected at least one MRAI-exempt withdrawal"


class TestGhostFlushingConformance:
    def test_flush_withdrawals_sent(self):
        done = run(BgpConfig(ghost_flushing=True, **FAST), n=6)
        total = sum(
            node.flush_withdrawals_sent for node in done.network.nodes.values()
        )
        assert total > 0

    def test_reduces_convergence_time_vs_standard(self):
        standard = run(BgpConfig(**FAST), n=6)
        flushing = run(BgpConfig(ghost_flushing=True, **FAST), n=6)
        assert (
            flushing.result.convergence_time < standard.result.convergence_time
        )


class TestAssertionConformance:
    def test_assertion_removes_routes(self):
        done = run(BgpConfig(assertion=True, **FAST), n=6)
        total = sum(
            node.routes_removed_by_assertion for node in done.network.nodes.values()
        )
        assert total > 0

    def test_reduces_looping_vs_standard_in_clique(self):
        standard = run(BgpConfig(**FAST), n=6)
        asserted = run(BgpConfig(assertion=True, **FAST), n=6)
        assert asserted.result.ttl_exhaustions < standard.result.ttl_exhaustions

    def test_invariants_hold_with_assertion(self):
        done = run(BgpConfig(assertion=True, **FAST), n=5)
        for node in done.network.nodes.values():
            node.check_invariants()
