"""Module-level fault-injecting scenario factories for resilience tests.

The parallel executors require picklable factories, so every chaos
injector here is a module-level function meant to be bound with
``functools.partial`` (picklable for module-level targets).  Injectors
coordinate across worker processes through marker files in a
test-provided directory: "fail once" means *write the marker, then
misbehave*, so the retried attempt sees the marker and sails through.

These run inside sacrificial worker processes — ``os.kill(os.getpid(),
SIGKILL)`` and ``time.sleep`` are the whole point, and none of this code
is importable from the library side.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.experiments.scenarios import tdown_clique


def _marker(marker_dir: str, kind: str, x: float, seed: int) -> Path:
    return Path(marker_dir) / f"{kind}-{x:g}-{seed}"


def kill_once_tdown(x, seed, marker_dir="", kill_key=None):
    """SIGKILL the worker on the first attempt of ``kill_key`` (or of
    every trial when ``kill_key`` is None); build normally afterwards."""
    if kill_key is None or (int(x), seed) == tuple(kill_key):
        marker = _marker(marker_dir, "kill", x, seed)
        if not marker.exists():
            marker.write_text("killed", encoding="utf-8")
            os.kill(os.getpid(), signal.SIGKILL)
    return tdown_clique(int(x))


def kill_always_tdown(x, seed):
    """SIGKILL the worker on *every* attempt — exhausts any retry budget."""
    os.kill(os.getpid(), signal.SIGKILL)
    return tdown_clique(int(x))  # pragma: no cover - never reached


def hang_once_tdown(x, seed, marker_dir="", hang_key=None, sleep_s=60.0):
    """Hang the first attempt of ``hang_key`` (or of every trial when
    ``hang_key`` is None) long enough for the watchdog to kill it."""
    if hang_key is None or (int(x), seed) == tuple(hang_key):
        marker = _marker(marker_dir, "hang", x, seed)
        if not marker.exists():
            marker.write_text("hung", encoding="utf-8")
            time.sleep(sleep_s)
    return tdown_clique(int(x))


def hang_always_tdown(x, seed, sleep_s=60.0):
    """Hang every attempt — exhausts any retry budget via timeouts."""
    time.sleep(sleep_s)
    return tdown_clique(int(x))  # pragma: no cover - never reached


def chaotic_tdown(x, seed, marker_dir="", kill_key=(3, 0), hang_key=(4, 1), sleep_s=60.0):
    """The acceptance scenario: one trial loses its worker to SIGKILL and
    one trial hangs past the watchdog, each exactly once."""
    key = (int(x), seed)
    if key == tuple(kill_key):
        marker = _marker(marker_dir, "kill", x, seed)
        if not marker.exists():
            marker.write_text("killed", encoding="utf-8")
            os.kill(os.getpid(), signal.SIGKILL)
    if key == tuple(hang_key):
        marker = _marker(marker_dir, "hang", x, seed)
        if not marker.exists():
            marker.write_text("hung", encoding="utf-8")
            time.sleep(sleep_s)
    return tdown_clique(int(x))


def slow_tdown(x, seed, delay_s=1.0):
    """Stall inside the worker before building, widening the window in
    which an external test can ``kill -9`` the worker or the driver."""
    time.sleep(delay_s)
    return tdown_clique(int(x))
