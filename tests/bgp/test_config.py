"""Unit tests for BgpConfig and the variant registry."""

import pytest

from repro.bgp import BgpConfig, VARIANT_NAMES, all_variants, variant
from repro.errors import ConfigError


class TestConfig:
    def test_defaults_match_paper(self):
        config = BgpConfig()
        assert config.mrai == 30.0
        assert config.mrai_jitter == (0.75, 1.0)
        assert config.processing_delay == (0.1, 0.5)
        assert not any(
            (config.wrate, config.ssld, config.assertion, config.ghost_flushing)
        )

    def test_with_mrai_returns_new_config(self):
        base = BgpConfig(ssld=True)
        changed = base.with_mrai(15.0)
        assert changed.mrai == 15.0
        assert changed.ssld
        assert base.mrai == 30.0

    def test_variant_name(self):
        assert BgpConfig().variant_name == "standard"
        assert BgpConfig(ssld=True).variant_name == "ssld"
        assert BgpConfig(ssld=True, wrate=True).variant_name == "ssld+wrate"

    def test_invalid_mrai(self):
        with pytest.raises(ConfigError):
            BgpConfig(mrai=-1.0)

    def test_invalid_jitter(self):
        with pytest.raises(ConfigError):
            BgpConfig(mrai_jitter=(0.0, 1.0))

    def test_invalid_processing_delay(self):
        with pytest.raises(ConfigError):
            BgpConfig(processing_delay=(0.5, 0.1))

    def test_frozen(self):
        with pytest.raises(Exception):
            BgpConfig().mrai = 5.0


class TestRegistry:
    def test_all_five_variants(self):
        assert VARIANT_NAMES == [
            "standard",
            "ssld",
            "wrate",
            "assertion",
            "ghost-flushing",
        ]

    def test_variant_flags(self):
        assert variant("ssld").ssld
        assert variant("wrate").wrate
        assert variant("assertion").assertion
        assert variant("ghost-flushing").ghost_flushing
        standard = variant("standard")
        assert not any(
            (standard.ssld, standard.wrate, standard.assertion, standard.ghost_flushing)
        )

    def test_variant_mrai_passthrough(self):
        assert variant("ssld", mrai=7.0).mrai == 7.0

    def test_unknown_variant(self):
        with pytest.raises(ConfigError, match="unknown BGP variant"):
            variant("turbo")

    def test_all_variants_map(self):
        table = all_variants(mrai=5.0)
        assert list(table) == VARIANT_NAMES
        assert all(config.mrai == 5.0 for config in table.values())
