"""Machine-checkable versions of the paper's three Observations.

Each function turns one qualitative claim from §4-§5 into a quantitative
check over experiment results, so the benchmark harness can print not just
the figures' series but also whether the reproduced data *exhibits the same
shape* the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import AnalysisError
from ..util.stats import coefficient_of_variation, linear_fit, mean


@dataclass(frozen=True)
class ObservationCheck:
    """Outcome of checking one observation against measured data."""

    name: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        verdict = "HOLDS" if self.holds else "VIOLATED"
        return f"{self.name}: {verdict} — {self.detail}"


# ----------------------------------------------------------------------
# Observation 1: "The overall looping duration is closely coupled with the
# convergence time and the overall looping duration is linearly proportional
# to the MRAI value."
# ----------------------------------------------------------------------


def check_duration_coupling(
    looping_durations: Sequence[float],
    convergence_times: Sequence[float],
    max_gap_fraction: float = 0.5,
) -> ObservationCheck:
    """Looping duration tracks convergence time (within a fraction of it).

    The paper's Figure 4 gap is "a few seconds" for Tdown and "30 to 45
    seconds" (≈ one MRAI round) for Tlong, both well under half the
    convergence time for non-trivial topologies.
    """
    if len(looping_durations) != len(convergence_times):
        raise AnalysisError("series lengths differ")
    gaps = []
    for loop_d, conv_t in zip(looping_durations, convergence_times):
        if conv_t <= 0:
            continue
        gaps.append((conv_t - loop_d) / conv_t)
    if not gaps:
        return ObservationCheck(
            "obs1-coupling", False, "no runs with positive convergence time"
        )
    worst = max(gaps)
    return ObservationCheck(
        "obs1-coupling",
        worst <= max_gap_fraction,
        f"worst relative gap {worst:.2f} (threshold {max_gap_fraction})",
    )


def check_tlong_gap(
    looping_durations: Sequence[float],
    convergence_times: Sequence[float],
    mrai: float,
    max_rounds: float = 2.0,
) -> ObservationCheck:
    """The Tlong gap is positive and about one MRAI round (Figure 4b).

    "The overall looping duration in Tlong is typically 30 to 45 seconds
    shorter than the convergence time" (with M = 30): after the last loop
    resolves, the final — MRAI-held — update still has to go out.  The gap
    is therefore an *absolute* quantity of order M, checked here as
    ``0 < gap <= max_rounds × M`` at every sweep point.
    """
    if len(looping_durations) != len(convergence_times):
        raise AnalysisError("series lengths differ")
    gaps = [c - l for l, c in zip(looping_durations, convergence_times)]
    bad = [
        (index, gap)
        for index, gap in enumerate(gaps)
        if not 0 < gap <= max_rounds * mrai
    ]
    return ObservationCheck(
        "tlong-gap-one-mrai-round",
        not bad,
        f"gaps {['%.1f' % g for g in gaps]} vs bound {max_rounds * mrai:.1f}"
        + (f"; out of band at indices {[i for i, _ in bad]}" if bad else ""),
    )


def check_linear_in_mrai(
    mrai_values: Sequence[float],
    metric_values: Sequence[float],
    min_r_squared: float = 0.9,
) -> ObservationCheck:
    """A metric grows linearly with MRAI (Observations 1 and 2)."""
    fit = linear_fit(list(mrai_values), list(metric_values))
    holds = fit.r_squared >= min_r_squared and fit.slope > 0
    return ObservationCheck(
        "linear-in-mrai",
        holds,
        f"slope {fit.slope:.3f}, R² {fit.r_squared:.3f} "
        f"(need R² >= {min_r_squared} and positive slope)",
    )


# ----------------------------------------------------------------------
# Observation 2: "...the number of TTL exhaustions is linearly proportional
# to the MRAI timer value, while the packet looping ratio stays almost
# constant."
# ----------------------------------------------------------------------


def check_ratio_constant(
    looping_ratios: Sequence[float],
    max_cv: float = 0.25,
) -> ObservationCheck:
    """The looping ratio is "almost constant" across the MRAI sweep."""
    if not looping_ratios:
        raise AnalysisError("no looping ratios supplied")
    cv = coefficient_of_variation(list(looping_ratios))
    return ObservationCheck(
        "obs2-ratio-constant",
        cv <= max_cv,
        f"mean ratio {mean(list(looping_ratios)):.2f}, "
        f"coefficient of variation {cv:.3f} (threshold {max_cv})",
    )


# ----------------------------------------------------------------------
# Observation 3: "Both Assertion and Ghost Flushing are effective in
# speeding up route convergence and reducing transient loops, while SSLD and
# WRATE are not."
# ----------------------------------------------------------------------


def check_enhancement_ranking(
    metric_by_variant: Dict[str, float],
    ghost_flushing_improvement: float = 0.5,
    assertion_improvement: float = 0.1,
    modest_improvement: float = 0.05,
) -> List[ObservationCheck]:
    """Observation 3's claims against a {variant: metric} map.

    ``metric_by_variant`` must contain all five §5 names; lower is better
    (TTL exhaustions or convergence time).  Returns one check per claim:

    * Ghost Flushing improves on standard by >= ``ghost_flushing_improvement``
      (the paper reports >= 80% looping reduction at scale),
    * Assertion *consistently* improves (>= ``assertion_improvement``; its
      magnitude "depends on the details of topology" and is much less
      pronounced on Internet-derived graphs),
    * SSLD does not *worsen* standard (its gain is allowed to be modest).
    """
    required = {"standard", "ssld", "wrate", "assertion", "ghost-flushing"}
    missing = required - set(metric_by_variant)
    if missing:
        raise AnalysisError(f"missing variants: {sorted(missing)}")
    base = metric_by_variant["standard"]
    if base <= 0:
        return [
            ObservationCheck(
                "obs3", False, "standard BGP shows no looping; nothing to compare"
            )
        ]

    def improvement(name: str) -> float:
        return (base - metric_by_variant[name]) / base

    checks = []
    for name, threshold in (
        ("assertion", assertion_improvement),
        ("ghost-flushing", ghost_flushing_improvement),
    ):
        gain = improvement(name)
        checks.append(
            ObservationCheck(
                f"obs3-{name}-effective",
                gain >= threshold,
                f"{name} improves standard by {gain:+.0%} "
                f"(need >= {threshold:.0%})",
            )
        )
    ssld_gain = improvement("ssld")
    checks.append(
        ObservationCheck(
            "obs3-ssld-modest",
            ssld_gain >= -modest_improvement,
            f"ssld changes standard by {ssld_gain:+.0%} (must not regress)",
        )
    )
    return checks


def check_wrate_regression(
    standard_metric: float,
    wrate_metric: float,
    min_regression: float = 0.2,
) -> ObservationCheck:
    """WRATE worsens looping on Internet-like Tlong (by >= 20% in the paper)."""
    if standard_metric <= 0:
        return ObservationCheck(
            "obs3-wrate-regression", False, "standard shows no looping to regress"
        )
    change = (wrate_metric - standard_metric) / standard_metric
    return ObservationCheck(
        "obs3-wrate-regression",
        change >= min_regression,
        f"wrate changes looping by {change:+.0%} (paper: >= +{min_regression:.0%})",
    )
