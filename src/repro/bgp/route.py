"""Routes: a prefix bound to an AS path with bookkeeping attributes.

Interning
---------

At routing-table scale every speaker holds one candidate :class:`Route` per
(neighbor, prefix) pair, and most of those are *the same value*: a clique
node learns the same (path, next_hop, local_pref) triple for thousands of
prefixes that differ only in the prefix string.  This module therefore
maintains a process-global **intern table** mirroring the
:class:`~repro.bgp.path.AsPath` one: one canonical :class:`Route` per
distinct ``(prefix, path, next_hop, local_pref)`` key.  Simulator code
obtains routes through :func:`intern_route` / :meth:`Route.of`; direct
``Route(...)`` construction stays valid (tests, ad-hoc analysis) and
compares equal to its canonical twin, it just does not share storage.

Interned routes always carry ``learned_at == 0.0`` — the field is
diagnostics-only (``compare=False``, outside every digest), and folding it
into the key would defeat sharing entirely.  Pickle support re-interns on
load (:meth:`Route.__reduce__`), so routes crossing a process boundary —
parallel sweep workers — land in the worker's own table and keep the
identity fast path; a direct-constructed route with a non-zero
``learned_at`` round-trips its timestamp un-interned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .messages import Prefix
from .path import AsPath

LOCAL_NEXT_HOP: Optional[int] = None
"""``next_hop`` of a locally-originated route (traffic is delivered here)."""

DEFAULT_LOCAL_PREF = 100
"""BGP's customary default LOCAL_PREF."""


@dataclass(frozen=True, slots=True, eq=False)
class Route:
    """One candidate route to ``prefix``.

    Attributes
    ----------
    prefix:
        The destination.
    path:
        The AS path *as stored*: exactly what the neighbor advertised (its
        own AS is the head), or the empty path for a local origination.
    next_hop:
        The neighbor the route was learned from, or ``None`` for local.
    local_pref:
        Policy preference; higher wins (standard BGP semantics).  The
        paper's experiments leave every route at the default, making the
        decision purely shortest-path.
    learned_at:
        Simulation time the route entered the RIB (diagnostics only; not
        part of equality so RIB comparisons stay value-based).  Always
        ``0.0`` on interned routes.
    """

    prefix: Prefix
    path: AsPath
    next_hop: Optional[int]
    local_pref: int = DEFAULT_LOCAL_PREF
    learned_at: float = field(default=0.0, compare=False)
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.next_hop is None and not self.path.is_empty:
            raise ValueError("a non-local route must name its next hop")
        if self.next_hop is not None and self.path.head != self.next_hop:
            raise ValueError(
                f"stored path {self.path!r} must start at next hop {self.next_hop}"
            )
        object.__setattr__(
            self,
            "_hash",
            hash((self.prefix, self.path, self.next_hop, self.local_pref)),
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Route):
            # learned_at deliberately excluded (diagnostics only).
            return (
                self.prefix == other.prefix
                and self.local_pref == other.local_pref
                and self.next_hop == other.next_hop
                and self.path == other.path
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Unpickling re-interns (sweep workers rebuild their own table);
        # a non-zero learned_at survives as a direct instance.
        return (
            _unpickle_route,
            (self.prefix, self.path.ases, self.next_hop, self.local_pref, self.learned_at),
        )

    @property
    def is_local(self) -> bool:
        """True for a locally-originated route."""
        return self.next_hop is None

    @property
    def hop_count(self) -> int:
        """AS hops to the destination (0 for a local route)."""
        return len(self.path)

    def advertised_by(self, asn: int) -> AsPath:
        """The path this route would carry when ``asn`` re-advertises it."""
        return self.path.prepend(asn)

    @classmethod
    def of(
        cls,
        prefix: Prefix,
        path: AsPath,
        next_hop: Optional[int],
        local_pref: int = DEFAULT_LOCAL_PREF,
    ) -> "Route":
        """The canonical (interned) instance; see :func:`intern_route`."""
        return intern_route(prefix, path, next_hop, local_pref)

    def __repr__(self) -> str:
        origin = "local" if self.is_local else f"via {self.next_hop}"
        return f"Route[{self.prefix} {self.path!r} {origin} lp={self.local_pref}]"


#: The process-global intern table: (prefix, AS tuple, next_hop, local_pref)
#: -> canonical instance.  Strong references, like the AsPath table: the
#: population of distinct route values is bounded by the workload, and a
#: worker reuses them across every trial it runs.
_INTERN_TABLE: Dict[Tuple[Prefix, Tuple[int, ...], Optional[int], int], Route] = {}


def intern_route(
    prefix: Prefix,
    path: AsPath,
    next_hop: Optional[int],
    local_pref: int = DEFAULT_LOCAL_PREF,
) -> Route:
    """The canonical :class:`Route` for the key, validating on first sight.

    Repeated requests return the *same* object, so route equality inside
    RIBs short-circuits on identity and per-prefix Adj-RIB state can be
    shared structurally across prefixes.  The stored path is canonicalized
    through :meth:`AsPath.of`, so an un-interned path argument still lands
    on the shared instance.
    """
    key = (prefix, path.ases, next_hop, local_pref)
    cached = _INTERN_TABLE.get(key)
    if cached is not None:
        return cached
    route = Route(
        prefix=prefix,
        path=AsPath.of(path.ases),
        next_hop=next_hop,
        local_pref=local_pref,
    )
    return _INTERN_TABLE.setdefault(key, route)


def _unpickle_route(
    prefix: Prefix,
    ases: Tuple[int, ...],
    next_hop: Optional[int],
    local_pref: int,
    learned_at: float,
) -> Route:
    """Pickle re-entry point (see :meth:`Route.__reduce__`)."""
    if learned_at == 0.0:
        return intern_route(prefix, AsPath.of(ases), next_hop, local_pref)
    return Route(
        prefix=prefix,
        path=AsPath.of(ases),
        next_hop=next_hop,
        local_pref=local_pref,
        learned_at=learned_at,
    )


def route_intern_table_size() -> int:
    """Number of distinct routes currently interned (diagnostics/tests)."""
    return len(_INTERN_TABLE)


def local_route(prefix: Prefix, learned_at: float = 0.0) -> Route:
    """The route a speaker installs when it originates ``prefix``.

    The default (timestamp-free) form is interned — it is rebuilt on every
    decision-process pass for an originated prefix, so the dict hit matters.
    """
    if learned_at == 0.0:
        return intern_route(prefix, AsPath.empty(), LOCAL_NEXT_HOP)
    return Route(
        prefix=prefix,
        path=AsPath.empty(),
        next_hop=LOCAL_NEXT_HOP,
        learned_at=learned_at,
    )
