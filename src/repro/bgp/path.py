"""AS-path algebra.

The AS path is the defining attribute of a path-vector protocol: every
announcement carries the full sequence of ASes toward the destination, and
the paper's §3 reasons about paths with a concatenation operator "·" and a
containment test (the path-based poison reverse).  :class:`AsPath` implements
exactly that algebra as an immutable value type.

Conventions (matching the paper's notation):

* ``AsPath((5, 4, 0))`` is the path "5 4 0": the head (index 0) is the AS
  that most recently advertised the route, the tail is the origin AS.
* A node *stores* the path exactly as received and *prepends itself* when
  re-advertising, so a route's advertised form is ``path.prepend(self_id)``.
* The empty path is valid: it is the path of a locally-originated route.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..errors import ProtocolError


class AsPath:
    """An immutable sequence of AS numbers, most-recent-first.

    Supports the operations the protocol and the paper's analysis need:
    prepend (advertisement), containment (loop detection), concatenation
    (the "·" operator of §3.2), suffix extraction (the Assertion check),
    and value equality/hashing (RIB bookkeeping).
    """

    __slots__ = ("_ases",)

    def __init__(self, ases: Iterable[int] = ()) -> None:
        path = tuple(int(a) for a in ases)
        if any(a < 0 for a in path):
            raise ProtocolError(f"AS numbers must be non-negative: {path}")
        if len(set(path)) != len(path):
            raise ProtocolError(f"AS path may not contain duplicates: {path}")
        self._ases = path

    # ------------------------------------------------------------------
    # Basic sequence behavior
    # ------------------------------------------------------------------

    @property
    def ases(self) -> Tuple[int, ...]:
        """The AS numbers as a tuple, most-recent-first."""
        return self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __getitem__(self, index):
        return self._ases[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AsPath):
            return self._ases == other._ases
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._ases)

    def __repr__(self) -> str:
        body = " ".join(str(a) for a in self._ases)
        return f"({body})"

    # ------------------------------------------------------------------
    # Path-vector operations
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True for the path of a locally-originated route."""
        return not self._ases

    @property
    def head(self) -> Optional[int]:
        """The most recent AS (the advertising neighbor), or ``None``."""
        return self._ases[0] if self._ases else None

    @property
    def origin(self) -> Optional[int]:
        """The origin AS (last element), or ``None`` for the empty path."""
        return self._ases[-1] if self._ases else None

    def prepend(self, asn: int) -> "AsPath":
        """The path as advertised by ``asn``: ``asn`` prefixed to this path.

        Raises :class:`ProtocolError` if ``asn`` already appears — a speaker
        advertising a path through itself is a protocol bug.
        """
        if asn in self._ases:
            raise ProtocolError(f"AS {asn} already in path {self!r}")
        return AsPath((asn,) + self._ases)

    def concat(self, other: "AsPath") -> "AsPath":
        """The paper's "·" operator: this path followed by ``other``.

        Used by the analytical model of §3.2, e.g.
        ``(c_1 .. c_k) · path(c_k, old)``.
        """
        return AsPath(self._ases + other._ases)

    def contains_any(self, ases: Iterable[int]) -> bool:
        """True if any AS from ``ases`` appears in this path."""
        mine = set(self._ases)
        return any(a in mine for a in ases)

    def suffix_from(self, asn: int) -> Optional["AsPath"]:
        """The sub-path starting at ``asn`` (inclusive), or ``None``.

        This is the Assertion approach's consistency probe: node *v* checks
        whether a stored path's suffix from neighbor *u* matches *u*'s
        currently-announced path.
        """
        try:
            index = self._ases.index(asn)
        except ValueError:
            return None
        return AsPath(self._ases[index:])

    def next_after(self, asn: int) -> Optional[int]:
        """The AS that follows ``asn`` on the way to the origin, if any."""
        try:
            index = self._ases.index(asn)
        except ValueError:
            return None
        if index + 1 >= len(self._ases):
            return None
        return self._ases[index + 1]

    @classmethod
    def empty(cls) -> "AsPath":
        """The path of a locally-originated route."""
        return _EMPTY


_EMPTY = AsPath(())
