"""Event timelines: instants and spans keyed by *simulation* time.

A :class:`Timeline` is an append-only log of named instants (an MRAI
timer fired, a FIB entry changed) and spans (a loop's lifetime, a run
phase).  Everything is stamped with simulation seconds — never the wall
clock — so recording a timeline cannot perturb determinism and two runs
of one seed produce byte-identical exports.  Wall-clock profiling lives
on the harness side of the boundary, in
:mod:`repro.telemetry.profiler`.

Two export formats:

* **JSONL** (:meth:`Timeline.to_jsonl`) — one record per line, trivially
  greppable and diffable;
* **Chrome trace-event JSON** (:meth:`Timeline.to_chrome_trace`) — the
  ``{"traceEvents": [...]}`` format loadable in Perfetto /
  ``chrome://tracing``.  Simulation seconds map to trace microseconds,
  tracks map to thread ids (one per node, plus a global track), and
  spans become complete ``"X"`` events.

:func:`validate_chrome_trace` checks an exported payload against the
subset of the trace-event schema the simulator emits; CI runs it on a
traced 5-clique Tdown so the export format cannot rot silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import TelemetryError

#: Track id used for events that belong to no particular node.
GLOBAL_TRACK = -1

#: Trace-event phase codes this module emits.
_PHASE_COMPLETE = "X"
_PHASE_INSTANT = "i"
_PHASE_METADATA = "M"


@dataclass(frozen=True)
class TimelineRecord:
    """One timeline entry: an instant (``duration is None``) or a span.

    ``track`` groups records into horizontal lanes (node ids; the
    engine/harness uses :data:`GLOBAL_TRACK`).  ``args`` is a sorted
    tuple of key/value pairs so records stay hashable and picklable.
    """

    time: float
    name: str
    category: str
    track: int = GLOBAL_TRACK
    duration: Optional[float] = None

    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def is_span(self) -> bool:
        return self.duration is not None

    @property
    def end(self) -> float:
        """Span end (= ``time`` for instants)."""
        return self.time + (self.duration or 0.0)


class Timeline:
    """An append-only log of simulation-time instants and spans."""

    def __init__(self) -> None:
        self._records: List[TimelineRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TimelineRecord]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def instant(
        self,
        time: float,
        name: str,
        category: str,
        track: int = GLOBAL_TRACK,
        **args: Any,
    ) -> None:
        """Record a point event at simulation time ``time``."""
        self._records.append(
            TimelineRecord(
                time=time,
                name=name,
                category=category,
                track=track,
                args=tuple(sorted(args.items())),
            )
        )

    def span(
        self,
        start: float,
        end: float,
        name: str,
        category: str,
        track: int = GLOBAL_TRACK,
        **args: Any,
    ) -> None:
        """Record an interval ``[start, end]`` of simulation time."""
        if end < start:
            raise TelemetryError(
                f"span {name!r} ends at {end} before it starts at {start}"
            )
        self._records.append(
            TimelineRecord(
                time=start,
                name=name,
                category=category,
                track=track,
                duration=end - start,
                args=tuple(sorted(args.items())),
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def records(self, category: Optional[str] = None) -> List[TimelineRecord]:
        """All records (in recording order), optionally one category's."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def categories(self) -> List[str]:
        """Distinct categories present, sorted."""
        return sorted({r.category for r in self._records})

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per record, chronology preserved."""
        lines = []
        for record in self._records:
            payload: Dict[str, Any] = {
                "time": record.time,
                "name": record.name,
                "category": record.category,
                "track": record.track,
            }
            if record.duration is not None:
                payload["duration"] = record.duration
            if record.args:
                payload["args"] = dict(record.args)
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self, process_name: str = "repro-sim") -> Dict[str, Any]:
        """The timeline as a Chrome trace-event payload (Perfetto-loadable).

        Simulation seconds become trace microseconds.  Each track becomes
        one thread of a single synthetic process; metadata events name the
        process and threads so the viewer shows ``node 3`` instead of a
        bare tid.
        """
        events: List[Dict[str, Any]] = [
            {
                "ph": _PHASE_METADATA,
                "pid": 0,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        ]
        for track in sorted({r.track for r in self._records}):
            label = "sim" if track == GLOBAL_TRACK else f"node {track}"
            events.append(
                {
                    "ph": _PHASE_METADATA,
                    "pid": 0,
                    "tid": self._tid(track),
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )
        for record in self._records:
            event: Dict[str, Any] = {
                "name": record.name,
                "cat": record.category,
                "pid": 0,
                "tid": self._tid(record.track),
                "ts": record.time * 1e6,
                "args": dict(record.args),
            }
            if record.duration is not None:
                event["ph"] = _PHASE_COMPLETE
                event["dur"] = record.duration * 1e6
            else:
                event["ph"] = _PHASE_INSTANT
                event["s"] = "t"
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    @staticmethod
    def _tid(track: int) -> int:
        # Thread ids must be non-negative; the global track gets tid 0 and
        # node tracks shift up by one.
        return 0 if track == GLOBAL_TRACK else track + 1

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def write_chrome_trace(self, path: str, process_name: str = "repro-sim") -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(process_name), handle, sort_keys=True)
            handle.write("\n")


def validate_chrome_trace(payload: Any) -> int:
    """Validate a Chrome trace-event payload; returns the event count.

    Checks the subset of the trace-event format this package emits:
    a top-level ``traceEvents`` list whose members carry the required
    keys with the required types per phase.  Raises
    :class:`~repro.errors.TelemetryError` on the first violation — this
    is the CI schema gate for exported traces.
    """
    if not isinstance(payload, dict):
        raise TelemetryError(f"trace payload must be an object, got {type(payload)}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise TelemetryError("trace payload is missing the 'traceEvents' list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise TelemetryError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in (_PHASE_COMPLETE, _PHASE_INSTANT, _PHASE_METADATA):
            raise TelemetryError(f"{where} has unknown phase {phase!r}")
        for key, types in (("name", str), ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), types):
                raise TelemetryError(f"{where} field {key!r} missing or mistyped")
        if event["tid"] < 0:
            raise TelemetryError(f"{where} has negative tid {event['tid']}")
        if phase == _PHASE_METADATA:
            if not isinstance(event.get("args"), dict):
                raise TelemetryError(f"{where} metadata event needs args")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise TelemetryError(f"{where} field 'ts' missing or mistyped")
        if event["ts"] < 0:
            raise TelemetryError(f"{where} has negative timestamp {event['ts']}")
        if not isinstance(event.get("cat"), str):
            raise TelemetryError(f"{where} field 'cat' missing or mistyped")
        if phase == _PHASE_COMPLETE:
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise TelemetryError(f"{where} complete event needs dur >= 0")
        if phase == _PHASE_INSTANT and event.get("s") not in ("t", "p", "g"):
            raise TelemetryError(f"{where} instant event has bad scope")
    return len(events)
