"""Wire-level sequencing tests for MRAI interplay with the enhancements.

A diamond topology gives node 1 three upstream paths of increasing length,
so consecutive failures force it through a lengthening sequence while its
MRAI timer toward downstream node 2 is running — exactly the situation in
which standard BGP stays silent, Ghost Flushing sends its flush
withdrawal, and WRATE delays a real withdrawal.

Topology (destination behind node 0):

    0 --- 1 --- 2         1's paths: (0), then (3 0), then (5 4 0)
    |    /|
    |   / |
    3--   5 --- 4 --- 0 (via 4)
"""

import pytest

from repro.bgp import Announcement, AsPath, BgpConfig, BgpSpeaker, Withdrawal
from repro.engine import RandomStreams, Scheduler
from repro.net import Network
from repro.topology import Topology

PREFIX = "dest"
MRAI = 10.0
MIN_HOLD = 0.75 * MRAI  # jitter low edge: no held update can precede this


def diamond() -> Topology:
    return Topology.from_edges(
        [(0, 1), (1, 2), (0, 3), (1, 3), (0, 4), (4, 5), (1, 5)]
    )


def build(config, seed=3):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    network = Network(
        diamond(),
        scheduler,
        lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
    )
    network.node(0).originate(PREFIX)
    network.start()
    scheduler.run(max_events=200_000)
    return network, scheduler


def messages_1_to_2(network, since):
    return [
        r
        for r in network.trace
        if r.src == 1 and r.dst == 2 and r.time >= since
    ]


def fail_first_two_upstreams(network, scheduler):
    """Fail (0,1) then (1,3) one second apart; returns both instants."""
    t0 = scheduler.now + 1.0
    network.schedule_link_failure(0, 1, at=t0)
    network.schedule_link_failure(1, 3, at=t0 + 1.0)
    return t0, t0 + 1.0


class TestGhostFlushingSequencing:
    def test_flush_withdrawal_precedes_held_announcement(self):
        config = BgpConfig(
            mrai=MRAI, processing_delay=(0.01, 0.05), ghost_flushing=True
        )
        network, scheduler = build(config)
        t0, t1 = fail_first_two_upstreams(network, scheduler)
        scheduler.run(max_events=200_000)

        wire = messages_1_to_2(network, since=t0)
        kinds = [type(r.message).__name__ for r in wire]
        # 1) failover announcement (timer idle -> immediate),
        # 2) the ghost flush (longer path held by MRAI -> withdrawal now),
        # 3) the held announcement when the timer expires.
        assert kinds[:3] == ["Announcement", "Withdrawal", "Announcement"], kinds
        first, flush, held = wire[:3]
        assert first.message.path == AsPath((1, 3, 0))
        assert first.time < t0 + 1.0
        assert flush.time < t1 + 1.0          # flush is NOT rate-limited
        assert held.message.path == AsPath((1, 5, 4, 0))
        assert held.time >= first.time + MIN_HOLD  # announcement was held


class TestStandardSequencing:
    def test_longer_path_waits_silently_for_mrai(self):
        config = BgpConfig(mrai=MRAI, processing_delay=(0.01, 0.05))
        network, scheduler = build(config)
        t0, _t1 = fail_first_two_upstreams(network, scheduler)
        scheduler.run(max_events=200_000)

        wire = messages_1_to_2(network, since=t0)
        kinds = [type(r.message).__name__ for r in wire]
        # No flush: the second (longer) path simply waits for the timer.
        assert kinds[:2] == ["Announcement", "Announcement"], kinds
        first, held = wire[:2]
        assert first.message.path == AsPath((1, 3, 0))
        assert held.message.path == AsPath((1, 5, 4, 0))
        assert held.time >= first.time + MIN_HOLD


class TestWithdrawalSequencing:
    def fail_all_upstreams(self, network, scheduler):
        t0 = scheduler.now + 1.0
        network.schedule_link_failure(0, 1, at=t0)
        network.schedule_link_failure(1, 3, at=t0 + 1.0)
        network.schedule_link_failure(1, 5, at=t0 + 1.5)
        return t0

    def test_standard_withdrawal_is_immediate(self):
        config = BgpConfig(mrai=MRAI, processing_delay=(0.01, 0.05))
        network, scheduler = build(config)
        t0 = self.fail_all_upstreams(network, scheduler)
        scheduler.run(max_events=200_000)
        withdrawals = [
            r
            for r in messages_1_to_2(network, since=t0)
            if isinstance(r.message, Withdrawal)
        ]
        assert withdrawals, "node 1 must withdraw from node 2"
        # Route lost at t0+1.5; standard withdrawal goes right away even
        # though the announcement timer (armed at ~t0) is still running.
        assert withdrawals[0].time < t0 + 2.5

    def test_wrate_holds_the_withdrawal(self):
        config = BgpConfig(mrai=MRAI, processing_delay=(0.01, 0.05), wrate=True)
        network, scheduler = build(config)
        t0 = self.fail_all_upstreams(network, scheduler)
        scheduler.run(max_events=200_000)
        wire = messages_1_to_2(network, since=t0)
        first_announcement = next(
            r for r in wire if isinstance(r.message, Announcement)
        )
        withdrawals = [r for r in wire if isinstance(r.message, Withdrawal)]
        assert withdrawals, "the withdrawal must eventually go out"
        # Under WRATE it cannot precede the jittered-minimum hold after the
        # failover announcement that armed the timer.
        assert withdrawals[0].time >= first_announcement.time + MIN_HOLD
