"""Chaos tests: the daemon is killed — politely and otherwise — mid-sweep,
and the resumed job must finish with per-trial digests bit-identical to
an undisturbed foreground run of the same plan.

This is the subsystem's acceptance criterion, asserted at the strongest
available boundary: a real subprocess daemon, a real ``SIGKILL``, real
journal files.
"""

from repro.experiments import SweepJournal, checkpointed_sweep
from repro.service import ServiceState, resolve_sweep_plan, sweep_digest
from repro.service.queue import DurableJobQueue

from daemon_harness import DaemonHarness

#: Long enough to survive until the kill lands, small enough to stay fast.
CHAOS_PARAMS = {
    "family": "tdown",
    "xs": [3.0, 4.0, 5.0, 6.0],
    "trials": 2,
}


def foreground_records(params, tmp_path):
    """The undisturbed reference run of the same resolved plan."""
    plan = resolve_sweep_plan(params)
    journal = SweepJournal(tmp_path / "foreground.trials.jsonl")
    checkpointed_sweep(
        plan.xs,
        plan.make_scenario,
        plan.make_config,
        journal=journal,
        seeds=plan.seeds,
        settings=plan.settings,
        jobs=1,
        digests=True,
    )
    records = journal.records
    journal.close()
    return records


def wait_done(client, job_id):
    for event in client.watch(job_id):
        if event["event"] == "end":
            return event["state"]
    raise AssertionError("watch stream ended without an end event")


class TestSigkillResume:
    def test_sigkill_mid_sweep_resumes_with_identical_digests(self, tmp_path):
        state_dir = tmp_path / "state"
        harness = DaemonHarness(state_dir).start()
        try:
            job = harness.client.submit(
                {"kind": "sweep", "params": CHAOS_PARAMS}
            )
            # Let at least one point land in the journal, then murder the
            # daemon — no checkpoint, no atexit, nothing graceful.
            for event in harness.client.watch(job):
                if event["event"] == "point":
                    break
            harness.kill()

            # The restarted daemon replays the queue and resumes the job.
            harness2 = DaemonHarness(state_dir).start()
            try:
                [summary] = harness2.client.jobs()
                assert summary["job"] == job
                assert summary["state"] in ("queued", "running", "done")
                assert wait_done(harness2.client, job) == "done"
                [summary] = harness2.client.jobs()
                service_digest = summary["detail"]["digest"]
            finally:
                harness2.stop()
        finally:
            harness.stop()

        service_records, _ = SweepJournal(
            ServiceState(state_dir).journal_path(job)
        ).load()
        reference = foreground_records(CHAOS_PARAMS, tmp_path)

        assert len(service_records) == len(reference) == 8
        service_map = {k: r.digest for k, r in service_records.items()}
        reference_map = {k: r.digest for k, r in reference.items()}
        assert all(reference_map.values())
        assert service_map == reference_map
        assert service_digest == sweep_digest(reference)

    def test_sigkill_before_any_point_restarts_cleanly(self, tmp_path):
        state_dir = tmp_path / "state"
        harness = DaemonHarness(state_dir).start()
        try:
            job = harness.client.submit(
                {"kind": "sweep", "params": CHAOS_PARAMS}
            )
            # Kill as soon as the job starts running — likely before any
            # trial is journaled; resume must equal a from-scratch run.
            for event in harness.client.watch(job):
                if event["event"] == "state" and event["state"] == "running":
                    break
            harness.kill()
            harness2 = DaemonHarness(state_dir).start()
            try:
                assert wait_done(harness2.client, job) == "done"
                [summary] = harness2.client.jobs()
                service_digest = summary["detail"]["digest"]
            finally:
                harness2.stop()
        finally:
            harness.stop()
        assert service_digest == sweep_digest(
            foreground_records(CHAOS_PARAMS, tmp_path)
        )


class TestPoliteShutdownResume:
    def test_sigterm_requeues_job_for_resume(self, tmp_path):
        state_dir = tmp_path / "state"
        harness = DaemonHarness(state_dir).start()
        try:
            job = harness.client.submit(
                {"kind": "sweep", "params": CHAOS_PARAMS}
            )
            for event in harness.client.watch(job):
                if event["event"] == "trial":
                    break
            assert harness.terminate() == 0
        finally:
            harness.stop()

        # Offline: the durable queue shows the job parked, not lost.
        queue = DurableJobQueue(ServiceState(state_dir).queue_path)
        view = queue.get(job)
        queue.close()
        assert view.state == "queued"
        assert view.detail.get("interrupted") is True

        harness2 = DaemonHarness(state_dir).start()
        try:
            assert wait_done(harness2.client, job) == "done"
            [summary] = harness2.client.jobs()
            assert summary["detail"]["digest"] == sweep_digest(
                foreground_records(CHAOS_PARAMS, tmp_path)
            )
        finally:
            harness2.stop()
