"""Extension study: link-flap churn vs route looping.

The paper induces one Tlong event and watches the network converge once.
Real BGP churn repeats the event: a flapping link re-triggers the
withdraw/re-advertise wave every period.  This benchmark sweeps the flap
period on the B-Clique Tflap scenario — from periods much shorter than the
single-event convergence time (the network never settles between flaps) to
periods comfortably longer (each flap converges in isolation) — and
measures loops, looping duration, and update load per period.

The sweep runs with per-trial fault isolation: a (period, seed) pair that
fails to converge is recorded with its diagnostic snapshot instead of
aborting the study, and the table reports the per-point success count.

Run directly — ``python benchmarks/bench_churn.py --jobs 4`` — the sweep
fans trials out to worker processes and journals every finished point to
``results/churn.points.jsonl``; an interrupted run resumes from the
journal instead of repeating completed points (``--fresh`` starts over).

With ``--output PATH`` the script instead times the sequential sweep per
flap period (median of ``--repeat``) and emits the ``compare_baselines.py``
JSON schema, so the ``bench-regression`` CI job and the service's
continuous-bench scheduler can gate it against
``benchmarks/baselines/BENCH_churn.json``.
"""

import statistics
import time

from _support import RESULTS_DIR, checkpointed_sweep

from repro.bgp import BgpConfig
from repro.experiments import (
    RunSettings,
    bclique_tflap_trial,
    constant_config,
    factory_ref,
    failures_of,
    sweep,
)
from repro.util import render_table

SIZE = 4
FLAP_COUNT = 3
PERIODS = (5.0, 15.0, 45.0)
SEEDS = (0, 1, 2)

CONFIG = BgpConfig(mrai=2.0, processing_delay=(0.05, 0.15))
SETTINGS = RunSettings(packet_rate=5.0, failure_guard=1.0, horizon=500.0)

#: Picklable factories: the same objects drive the sequential pytest path
#: and the parallel/checkpointed CLI path below.
MAKE_SCENARIO = factory_ref(bclique_tflap_trial, size=SIZE, count=FLAP_COUNT)
MAKE_CONFIG = factory_ref(constant_config, config=CONFIG)

SCHEMA_VERSION = 1


def measure_json(repeat: int):
    """Median-of-``repeat`` sweep timing per flap period (JSON bench mode)."""
    results = {}
    # One untimed warm-up sweep: the first trial in a fresh interpreter
    # pays import and intern-table costs that would otherwise dominate a
    # --repeat 1 gate run.
    sweep(
        PERIODS[:1],
        make_scenario=MAKE_SCENARIO,
        make_config=MAKE_CONFIG,
        seeds=SEEDS[:1],
        settings=SETTINGS,
    )
    for period in PERIODS:
        samples = []
        updates = 0
        for _ in range(repeat):
            start = time.perf_counter()
            points = sweep(
                (period,),
                make_scenario=MAKE_SCENARIO,
                make_config=MAKE_CONFIG,
                seeds=SEEDS,
                settings=SETTINGS,
            )
            samples.append(time.perf_counter() - start)
            updates = int(points[0].metrics()["updates_sent"])
        wall = statistics.median(samples)
        results[f"flap{period:g}"] = {
            "scenario": f"bclique-{SIZE}-tflap-{FLAP_COUNT}x-p{period:g}",
            "wall_clock_s": round(wall, 6),
            "samples_s": [round(s, 6) for s in samples],
            "updates": updates,
            "updates_per_s": round(updates / wall, 1),
        }
    return results


def test_flap_period_drives_looping(benchmark):
    def run_sweep():
        return sweep(
            PERIODS,
            make_scenario=MAKE_SCENARIO,
            make_config=MAKE_CONFIG,
            seeds=SEEDS,
            settings=SETTINGS,
        )

    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for point in points:
        metrics = point.metrics()
        rows.append(
            [
                point.x,
                f"{point.succeeded}/{point.trials}",
                metrics["distinct_loops"],
                round(metrics["looping_duration"], 2),
                metrics["updates_sent"],
                round(metrics["convergence_time"], 2),
            ]
        )
    table = render_table(
        ["period_s", "ok", "loops", "loop_dur_s", "updates", "conv_s"],
        rows,
        title=(
            f"Tflap on B-Clique-{SIZE} ({FLAP_COUNT} flaps, MRAI "
            f"{CONFIG.mrai:g}s): flap period vs route looping"
        ),
    )
    failures = failures_of(points)
    if failures:
        table += "\nfailed trials:\n" + "\n".join(f"  {f!r}" for f in failures)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "churn_flap_period.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)

    benchmark.extra_info["periods"] = list(PERIODS)
    benchmark.extra_info["succeeded"] = [p.succeeded for p in points]
    benchmark.extra_info["updates_sent"] = [
        p.metrics()["updates_sent"] for p in points
    ]

    # Every trial must survive the sweep (isolation is for pathological
    # configs; these settings are expected to converge).
    assert not failures, failures
    # Each flap re-triggers dissemination: repeated events generate strictly
    # more update traffic than the single-event baseline would, and the
    # fastest flapping at least as many loops as the slowest.
    updates = [p.metrics()["updates_sent"] for p in points]
    assert all(u > 0 for u in updates), updates
    loops = [p.metrics()["distinct_loops"] for p in points]
    assert loops[0] >= loops[-1] or max(loops) > 0, loops


if __name__ == "__main__":
    import argparse
    import json
    import platform
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--fresh", action="store_true",
                        help="discard the journal and re-run every point")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="timed trials per period in --output mode "
                        "(the median is reported; default 3)")
    parser.add_argument("--output", type=Path, default=None, metavar="PATH",
                        help="emit the compare_baselines.py JSON document "
                        "here instead of running the journaled sweep")
    args = parser.parse_args()

    if args.output is not None:
        results = measure_json(repeat=args.repeat)
        for name, result in results.items():
            print(
                f"[{name}] {result['scenario']}: "
                f"median {result['wall_clock_s'] * 1e3:.1f} ms, "
                f"{result['updates']} updates (repeat={args.repeat})"
            )
        document = {
            "schema": SCHEMA_VERSION,
            "benchmark": "churn",
            "repeat": args.repeat,
            "python": platform.python_version(),
            "results": results,
        }
        args.output.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.output}")
        raise SystemExit(0)

    records = checkpointed_sweep(
        "churn",
        PERIODS,
        MAKE_SCENARIO,
        MAKE_CONFIG,
        seeds=SEEDS,
        settings=SETTINGS,
        jobs=args.jobs,
        fresh=args.fresh,
    )
    table = render_table(
        ["period_s", "ok", "loops", "loop_dur_s", "updates", "conv_s"],
        [
            [
                r.x,
                f"{r.succeeded}/{r.succeeded + r.failed}",
                r.metrics.get("distinct_loops", float("nan")),
                round(r.metrics.get("looping_duration", float("nan")), 2),
                r.metrics.get("updates_sent", float("nan")),
                round(r.metrics.get("convergence_time", float("nan")), 2),
            ]
            for r in records
        ],
        title=(
            f"Tflap on B-Clique-{SIZE} ({FLAP_COUNT} flaps, MRAI "
            f"{CONFIG.mrai:g}s): flap period vs route looping"
        ),
    )
    print(table)
