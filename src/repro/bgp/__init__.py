"""The BGP path-vector protocol implementation.

Public surface: :class:`BgpSpeaker` (the router), :class:`BgpConfig` (which
protocol variant it speaks), the RIB/route/path value types, and the §5
variant registry (:func:`variant` / :data:`VARIANT_NAMES`).
"""

from .config import DEFAULT_PROCESSING_DELAY, BgpConfig
from .damping import DampingConfig, RouteFlapDamper
from .decision import DecisionProcess
from .aggregation import AggregateBlock, prefix_population
from .messages import (
    Announcement,
    Keepalive,
    Open,
    Prefix,
    UpdateBatch,
    Withdrawal,
    is_update,
)
from .session import SessionManager
from .mrai import (
    DEFAULT_JITTER,
    DEFAULT_MRAI,
    MRAI_MODES,
    MRAI_PER_PEER,
    MRAI_PER_PREFIX,
    MraiManager,
)
from .path import AsPath, intern_path
from .policy import (
    NoTransitForPrefix,
    PathRankPolicy,
    PreferNeighbor,
    RoutingPolicy,
    ShortestPathPolicy,
)
from .relationships import (
    GaoRexfordPolicy,
    Relationship,
    is_valley_free,
    relationships_from_tiers,
)
from .rib import NOTHING_SENT, AdjRibIn, AdjRibOut, LocRib, SentState
from .route import (
    DEFAULT_LOCAL_PREF,
    Route,
    intern_route,
    local_route,
    route_intern_table_size,
)
from .speaker import BgpSpeaker, FibListener
from .variants import VARIANT_NAMES, all_variants, combine, variant

__all__ = [
    "AdjRibIn",
    "AdjRibOut",
    "AggregateBlock",
    "Announcement",
    "AsPath",
    "BgpConfig",
    "BgpSpeaker",
    "DEFAULT_JITTER",
    "DEFAULT_LOCAL_PREF",
    "DEFAULT_MRAI",
    "DEFAULT_PROCESSING_DELAY",
    "DampingConfig",
    "DecisionProcess",
    "FibListener",
    "GaoRexfordPolicy",
    "Keepalive",
    "LocRib",
    "MRAI_MODES",
    "MRAI_PER_PEER",
    "MRAI_PER_PREFIX",
    "MraiManager",
    "NOTHING_SENT",
    "NoTransitForPrefix",
    "Open",
    "PathRankPolicy",
    "Prefix",
    "PreferNeighbor",
    "Relationship",
    "Route",
    "RouteFlapDamper",
    "RoutingPolicy",
    "SentState",
    "SessionManager",
    "ShortestPathPolicy",
    "UpdateBatch",
    "VARIANT_NAMES",
    "Withdrawal",
    "all_variants",
    "combine",
    "is_update",
    "is_valley_free",
    "intern_route",
    "local_route",
    "route_intern_table_size",
    "prefix_population",
    "relationships_from_tiers",
    "variant",
]
