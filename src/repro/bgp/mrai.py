"""The Minimum Route Advertisement Interval (MRAI) machinery.

"BGP also uses a Minimum Route Advertisement Interval (MRAI) timer to space
out consecutive updates for the same destination by M seconds (default value
30) with a small jitter interval" (§3).  The study implements the timer "on a
per (destination, neighbor) pair base", and so does this module by default
(:data:`MRAI_PER_PREFIX`).

Deployed routers commonly run the coarser variant instead — one timer per
*neighbor*, shared by every destination (:data:`MRAI_PER_PEER`; e.g. the
dragon simulator's ``MRAI_PEER_BASED``).  Multi-prefix workloads make the
distinction observable: a per-peer timer synchronizes the release of held
updates across the whole table, which is what makes batched UPDATEs
(``BgpConfig.batch_updates``) carry many prefixes per message.

Semantics implemented (RFC 1771 / SSFNET style):

* When an advertisement for (prefix, peer) is sent, the timer for that pair
  (per-prefix mode) or for the peer (per-peer mode) is armed with a jittered
  interval.
* While the timer runs, further advertisements it covers are held; when it
  expires the speaker re-derives the desired advertisement(s) from *current*
  state (so intermediate flaps collapse into one update) and, if something
  must be sent, sends it and re-arms.  A per-peer expiry re-derives every
  prefix under one :meth:`MraiManager.flush_window`, arming the shared timer
  once for the whole round.
* Withdrawals bypass the timer unless WRATE is enabled, in which case they
  are held exactly like advertisements.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Set, Tuple

from ..engine import Scheduler, Timer
from .messages import Prefix

DEFAULT_MRAI = 30.0
"""The protocol default of M = 30 seconds."""

DEFAULT_JITTER = (0.75, 1.0)
"""RFC 1771's suggested jitter: the configured value scaled by U[0.75, 1]."""

MRAI_PER_PREFIX = "per-prefix"
"""One timer per (peer, prefix) pair — the paper's model and the default."""

MRAI_PER_PEER = "per-peer"
"""One timer per peer, shared by every prefix."""

MRAI_MODES = frozenset({MRAI_PER_PREFIX, MRAI_PER_PEER})

ExpiryCallback = Callable[[int, Optional[Prefix]], None]
"""``callback(peer, prefix)``; ``prefix`` is ``None`` for a per-peer timer
(the speaker re-derives every prefix toward the peer)."""


class MraiManager:
    """MRAI timers for one speaker, per-(peer, prefix) or per-peer.

    Parameters
    ----------
    scheduler:
        Simulation scheduler the timers run on.
    interval:
        The configured M in seconds.  ``0`` disables rate limiting entirely
        (every ``can_send_now`` is True) — used by ablation experiments.
    jitter:
        ``(low, high)`` multiplicative jitter range applied per arming.
    rng:
        Source for jitter draws (a named stream from the run's
        :class:`~repro.engine.rng.RandomStreams`).
    on_expiry:
        ``callback(peer, prefix)`` invoked when a timer fires; the speaker
        re-evaluates what (if anything) to send to that peer.  In per-peer
        mode ``prefix`` is ``None``.
    mode:
        :data:`MRAI_PER_PREFIX` (default) or :data:`MRAI_PER_PEER`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        jitter: Tuple[float, float],
        rng: random.Random,
        on_expiry: ExpiryCallback,
        mode: str = MRAI_PER_PREFIX,
    ) -> None:
        if interval < 0:
            raise ValueError(f"MRAI interval must be >= 0, got {interval}")
        low, high = jitter
        if not (0 < low <= high):
            raise ValueError(f"jitter range must satisfy 0 < low <= high, got {jitter}")
        if mode not in MRAI_MODES:
            raise ValueError(f"MRAI mode must be one of {sorted(MRAI_MODES)}, got {mode!r}")
        self._scheduler = scheduler
        self._interval = interval
        self._jitter = jitter
        self._rng = rng
        self._on_expiry = on_expiry
        self._mode = mode
        self._timers: Dict[Tuple[int, Optional[Prefix]], Timer] = {}
        # Per-peer flush state: while a peer is in a flush window, sends go
        # through without restarting the shared timer; it is re-armed once
        # at window exit if anything was sent.
        self._flushing: Set[int] = set()
        self._flush_sent: Set[int] = set()

    # ------------------------------------------------------------------

    @property
    def interval(self) -> float:
        """The configured (un-jittered) M value."""
        return self._interval

    @property
    def enabled(self) -> bool:
        return self._interval > 0

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def per_peer(self) -> bool:
        return self._mode == MRAI_PER_PEER

    def _key(self, peer: int, prefix: Prefix) -> Tuple[int, Optional[Prefix]]:
        return (peer, None) if self.per_peer else (peer, prefix)

    def can_send_now(self, peer: int, prefix: Prefix) -> bool:
        """True when no MRAI hold is in effect for ``(peer, prefix)``."""
        if not self.enabled:
            return True
        if self.per_peer and peer in self._flushing:
            return True
        timer = self._timers.get(self._key(peer, prefix))
        return timer is None or not timer.running

    def mark_sent(self, peer: int, prefix: Prefix) -> None:
        """Record that a rate-limited update was just sent; arm the timer."""
        if not self.enabled:
            return
        if self.per_peer and peer in self._flushing:
            self._flush_sent.add(peer)
            return
        self._arm(peer, prefix)

    def _arm(self, peer: int, prefix: Prefix) -> None:
        key = self._key(peer, prefix)
        timer = self._timers.get(key)
        if timer is None:
            if self.per_peer:
                callback = lambda p=peer: self._on_expiry(p, None)  # noqa: E731
                name = f"mrai:{peer}"
            else:
                callback = lambda p=peer, x=prefix: self._on_expiry(p, x)  # noqa: E731
                name = f"mrai:{peer}:{prefix}"
            timer = Timer(self._scheduler, callback=callback, name=name)
            self._timers[key] = timer
        timer.restart(self._draw_interval())

    @contextmanager
    def flush_window(self, peer: int) -> Iterator[None]:
        """Per-peer expiry round: many sends, one re-arming.

        Inside the window every prefix toward ``peer`` may send
        (``can_send_now`` is True); the shared timer is re-armed exactly
        once at exit — and only if something was actually sent, so an empty
        round leaves the peer unthrottled.  A no-op in per-prefix mode.
        """
        if not self.per_peer or not self.enabled:
            yield
            return
        self._flushing.add(peer)
        self._flush_sent.discard(peer)
        try:
            yield
        finally:
            self._flushing.discard(peer)
            if peer in self._flush_sent:
                self._flush_sent.discard(peer)
                self._arm(peer, "")

    def holding(self, peer: int, prefix: Prefix) -> bool:
        """True while updates for the pair are being held by the timer."""
        return not self.can_send_now(peer, prefix)

    def cancel_peer(self, peer: int) -> None:
        """Drop all timers toward ``peer`` (session went down)."""
        self._flushing.discard(peer)
        self._flush_sent.discard(peer)
        for (timer_peer, _prefix), timer in list(self._timers.items()):
            if timer_peer == peer:
                timer.cancel()

    def cancel_all(self) -> None:
        """Drop every timer (the router crashed)."""
        self._flushing.clear()
        self._flush_sent.clear()
        for timer in self._timers.values():
            timer.cancel()

    def active_timers(self) -> int:
        """Number of currently-running timers (diagnostics)."""
        return sum(1 for t in self._timers.values() if t.running)

    # ------------------------------------------------------------------

    def _draw_interval(self) -> float:
        low, high = self._jitter
        return self._interval * self._rng.uniform(low, high)
