"""Journal edge cases beyond the happy recovery path: concurrent
writers, crashes landing *inside* a checkpoint, and a journal whose
directory vanished between runs.

These are the failure modes the sweep service leans on hardest — its
durable queue and per-job trial journals share this exact machinery.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.bgp import BgpConfig
from repro.errors import JournalError
from repro.experiments import (
    RunSettings,
    SweepJournal,
    TrialRecord,
    checkpointed_sweep,
    clique_tdown_trial,
    constant_config,
    factory_ref,
)
from repro.experiments.journal import WriterLock, encode_record

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
MAKE_CONFIG = factory_ref(constant_config, config=FAST)


def ok_record(x, seed):
    return TrialRecord(
        x=x, seed=seed, status="ok", attempt=1, metrics={"updates": 10.0}
    )


class TestTwoWriters:
    def test_second_handle_fails_fast_in_process(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = SweepJournal(path)
        first.append(ok_record(3.0, 0))
        second = SweepJournal(path)
        with pytest.raises(JournalError, match="already has a writer"):
            second.append(ok_record(4.0, 0))
        # The refused writer changed nothing on disk.
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3.0, 0)}
        assert recovery.clean
        first.close()

    def test_second_process_fails_fast(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append(ok_record(3.0, 0))
        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys\n"
                "from repro.errors import JournalError\n"
                "from repro.experiments import SweepJournal, TrialRecord\n"
                "journal = SweepJournal(sys.argv[1])\n"
                "record = TrialRecord(x=9.0, seed=9, status='ok', attempt=1)\n"
                "try:\n"
                "    journal.append(record)\n"
                "except JournalError as exc:\n"
                "    print(exc)\n"
                "    raise SystemExit(17)\n"
                "raise SystemExit(0)\n",
                str(path),
            ],
            env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert probe.returncode == 17, probe.stderr
        assert "already has a writer" in probe.stdout
        journal.close()

    def test_lock_released_on_close_admits_next_writer(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = SweepJournal(path)
        first.append(ok_record(3.0, 0))
        first.close()
        second = SweepJournal(path)
        second.load()
        second.append(ok_record(4.0, 0))
        assert set(second.records) == {(3.0, 0), (4.0, 0)}
        second.close()

    def test_bare_lock_is_reentrant_per_object_not_per_path(self, tmp_path):
        lock = WriterLock(tmp_path / "j.jsonl")
        lock.acquire()
        lock.acquire()  # same object: no-op, not deadlock
        other = WriterLock(tmp_path / "j.jsonl")
        with pytest.raises(JournalError, match="already has a writer"):
            other.acquire()
        lock.release()
        other.acquire()
        other.release()


class TestCrashDuringCheckpoint:
    def test_stale_tmp_from_dead_checkpoint_is_ignored(self, tmp_path):
        """A crash after writing ``.tmp`` but before ``os.replace`` must
        leave the original journal authoritative, and the next checkpoint
        must clobber the stale temp file."""
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append(ok_record(3.0, 0))
        journal.close()

        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(encode_record(ok_record(99.0, 9)) + "\n")

        journal = SweepJournal(path)
        records, recovery = journal.load()
        assert set(records) == {(3.0, 0)}  # the temp file is not the journal
        assert recovery.clean
        journal.append(ok_record(4.0, 0))
        journal.close()  # checkpoints: rewrites and consumes .tmp
        assert not tmp.exists()
        records, _ = SweepJournal(path).load()
        assert set(records) == {(3.0, 0), (4.0, 0)}

    def test_torn_append_then_checkpoint_compacts_clean(self, tmp_path):
        """Killed mid-append: the torn tail survives exactly one load and
        is gone after the next checkpoint."""
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.append(ok_record(3.0, 0))
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write(encode_record(ok_record(4.0, 0))[:-9])

        journal = SweepJournal(path)
        records, recovery = journal.load()
        assert recovery.truncated_tail
        assert set(records) == {(3.0, 0)}
        journal.checkpoint()
        journal.close()

        records, recovery = SweepJournal(path).load()
        assert recovery.clean  # torn line compacted away, record intact
        assert set(records) == {(3.0, 0)}


class TestJournalDirectoryDeleted:
    def test_append_recreates_missing_parent(self, tmp_path):
        nested = tmp_path / "state" / "journals" / "job-1.jsonl"
        journal = SweepJournal(nested)
        journal.append(ok_record(3.0, 0))
        journal.close()

        import shutil

        shutil.rmtree(tmp_path / "state")
        journal = SweepJournal(nested)
        records, recovery = journal.load()
        assert records == {} and recovery.clean  # history is simply gone
        journal.append(ok_record(4.0, 0))
        journal.close()
        records, _ = SweepJournal(nested).load()
        assert set(records) == {(4.0, 0)}

    def test_checkpointed_sweep_restarts_after_dir_deleted(self, tmp_path):
        nested = tmp_path / "state" / "journals" / "job-1.jsonl"

        def run():
            journal = SweepJournal(nested)
            points = checkpointed_sweep(
                [3.0],
                clique_tdown_trial,
                MAKE_CONFIG,
                journal=journal,
                seeds=[0],
                settings=SETTINGS,
                digests=True,
            )
            records = journal.records
            journal.close()
            return points, records

        _, first_records = run()
        assert set(first_records) == {(3.0, 0)}

        import shutil

        shutil.rmtree(tmp_path / "state")
        _, second_records = run()  # restarts from nothing without crashing
        assert set(second_records) == {(3.0, 0)}
        assert first_records[(3.0, 0)].digest  # non-vacuous comparison
        assert (
            second_records[(3.0, 0)].digest == first_records[(3.0, 0)].digest
        )
