"""Unit tests for the epoch-based data-plane evaluator."""

import pytest

from repro.dataplane import CbrSource, EpochEvaluator, FibChangeLog
from repro.errors import AnalysisError

P = "dest"


def make_log(changes):
    log = FibChangeLog()
    for time, node, next_hop in changes:
        log.record(time, node, P, next_hop)
    return log


def evaluator(log, sources, ttl=128, hop_delay=0.002):
    return EpochEvaluator(log, P, sources, ttl=ttl, hop_delay=hop_delay)


class TestStableRouting:
    def test_all_delivered_on_stable_tree(self):
        log = make_log([(0.0, 0, 0), (0.0, 1, 0), (0.0, 2, 1)])
        sources = [CbrSource(node=1, rate=10.0), CbrSource(node=2, rate=10.0)]
        report = evaluator(log, sources).evaluate(0.0, 10.0)
        assert report.packets_sent == 200
        assert report.delivered == 200
        assert report.ttl_exhaustions == 0
        assert report.looping_ratio == 0.0
        assert report.overall_looping_duration == 0.0
        assert report.delivery_ratio == 1.0

    def test_unrouted_source_drops(self):
        log = make_log([(0.0, 0, 0)])
        report = evaluator(log, [CbrSource(node=5, rate=10.0)]).evaluate(0.0, 1.0)
        assert report.dropped_no_route == 10


class TestLoopAccounting:
    def test_loop_epoch_counts_exhaustions(self):
        # 1<->2 loop for t in [0, 5); then 1 -> 0 (delivery) afterwards.
        log = make_log(
            [(0.0, 0, 0), (0.0, 1, 2), (0.0, 2, 1), (5.0, 1, 0)]
        )
        source = CbrSource(node=2, rate=10.0)
        report = evaluator(log, [source]).evaluate(0.0, 10.0)
        assert report.packets_sent == 100
        assert report.ttl_exhaustions == 50   # packets sent in [0, 5)
        assert report.delivered == 50
        assert report.looping_ratio == pytest.approx(0.5)

    def test_exhaustion_timestamps_span_loop_lifetime(self):
        log = make_log(
            [(0.0, 0, 0), (0.0, 1, 2), (0.0, 2, 1), (5.0, 1, 0)]
        )
        source = CbrSource(node=2, rate=10.0)
        report = evaluator(log, [source], ttl=128, hop_delay=0.002).evaluate(0.0, 10.0)
        death_offset = 128 * 0.002
        assert report.first_exhaustion == pytest.approx(0.0 + death_offset)
        assert report.last_exhaustion == pytest.approx(4.9 + death_offset)
        assert report.overall_looping_duration == pytest.approx(4.9)

    def test_loop_sightings_aggregated(self):
        log = make_log(
            [(0.0, 0, 0), (0.0, 1, 2), (0.0, 2, 1), (5.0, 1, 0)]
        )
        sources = [CbrSource(node=1, rate=10.0), CbrSource(node=2, rate=10.0)]
        report = evaluator(log, sources).evaluate(0.0, 10.0)
        loops = report.distinct_loops()
        assert len(loops) == 1
        assert loops[0].cycle == (1, 2)
        assert loops[0].packets_lost == 100
        assert loops[0].size == 2
        assert loops[0].observed_duration > 0

    def test_per_source_exhaustions(self):
        log = make_log([(0.0, 1, 2), (0.0, 2, 1)])
        sources = [CbrSource(node=1, rate=10.0), CbrSource(node=2, rate=5.0)]
        report = evaluator(log, sources).evaluate(0.0, 2.0)
        assert report.per_source_exhaustions == {1: 20, 2: 10}


class TestWindows:
    def test_empty_window_counts_nothing(self):
        log = make_log([(0.0, 1, 2), (0.0, 2, 1)])
        report = evaluator(log, [CbrSource(node=1)]).evaluate(5.0, 5.0)
        assert report.packets_sent == 0
        assert report.looping_ratio == 0.0

    def test_backwards_window_raises(self):
        log = make_log([(0.0, 1, 0)])
        with pytest.raises(AnalysisError):
            evaluator(log, [CbrSource(node=1)]).evaluate(5.0, 1.0)

    def test_no_sources_rejected(self):
        with pytest.raises(AnalysisError):
            evaluator(make_log([]), [])

    def test_counts_respect_window_boundaries(self):
        log = make_log([(0.0, 0, 0), (0.0, 1, 0)])
        report = evaluator(log, [CbrSource(node=1, rate=10.0)]).evaluate(2.0, 3.0)
        assert report.packets_sent == 10
