"""Structured IP-style prefixes over a 32-bit address space.

The simulator historically treats a prefix as an opaque string (``"dest"``)
— one destination per scenario, no overlap semantics.  Multi-prefix
workloads need more: aggregation collapses 2^k *specifics* into one
*covering* prefix, and the data plane must then resolve an address against
whichever of the two a router currently holds — longest-prefix-match.

:class:`PrefixSpec` is the structured view: a ``(value, length)`` pair over
a 32-bit space, serialized canonically as ``"{value:08x}/{length}"`` (e.g.
``"0a000000/8"``).  The string form stays the universal :data:`Prefix`
currency throughout the stack — RIBs, messages, FIB logs — so every
existing code path handles structured prefixes unchanged; only the
components that *need* overlap semantics (LPM resolution in
:mod:`repro.dataplane.fib`, aggregation in :mod:`repro.bgp.aggregation`)
parse them.  Legacy opaque names (``"dest"``) simply fail to parse and are
treated as disjoint host routes that never cover or shadow anything.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigError

ADDRESS_BITS = 32
"""Width of the simulated address space."""

ADDRESS_SPACE = 1 << ADDRESS_BITS

_CANONICAL = re.compile(r"^([0-9a-f]{8})/([0-9]|[12][0-9]|3[0-2])$")


@dataclass(frozen=True, slots=True)
class PrefixSpec:
    """A structured prefix: ``length`` leading bits of ``value`` are fixed.

    ``value`` must have its host bits zero (canonical form), so equal
    prefixes always compare equal and serialize identically.
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= ADDRESS_BITS:
            raise ConfigError(f"prefix length must be in [0, 32]: {self.length}")
        if not 0 <= self.value < ADDRESS_SPACE:
            raise ConfigError(f"prefix value out of range: {self.value:#x}")
        if self.value & self.host_mask:
            raise ConfigError(
                f"prefix {self.value:08x}/{self.length} has non-zero host bits"
            )

    # ------------------------------------------------------------------

    @property
    def network_mask(self) -> int:
        """Bitmask of the fixed (network) bits."""
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (ADDRESS_BITS - self.length)

    @property
    def host_mask(self) -> int:
        """Bitmask of the free (host) bits."""
        return ADDRESS_SPACE - 1 - self.network_mask

    @property
    def size(self) -> int:
        """Number of addresses the prefix covers."""
        return 1 << (ADDRESS_BITS - self.length)

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this prefix."""
        return (address & self.network_mask) == self.value

    def covers(self, other: "PrefixSpec") -> bool:
        """True when ``other`` is equal to or more specific than this."""
        return other.length >= self.length and self.contains(other.value)

    # ------------------------------------------------------------------
    # Aggregation algebra
    # ------------------------------------------------------------------

    def split(self, extra_bits: int = 1) -> List["PrefixSpec"]:
        """The ``2**extra_bits`` specifics partitioning this prefix."""
        if extra_bits < 1:
            raise ConfigError(f"extra_bits must be >= 1, got {extra_bits}")
        new_length = self.length + extra_bits
        if new_length > ADDRESS_BITS:
            raise ConfigError(
                f"cannot split /{self.length} by {extra_bits} bits past /32"
            )
        step = 1 << (ADDRESS_BITS - new_length)
        return [
            PrefixSpec(self.value + index * step, new_length)
            for index in range(1 << extra_bits)
        ]

    def cover(self, fewer_bits: int = 1) -> "PrefixSpec":
        """The covering prefix ``fewer_bits`` shorter than this one."""
        if fewer_bits < 1:
            raise ConfigError(f"fewer_bits must be >= 1, got {fewer_bits}")
        new_length = self.length - fewer_bits
        if new_length < 0:
            raise ConfigError(f"cannot cover /{self.length} by {fewer_bits} bits")
        shorter = PrefixSpec(0, new_length)
        return PrefixSpec(self.value & shorter.network_mask, new_length)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        return f"{self.value:08x}/{self.length}"

    def __repr__(self) -> str:
        return f"PrefixSpec({self!s})"


def format_prefix(value: int, length: int) -> str:
    """The canonical string form of a structured prefix."""
    return str(PrefixSpec(value, length))


def parse_prefix(prefix: str) -> Optional[PrefixSpec]:
    """Parse a canonical prefix string; ``None`` for opaque legacy names.

    Only the canonical serialization produced by :func:`format_prefix` /
    ``str(PrefixSpec)`` parses — eight lowercase hex digits, a slash, a
    decimal length — so round-tripping is exact and accidental collisions
    with scenario names are impossible.
    """
    match = _CANONICAL.match(prefix)
    if match is None:
        return None
    value = int(match.group(1), 16)
    length = int(match.group(2))
    spec = PrefixSpec(value & PrefixSpec(0, length).network_mask if length else 0, length)
    if spec.value != value:
        return None  # non-canonical: host bits set
    return spec


def longest_match(
    prefixes: List[Tuple[PrefixSpec, object]], address: int
) -> Optional[Tuple[PrefixSpec, object]]:
    """Brute-force longest-prefix-match over ``(spec, payload)`` pairs.

    The reference implementation the trie is property-tested against:
    linear scan, most-specific match wins, ties impossible (equal-length
    matching prefixes containing one address are identical).
    """
    best: Optional[Tuple[PrefixSpec, object]] = None
    for spec, payload in prefixes:
        if spec.contains(address) and (best is None or spec.length > best[0].length):
            best = (spec, payload)
    return best


from .trie import RadixTrie  # noqa: E402  (re-export; trie imports the above)

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_SPACE",
    "PrefixSpec",
    "RadixTrie",
    "format_prefix",
    "longest_match",
    "parse_prefix",
]
