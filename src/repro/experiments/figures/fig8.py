"""Figure 8: the four convergence enhancements under Tdown.

Four panels: (a) TTL exhaustions normalized by standard BGP in Cliques,
(b) convergence time in Cliques, (c) TTL exhaustions and (d) convergence
time in Internet-derived topologies.  Expected shape (Observation 3):
Assertion dominates in Cliques (direct neighbors of the origin assert every
backup away at once); Ghost Flushing is best on Internet-derived graphs and
cuts looping by >= 80%; SSLD helps modestly; WRATE is mixed-to-harmful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...bgp import VARIANT_NAMES
from ...core import check_enhancement_ranking
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import clique_tdown_trial, internet_tdown_trial
from .common import normalize_to, variant_comparison_series


def _comparison_figure(
    figure_id: str,
    title: str,
    x_label: str,
    xs: Sequence[int],
    raw: Dict[str, List[float]],
    normalized: bool,
    add_ranking_check: bool,
) -> FigureData:
    shown = raw
    if normalized:
        shown = normalize_to(raw["standard"], raw)
    figure = FigureData(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        xs=[float(x) for x in xs],
        series=shown,
    )
    if add_ranking_check:
        at_largest = {name: values[-1] for name, values in raw.items()}
        figure.checks.extend(check_enhancement_ranking(at_largest))
    return figure


def figure8a(
    sizes: Sequence[int] = (5, 8, 11),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """TTL exhaustions normalized by standard BGP, Tdown in Cliques."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        clique_tdown_trial,
        "ttl_exhaustions",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig8a",
        "Tdown TTL exhaustions normalized by standard BGP (Clique)",
        "clique_size",
        list(sizes),
        raw,
        normalized=True,
        add_ranking_check=True,
    )


def figure8b(
    sizes: Sequence[int] = (5, 8, 11),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Convergence time per variant, Tdown in Cliques."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        clique_tdown_trial,
        "convergence_time",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig8b",
        "Tdown convergence time per variant (Clique)",
        "clique_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=False,
    )


def figure8c(
    sizes: Sequence[int] = (29, 48),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """TTL exhaustions per variant, Tdown in Internet-derived graphs."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        internet_tdown_trial,
        "ttl_exhaustions",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig8c",
        "Tdown TTL exhaustions per variant (Internet-derived)",
        "internet_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=True,
    )


def figure8d(
    sizes: Sequence[int] = (29, 48),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Convergence time per variant, Tdown in Internet-derived graphs."""
    raw = variant_comparison_series(
        [float(s) for s in sizes],
        internet_tdown_trial,
        "convergence_time",
        VARIANT_NAMES,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _comparison_figure(
        "fig8d",
        "Tdown convergence time per variant (Internet-derived)",
        "internet_size",
        list(sizes),
        raw,
        normalized=False,
        add_ranking_check=False,
    )
