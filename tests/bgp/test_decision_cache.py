"""Golden tests: the incremental decision cache matches the naive ranking.

The ranked Adj-RIB-In re-ranks only the changed peer's entry per UPDATE;
``DecisionProcess.select_naive`` re-derives the winner with the original
full scan.  These tests drive both through identical mutation histories —
a scripted churn fuzz and a complete seeded 8-clique Tdown run — and
assert the two selections never diverge, including under a ``usable``
filter (damping suppression) and local origination tie-breaks.
"""

import random

from repro.bgp import AsPath, BgpConfig
from repro.bgp.decision import DecisionProcess
from repro.bgp.policy import ShortestPathPolicy
from repro.bgp.rib import AdjRibIn
from repro.bgp.route import Route
from repro.experiments import RunSettings
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import tdown_clique

PREFIXES = ("d0", "d1")
NEIGHBORS = tuple(range(1, 7))


def make_route(rng, neighbor, prefix):
    tail = rng.sample(range(100, 120), rng.randint(0, 4))
    return Route(
        prefix=prefix, path=AsPath.of((neighbor, *tail)), next_hop=neighbor
    )


class TestRankedMatchesNaiveUnderChurn:
    def _churn(self, usable=None):
        rng = random.Random(20260806)
        policy = ShortestPathPolicy()
        decision = DecisionProcess(policy)
        ranked = AdjRibIn(preference_key=policy.preference_key)
        naive = AdjRibIn()
        assert ranked.ranked and not naive.ranked
        for _ in range(400):
            roll = rng.random()
            neighbor = rng.choice(NEIGHBORS)
            prefix = rng.choice(PREFIXES)
            if roll < 0.6:
                route = make_route(rng, neighbor, prefix)
                ranked.put(neighbor, route)
                naive.put(neighbor, route)
            elif roll < 0.85:
                assert ranked.remove(neighbor, prefix) == naive.remove(
                    neighbor, prefix
                )
            else:
                assert ranked.drop_neighbor(neighbor) == naive.drop_neighbor(
                    neighbor
                )
            for check_prefix in PREFIXES:
                for originated in (False, True):
                    cached = decision.select(
                        check_prefix, ranked, originated, usable
                    )
                    reference = decision.select_naive(
                        check_prefix, naive, originated, usable
                    )
                    assert cached == reference
        assert len(ranked) == len(naive)

    def test_plain_selection(self):
        self._churn()

    def test_selection_under_usable_filter(self):
        # Mimics damping suppression: odd next hops are ineligible but
        # stay stored, so the ranked fast path must skip, not drop, them.
        self._churn(usable=lambda route: route.next_hop % 2 == 0)

    def test_replacement_reranks_single_entry(self):
        policy = ShortestPathPolicy()
        rib = AdjRibIn(preference_key=policy.preference_key)
        long_route = Route(
            prefix="d0", path=AsPath.of((1, 101, 102)), next_hop=1
        )
        short_route = Route(prefix="d0", path=AsPath.of((2, 101)), next_hop=2)
        rib.put(1, long_route)
        rib.put(2, short_route)
        assert rib.best("d0") == short_route
        # Peer 1 improves: replacement must displace the old entry, not
        # accumulate beside it.
        better = Route(prefix="d0", path=AsPath.of((1,)), next_hop=1)
        rib.put(1, better)
        assert rib.best("d0") == better
        assert len(rib) == 2
        rib.remove(1, "d0")
        assert rib.best("d0") == short_route

    def test_neighbor_tie_break_matches_first_encountered_min(self):
        policy = ShortestPathPolicy()
        decision = DecisionProcess(policy)
        ranked = AdjRibIn(preference_key=policy.preference_key)
        naive = AdjRibIn()
        # Identical preference keys (same hop count differs only in next
        # hop rank... make them truly tie: same length, next_hop differs,
        # so preference_key differs by next_hop_rank and the smaller
        # neighbor must win in both).
        for neighbor in (5, 3, 4):
            route = Route(
                prefix="d0", path=AsPath.of((neighbor, 100)), next_hop=neighbor
            )
            ranked.put(neighbor, route)
            naive.put(neighbor, route)
        cached = decision.select("d0", ranked, originated=False)
        reference = decision.select_naive("d0", naive, originated=False)
        assert cached == reference
        assert cached.next_hop == 3


class TestEightCliqueGolden:
    def test_seeded_tdown_run_cache_matches_naive(self):
        # sanitize=True cross-checks cached-vs-naive at every decision the
        # run makes (RibCoherenceSanitizer); the post-run sweep below then
        # re-verifies the final RIB state speaker by speaker.
        run = run_experiment(
            tdown_clique(8),
            BgpConfig(mrai=2.0),
            RunSettings(sanitize=True),
            seed=0,
            keep_network=True,
        )
        assert run.converged
        network = run.network
        prefix = run.scenario.prefix
        for node_id in sorted(network.nodes):
            speaker = network.nodes[node_id]
            assert speaker._select_best(prefix) == speaker._select_best_naive(
                prefix
            )
            speaker.check_invariants()
