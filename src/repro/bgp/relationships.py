"""Gao-Rexford business relationships and the valley-free policy.

The paper's experiments use plain shortest-path routing, but real
inter-domain routing is governed by AS business relationships: an AS pays
its **providers**, is paid by its **customers**, and settlement-free
**peers** exchange only their own/customer routes.  Gao & Rexford showed
that the standard export rules below guarantee BGP convergence to stable,
*valley-free* routes — which makes this policy the natural realistic
counterpart to the paper's shortest-path baseline, and a good stress of the
library's policy hooks.

Rules implemented by :class:`GaoRexfordPolicy`:

* **Preference** — customer routes over peer routes over provider routes
  (you earn on the first, pay on the last); ties fall back to shortest
  path, then smallest next hop.
* **Export** — your own and your customers' routes go to everyone; routes
  learned from peers or providers go to customers only.

:func:`relationships_from_tiers` derives a relationship assignment from the
synthetic Internet generator's core/transit/stub tiers, and
:func:`is_valley_free` checks the classic path shape (uphill, at most one
peering step, downhill) used by the test suite to validate convergence
outcomes.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence

from ..errors import ConfigError, ProtocolError
from ..topology import Topology
from ..topology.internet import Tier
from .policy import RoutingPolicy
from .route import Route


class Relationship(enum.Enum):
    """The local AS's view of one neighbor."""

    CUSTOMER = "customer"   # the neighbor pays us
    PEER = "peer"           # settlement-free
    PROVIDER = "provider"   # we pay the neighbor


#: LOCAL_PREF bands implementing "prefer customer > peer > provider".
RELATIONSHIP_LOCAL_PREF = {
    Relationship.CUSTOMER: 300,
    Relationship.PEER: 200,
    Relationship.PROVIDER: 100,
}


class GaoRexfordPolicy(RoutingPolicy):
    """The canonical economically-rational routing policy.

    Parameters
    ----------
    relationships:
        ``{neighbor_id: Relationship}`` from this AS's perspective.  Every
        neighbor the speaker ever hears from or exports to must be present;
        unknown neighbors raise :class:`ProtocolError` (a missing entry is
        a configuration bug, not a default).
    """

    def __init__(self, relationships: Dict[int, Relationship]) -> None:
        self._relationships = dict(relationships)

    def relationship(self, neighbor: int) -> Relationship:
        try:
            return self._relationships[neighbor]
        except KeyError:
            raise ProtocolError(
                f"no business relationship configured for neighbor {neighbor}"
            ) from None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def local_pref(self, neighbor: int, route: Route) -> int:
        return RELATIONSHIP_LOCAL_PREF[self.relationship(neighbor)]

    def accept_export(self, neighbor: int, route: Route) -> bool:
        """Own + customer routes to everyone; peer/provider routes to
        customers only."""
        if route.is_local:
            return True
        assert route.next_hop is not None
        learned_from = self.relationship(route.next_hop)
        if learned_from is Relationship.CUSTOMER:
            return True
        return self.relationship(neighbor) is Relationship.CUSTOMER


def relationships_from_tiers(
    topo: Topology, tiers: Dict[int, str]
) -> Dict[int, Dict[int, Relationship]]:
    """Derive per-node relationship maps from a tier assignment.

    Orientation rules mirror how the synthetic generator wires the graph:

    * different tiers — the hierarchically higher AS (core > transit >
      stub) is the provider;
    * core-core — settlement-free peering (the tier-1 full mesh);
    * transit-transit — the generator chains later transit ASes under
      earlier ones, so the smaller id is the provider;
    * stub-stub — does not occur in generated graphs, treated as peering.
    """
    result: Dict[int, Dict[int, Relationship]] = {node: {} for node in topo.nodes}
    for u, v, _delay in topo.edges():
        try:
            rank_u, rank_v = Tier.RANK[tiers[u]], Tier.RANK[tiers[v]]
        except KeyError as exc:
            raise ConfigError(f"node missing from tier map: {exc}") from None
        if rank_u == rank_v:
            if tiers[u] == Tier.TRANSIT:
                provider, customer = (u, v) if u < v else (v, u)
                result[provider][customer] = Relationship.CUSTOMER
                result[customer][provider] = Relationship.PROVIDER
            else:
                result[u][v] = Relationship.PEER
                result[v][u] = Relationship.PEER
        else:
            provider, customer = (u, v) if rank_u < rank_v else (v, u)
            result[provider][customer] = Relationship.CUSTOMER
            result[customer][provider] = Relationship.PROVIDER
    return result


def is_valley_free(
    nodes_from_self_to_origin: Sequence[int],
    relationships: Dict[int, Dict[int, Relationship]],
) -> bool:
    """Check the Gao-Rexford path shape.

    ``nodes_from_self_to_origin`` is a node path in the paper's notation —
    the owning AS first, the origin last (what
    :meth:`BgpSpeaker.full_path` returns).  Reading the *announcement*
    direction (origin outward), a valid path climbs customer→provider
    edges, crosses at most one peering edge, then descends
    provider→customer — no "valleys" (provider→customer followed by an
    ascent) and no double peering.
    """
    announce_order: List[int] = list(reversed(nodes_from_self_to_origin))
    phase = "up"
    for sender, receiver in zip(announce_order, announce_order[1:]):
        rel = relationships[receiver][sender]  # the receiver's view of sender
        if rel is Relationship.CUSTOMER:
            step = "up"          # announcement climbed to a provider
        elif rel is Relationship.PEER:
            step = "peer"
        else:
            step = "down"        # announcement descended to a customer
        if step == "up":
            if phase != "up":
                return False     # an ascent after the peak: a valley
        elif step == "peer":
            if phase != "up":
                return False     # second peering edge (or peer after down)
            phase = "peered"
        else:
            phase = "down"
    return True
