"""Control-plane message tracing.

Every message handed to the network layer is recorded as a
:class:`TraceRecord`.  The trace is how the study's headline metric is
measured: *convergence time ends when the last BGP update message is sent*.
Keeping the trace in the network layer (rather than inside each protocol)
means all protocol variants are measured identically.

Per-kind tallies are maintained incrementally on record: figure drivers
and the telemetry layer ask "how many Announcements?" once per trial per
kind, and rescanning a hundred-thousand-record trace for each answer was
a measurable fraction of sweep time.  :meth:`MessageTrace.count_kind`
and :meth:`MessageTrace.kind_counts` are O(1)/O(kinds); the predicate
forms keep their general (linear) behavior for arbitrary filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One control-plane message send."""

    time: float
    src: int
    dst: int
    message: Any

    @property
    def kind(self) -> str:
        """The message's class name, e.g. ``Announcement`` or ``Withdrawal``."""
        return type(self.message).__name__


Predicate = Callable[[TraceRecord], bool]


class MessageTrace:
    """An append-only log of message sends with simple query helpers."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._kind_counts: Dict[str, int] = {}

    def record(self, time: float, src: int, dst: int, message: Any) -> None:
        """Append one send; called by the network layer only."""
        self._records.append(TraceRecord(time, src, dst, message))
        kind = type(message).__name__
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, predicate: Optional[Predicate] = None) -> List[TraceRecord]:
        """All records, optionally filtered."""
        if predicate is None:
            return list(self._records)
        return [r for r in self._records if predicate(r)]

    def count(
        self, predicate: Optional[Predicate] = None, kind: Optional[str] = None
    ) -> int:
        """Number of records matching ``predicate`` (all when ``None``).

        ``kind`` answers the common "how many Announcements?" question from
        the incremental tally in O(1) instead of scanning; it is mutually
        exclusive with ``predicate``.
        """
        if kind is not None:
            if predicate is not None:
                raise ValueError("pass either predicate or kind, not both")
            return self._kind_counts.get(kind, 0)
        if predicate is None:
            return len(self._records)
        return sum(1 for r in self._records if predicate(r))

    def count_kind(self, kind: str) -> int:
        """Messages of class-name ``kind`` recorded so far (O(1))."""
        return self._kind_counts.get(kind, 0)

    def kind_counts(self) -> Dict[str, int]:
        """Per-kind tallies, sorted by kind name (copy).

        This is the view the telemetry layer lifts into
        ``trace.messages.<Kind>`` counters after a run.
        """
        return {kind: self._kind_counts[kind] for kind in sorted(self._kind_counts)}

    def first_time(self, predicate: Optional[Predicate] = None) -> Optional[float]:
        """Timestamp of the first matching record, or ``None``."""
        for record in self._records:
            if predicate is None or predicate(record):
                return record.time
        return None

    def last_time(self, predicate: Optional[Predicate] = None) -> Optional[float]:
        """Timestamp of the last matching record, or ``None``.

        This is the measurement point for convergence time: with a predicate
        selecting BGP updates sent after the failure, the result is "the time
        the last update message is sent".
        """
        for record in reversed(self._records):
            if predicate is None or predicate(record):
                return record.time
        return None

    def since(self, time: float) -> List[TraceRecord]:
        """Records with timestamp >= ``time``."""
        return [r for r in self._records if r.time >= time]

    def clear(self) -> None:
        """Drop all records and tallies (e.g. after warm-up convergence)."""
        self._records.clear()
        self._kind_counts.clear()
