"""Blocking client for the sweep service daemon.

Deliberately synchronous: CLI verbs and tests talk to the daemon with
plain sockets and a line-buffered reader, no event loop required on the
client side.  One request per connection, mirroring the protocol's
contract.

Failure mapping: a missing socket, a connection refusal (daemon died but
the socket file lingers), and an ``{"ok": false}`` reply all surface as
:class:`~repro.errors.ServiceError` with the daemon's message — callers
handle exactly one exception type.
"""

from __future__ import annotations

import socket
from typing import Dict, Iterator, List, Optional

from ..errors import ServiceError
from .protocol import MAX_LINE, decode, encode
from .state import ServiceState


class ServiceClient:
    """Talks to the daemon serving one state directory."""

    def __init__(self, state_dir, timeout: Optional[float] = 60.0) -> None:
        self.state = ServiceState(state_dir)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        path = self.state.require_socket()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(path))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot connect to service daemon at {path}: {exc}"
            ) from exc
        return sock

    @staticmethod
    def _read_line(stream) -> bytes:
        line = stream.readline(MAX_LINE + 1)
        if not line:
            raise ServiceError("service daemon closed the connection")
        if len(line) > MAX_LINE:
            raise ServiceError("service daemon reply exceeded the line limit")
        return line

    @staticmethod
    def _checked(reply: Dict) -> Dict:
        if not reply.get("ok", False):
            raise ServiceError(
                reply.get("error", "service daemon refused the request")
            )
        return reply

    def request(self, message: Dict) -> Dict:
        """One request, one reply.  Raises :class:`ServiceError` on refusal."""
        sock = self._connect()
        try:
            sock.sendall(encode(message))
            with sock.makefile("rb") as stream:
                return self._checked(decode(self._read_line(stream)))
        except socket.timeout as exc:
            raise ServiceError(
                f"service daemon did not reply within {self.timeout}s"
            ) from exc
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def ping(self) -> Dict:
        return self.request({"op": "ping"})

    def submit(self, spec: Dict) -> str:
        """Submit a job spec; returns the assigned job id."""
        return self.request({"op": "submit", "spec": spec})["job"]

    def jobs(self) -> List[Dict]:
        return self.request({"op": "jobs"})["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self.request({"op": "cancel", "job": job_id})

    def shutdown(self) -> Dict:
        return self.request({"op": "shutdown"})

    def watch(self, job_id: str) -> Iterator[Dict]:
        """Yield the job's event stream until its terminal ``end`` event.

        The generator owns the connection; breaking out of the loop (or
        closing the generator) closes it.  Watching uses no timeout —
        a long quiet stretch mid-sweep is normal.
        """
        sock = self._connect()
        sock.settimeout(None)
        try:
            sock.sendall(encode({"op": "watch", "job": job_id}))
            with sock.makefile("rb") as stream:
                self._checked(decode(self._read_line(stream)))
                while True:
                    event = decode(self._read_line(stream))
                    yield event
                    if event.get("event") == "end":
                        return
        finally:
            sock.close()
