"""Property-based tests for forwarding graphs, walks, and traffic."""

from hypothesis import given, strategies as st

from repro.core import find_loops, nodes_in_loops
from repro.dataplane import CbrSource, ForwardingGraph, PacketFate, walk

NODES = list(range(10))

functional_graphs = st.dictionaries(
    keys=st.sampled_from(NODES),
    values=st.one_of(st.none(), st.sampled_from(NODES)),
    max_size=10,
)


@given(functional_graphs, st.sampled_from(NODES))
def test_walk_fates_are_consistent(mapping, source):
    graph = ForwardingGraph(mapping)
    result = walk(graph, source, ttl=64)
    if result.fate is PacketFate.DELIVERED:
        assert result.hops <= 64
        assert not result.looped
    elif result.fate is PacketFate.DROPPED_NO_ROUTE:
        assert not result.looped
    else:
        assert result.hops == 64
        # In a <=10-node graph a 64-hop walk must have entered a cycle, and
        # the reported cycle must be a genuine forwarding cycle.
        assert result.loop is not None
        cycle = result.loop
        for index, node in enumerate(cycle):
            assert graph.next_hop(node) == cycle[(index + 1) % len(cycle)]


@given(functional_graphs)
def test_find_loops_returns_all_and_only_cycles(mapping):
    graph = ForwardingGraph(mapping)
    loops = find_loops(graph)
    # Only: every reported loop is a genuine forwarding cycle.
    for cycle in loops:
        for index, node in enumerate(cycle):
            assert graph.next_hop(node) == cycle[(index + 1) % len(cycle)]
        assert len(set(cycle)) == len(cycle)
    # All: any node whose long walk revisits must be covered by some loop.
    members = set(nodes_in_loops(graph))
    for source in mapping:
        result = walk(graph, source, ttl=64)
        if result.loop is not None:
            assert set(result.loop) <= members | set(result.loop)
            assert any(set(result.loop) == set(cycle) for cycle in loops)


@given(functional_graphs)
def test_loops_are_disjoint(mapping):
    graph = ForwardingGraph(mapping)
    seen = set()
    for cycle in find_loops(graph):
        assert not (seen & set(cycle))
        seen |= set(cycle)


@given(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
)
def test_cbr_count_is_additive_over_adjacent_windows(rate, start, a, b, c):
    source = CbrSource(node=1, rate=rate, start=start)
    lo, mid, hi = sorted([a, b, c])
    assert source.count_in(lo, mid) + source.count_in(mid, hi) == source.count_in(
        lo, hi
    )


@given(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_cbr_times_match_count_and_stay_in_window(rate, start, t0, width):
    source = CbrSource(node=1, rate=rate, start=start)
    t1 = t0 + width
    times = list(source.times_in(t0, t1))
    assert len(times) == source.count_in(t0, t1)
    # Tolerance: first_index_at_or_after guards float error with a 1e-12
    # index-space epsilon, so boundary times may be off by ~1e-12 / rate.
    slack = 1e-9
    assert all(t0 - slack <= t < t1 + slack for t in times)
    assert times == sorted(times)
