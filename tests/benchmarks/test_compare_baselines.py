"""The baseline gate: ``compare_baselines.py`` report shapes, table
rendering, and the exit-code contract (0 ok / 1 regressed / 2 bad input)
that CI and the sweep service script against."""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

from compare_baselines import (
    EXIT_BAD_INPUT,
    EXIT_OK,
    EXIT_REGRESSED,
    ComparisonError,
    compare_documents,
    load,
    main,
    render_table,
)


def document(**walls) -> dict:
    return {
        "schema": 1,
        "results": {
            name: {
                "wall_clock_s": wall,
                "updates": 100,
                "updates_per_s": 100 / wall,
            }
            for name, wall in walls.items()
        },
    }


class TestCompareDocuments:
    def test_identical_documents_pass(self):
        report = compare_documents(document(a=0.1, b=0.2), document(a=0.1, b=0.2))
        assert report["ok"] is True
        assert report["regressions"] == 0
        assert report["schema_match"] is True
        assert [s["status"] for s in report["scenarios"]] == ["ok", "ok"]

    def test_growth_within_tolerance_passes(self):
        report = compare_documents(document(a=0.100), document(a=0.120))
        assert report["ok"] and report["scenarios"][0]["ratio"] == pytest.approx(1.2)

    def test_growth_beyond_tolerance_regresses(self):
        report = compare_documents(document(a=0.1), document(a=0.2))
        [scenario] = report["scenarios"]
        assert scenario["status"] == "regressed"
        assert report["regressions"] == 1 and not report["ok"]

    def test_speedup_passes(self):
        report = compare_documents(document(a=0.2), document(a=0.05))
        assert report["ok"]

    def test_missing_scenario_regresses(self):
        report = compare_documents(document(a=0.1, b=0.1), document(a=0.1))
        missing = [s for s in report["scenarios"] if s["status"] == "missing"]
        assert [s["name"] for s in missing] == ["b"]
        assert report["regressions"] == 1

    def test_extra_candidate_scenario_ignored(self):
        report = compare_documents(document(a=0.1), document(a=0.1, b=9.9))
        assert report["ok"] and len(report["scenarios"]) == 1

    def test_custom_tolerance(self):
        loose = compare_documents(document(a=0.1), document(a=0.18), tolerance=1.0)
        assert loose["ok"]
        strict = compare_documents(document(a=0.1), document(a=0.12), tolerance=0.1)
        assert not strict["ok"]

    def test_schema_mismatch_flagged_not_fatal(self):
        candidate = document(a=0.1)
        candidate["schema"] = 2
        report = compare_documents(document(a=0.1), candidate)
        assert report["ok"] and report["schema_match"] is False


class TestLoad:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ComparisonError, match="does not exist"):
            load(tmp_path / "absent.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ComparisonError, match="not valid JSON"):
            load(path)

    def test_no_results_mapping(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"schema": 1, "results": [1, 2]}))
        with pytest.raises(ComparisonError, match="results"):
            load(path)


class TestRenderTable:
    def test_mentions_every_scenario_and_verdict(self):
        report = compare_documents(
            document(fast=0.1, slow=0.1, gone=0.1),
            document(fast=0.1, slow=0.9),
        )
        table = render_table(report)
        assert "fast" in table and "ok" in table
        assert "slow" in table and "REGRESSED" in table
        assert "gone" in table and "MISSING" in table


class TestMainExitCodes:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", document(a=0.1))
        cand = self.write(tmp_path, "cand.json", document(a=0.1))
        assert main([base, cand]) == EXIT_OK
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", document(a=0.1))
        cand = self.write(tmp_path, "cand.json", document(a=0.9))
        assert main([base, cand]) == EXIT_REGRESSED
        assert "regressed" in capsys.readouterr().err

    def test_bad_input_exit_two(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", document(a=0.1))
        assert main([base, str(tmp_path / "absent.json")]) == EXIT_BAD_INPUT
        assert "error:" in capsys.readouterr().err

    def test_json_format_parses_and_matches_library(self, tmp_path, capsys):
        base_doc, cand_doc = document(a=0.1), document(a=0.9)
        base = self.write(tmp_path, "base.json", base_doc)
        cand = self.write(tmp_path, "cand.json", cand_doc)
        code = main([base, cand, "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == EXIT_REGRESSED
        assert report == compare_documents(base_doc, cand_doc)

    def test_tolerance_flag(self, tmp_path):
        base = self.write(tmp_path, "base.json", document(a=0.1))
        cand = self.write(tmp_path, "cand.json", document(a=0.18))
        assert main([base, cand, "--tolerance", "1.0"]) == EXIT_OK
