"""The benchmark journal shim: interrupted sweeps must resume, not restart.

``benchmarks/_support.checkpointed_sweep`` is now a thin wrapper over the
library's crash-safe journal (``repro.experiments.checkpointed_sweep``,
one CRC-framed JSON line per finished *trial*); these tests drive the
shim against real (tiny) sweeps and assert that a rerun only executes
the missing ``(x, seed)`` pairs, that torn and corrupt journal lines are
tolerated, and that an all-failed point reports ``metrics == {}``
instead of wedging the resume loop.
"""

import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

from _support import (
    PointRecord,
    checkpointed_sweep,
    load_point_journal,
    point_journal_path,
)

from repro.bgp import BgpConfig
from repro.experiments import RunSettings, constant_config, factory_ref
from repro.experiments.journal import (
    TrialRecord,
    encode_record,
    summarize_point,
)
from repro.experiments.scenarios import clique_tdown_trial

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
#: Budget that kills a 6-clique but lets a 3-clique finish (see
#: tests/experiments/test_parallel_sweep.py for the calibration).
TIGHT = RunSettings(failure_guard=0.5, event_budget=200)

MAKE_CONFIG = factory_ref(constant_config, config=FAST)


def journal_lines(path):
    return [
        line for line in path.read_text(encoding="utf-8").splitlines() if line
    ]


class TestCheckpointedSweep:
    def test_trials_journal_as_they_finish(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert all(r.succeeded == 1 and r.failed == 0 for r in records)
        # One line per (x, seed) trial.
        assert len(journal_lines(journal)) == 2

    def test_default_path_is_named_trials_journal(self):
        assert point_journal_path("abc").name == "abc.trials.jsonl"

    def test_interrupted_run_resumes_without_repeating(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        # "Interrupt": the first invocation only got through x=3.
        first = checkpointed_sweep(
            "unused",
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        resumed = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in resumed] == [3, 4]
        # x=3 was loaded from the journal, byte-identical to the first run.
        assert resumed[0] == first[0]
        # Only one new trial line was appended (x=4); x=3 was not re-run.
        assert len(journal_lines(journal)) == 2

    def test_resume_skips_completed_x_entirely(self, tmp_path, monkeypatch):
        journal = tmp_path / "sweep.trials.jsonl"
        checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )

        # With every trial journaled, a rerun must not call sweep at all.
        # The library resolves ``sweep`` lazily from its defining module
        # (the package attribute is shadowed by the function itself).
        def exploding_sweep(*args, **kwargs):
            raise AssertionError("sweep re-executed a completed point")

        monkeypatch.setattr(
            sys.modules["repro.experiments.sweep"],
            "sweep",
            exploding_sweep,
            raising=True,
        )
        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert all(r.metrics["convergence_time"] > 0 for r in records)

    def test_fresh_discards_the_journal(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        bogus = TrialRecord(
            x=3, seed=0, status="ok", metrics={"convergence_time": -1.0}
        )
        journal.write_text(encode_record(bogus) + "\n", encoding="utf-8")
        records = checkpointed_sweep(
            "unused",
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
            fresh=True,
        )
        # The bogus journaled metrics are gone; the trial was re-run.
        assert records[0].succeeded == 1
        assert records[0].metrics["convergence_time"] > 0

    def test_torn_final_line_is_skipped_and_rerun(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        good = checkpointed_sweep(
            "unused",
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )[0]
        # The interrupt arrived mid-write: the x=4 trial line is torn.
        torn = encode_record(
            TrialRecord(x=4, seed=0, status="ok", metrics={"a": 1.0})
        )[:-9]
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(torn)
        completed = load_point_journal(journal)
        assert set(completed) == {3}

        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert records[0] == good  # loaded, not re-run
        assert records[1].succeeded == 1  # re-run despite the torn line
        assert records[1].metrics["convergence_time"] > 0

    def test_corrupt_midfile_line_is_skipped_and_rerun(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        # Flip a byte inside the first record's body: CRC now mismatches.
        lines = journal_lines(journal)
        lines[0] = lines[0].replace('"seed":0', '"seed":9', 1)
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert set(load_point_journal(journal)) == {4}

        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert all(r.succeeded == 1 for r in records)

    def test_all_failed_point_journals_empty_metrics(self, tmp_path):
        journal = tmp_path / "sweep.trials.jsonl"
        records = checkpointed_sweep(
            "unused",
            [6],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=TIGHT,
            path=journal,
        )
        assert records[0].failed == 1
        assert records[0].succeeded == 0
        assert records[0].metrics == {}
        # And the journaled failure is a valid record a resume can load.
        reloaded = load_point_journal(journal)
        assert reloaded[6].metrics == {}
        assert reloaded[6].failed == 1


class TestPointRecordAggregation:
    def test_from_summary_copies_fields(self):
        trials = [
            TrialRecord(x=5.0, seed=0, status="ok", metrics={"u": 10.0}),
            TrialRecord(x=5.0, seed=1, status="ok", metrics={"u": 30.0}),
            TrialRecord(x=5.0, seed=2, status="failed", error="boom"),
        ]
        record = PointRecord.from_summary(summarize_point(5.0, trials))
        assert record == PointRecord(
            x=5.0, succeeded=2, failed=1, metrics={"u": 20.0}
        )

    def test_metrics_is_a_plain_mutable_dict(self):
        trials = [TrialRecord(x=1.0, seed=0, status="ok", metrics={"u": 1.0})]
        record = PointRecord.from_summary(summarize_point(1.0, trials))
        record.metrics["extra"] = 2.0  # table-rendering code mutates these
        assert record.metrics == {"u": 1.0, "extra": 2.0}
