"""The data plane: FIB history, traffic, and packet-fate evaluation.

Two evaluation paths produce the same :class:`DataPlaneReport`:

* :class:`EpochEvaluator` — fast, post-hoc, exact under the paper's
  quasi-static parameters (use for sweeps),
* :class:`PacketForwarder` — event-driven ground truth (use for validation
  and small scenarios).
"""

from .epochs import DataPlaneReport, EpochEvaluator, LoopSighting
from .fib import (
    FibChange,
    FibChangeLog,
    ForwardingGraph,
    MultiPrefixFib,
    PrefixTrie,
)
from .packet import (
    DEFAULT_TTL,
    PacketFate,
    WalkResult,
    canonical_cycle,
    walk,
    walk_lpm,
)
from .traffic import (
    DEFAULT_PACKET_RATE,
    CbrSource,
    Flow,
    TrafficMatrix,
    sources_for,
)
from .traffic_eval import TrafficMatrixEvaluator, TrafficReport
from .trajectory import FibLookup, PacketForwarder

__all__ = [
    "CbrSource",
    "DEFAULT_PACKET_RATE",
    "DEFAULT_TTL",
    "DataPlaneReport",
    "EpochEvaluator",
    "FibChange",
    "FibChangeLog",
    "FibLookup",
    "Flow",
    "ForwardingGraph",
    "LoopSighting",
    "MultiPrefixFib",
    "PacketFate",
    "PacketForwarder",
    "PrefixTrie",
    "TrafficMatrix",
    "TrafficMatrixEvaluator",
    "TrafficReport",
    "WalkResult",
    "canonical_cycle",
    "sources_for",
    "walk",
    "walk_lpm",
]
