"""Experiment harness: scenarios, single runs, sweeps, figures, reports."""

from .config import RunSettings
from .report import FigureData, run_summary_table
from .runner import ExperimentRun, build_network, run_experiment
from .scenarios import (
    DEFAULT_PREFIX,
    EventKind,
    Scenario,
    custom_tdown,
    custom_tlong,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
    tlong_internet,
)
from .sweep import SweepPoint, series, sweep, xs_of

__all__ = [
    "DEFAULT_PREFIX",
    "EventKind",
    "ExperimentRun",
    "FigureData",
    "RunSettings",
    "Scenario",
    "SweepPoint",
    "build_network",
    "custom_tdown",
    "custom_tlong",
    "run_experiment",
    "run_summary_table",
    "series",
    "sweep",
    "tdown_clique",
    "tdown_internet",
    "tlong_bclique",
    "tlong_internet",
    "xs_of",
]
