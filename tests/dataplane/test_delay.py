"""Tests for delivered-hop (delay) tracking in both data-plane engines."""

import pytest

from repro.dataplane import (
    CbrSource,
    DataPlaneReport,
    EpochEvaluator,
    FibChangeLog,
    PacketForwarder,
)
from repro.topology import chain

P = "dest"


class TestReportAccounting:
    def test_record_delivery_accumulates(self):
        report = DataPlaneReport(window=(0.0, 1.0))
        report.record_delivery(hops=2, count=3)
        report.record_delivery(hops=5)
        assert report.delivered == 4
        assert report.delivered_hops == {2: 3, 5: 1}
        assert report.mean_delivered_hops == pytest.approx((2 * 3 + 5) / 4)
        assert report.max_delivered_hops() == 5

    def test_empty_report(self):
        report = DataPlaneReport(window=(0.0, 1.0))
        assert report.mean_delivered_hops == 0.0
        assert report.max_delivered_hops() == 0


class TestEpochEvaluatorHops:
    def test_hop_counts_match_path_lengths(self):
        log = FibChangeLog()
        log.record(0.0, 0, P, 0)
        log.record(0.0, 1, P, 0)
        log.record(0.0, 2, P, 1)
        sources = [CbrSource(node=1, rate=10.0), CbrSource(node=2, rate=10.0)]
        report = EpochEvaluator(log, P, sources).evaluate(0.0, 1.0)
        assert report.delivered_hops == {1: 10, 2: 10}
        assert report.mean_delivered_hops == pytest.approx(1.5)

    def test_detour_epoch_raises_mean_hops(self):
        """First epoch routes 1 the long way round; second directly."""
        log = FibChangeLog()
        log.record(0.0, 0, P, 0)
        log.record(0.0, 1, P, 2)
        log.record(0.0, 2, P, 3)
        log.record(0.0, 3, P, 0)
        log.record(5.0, 1, P, 0)
        source = [CbrSource(node=1, rate=10.0)]
        detour = EpochEvaluator(log, P, source).evaluate(0.0, 5.0)
        direct = EpochEvaluator(log, P, source).evaluate(5.0, 10.0)
        assert detour.mean_delivered_hops == pytest.approx(3.0)
        assert direct.mean_delivered_hops == pytest.approx(1.0)

    def test_hops_conservation(self):
        log = FibChangeLog()
        log.record(0.0, 0, P, 0)
        log.record(0.0, 1, P, 0)
        report = EpochEvaluator(log, P, [CbrSource(node=1, rate=7.0)]).evaluate(
            0.0, 3.0
        )
        assert sum(report.delivered_hops.values()) == report.delivered


class TestForwarderHops:
    def test_event_driven_hop_counts(self, scheduler):
        topo = chain(4)
        fib = {0: 0, 1: 0, 2: 1, 3: 2}
        forwarder = PacketForwarder(scheduler, topo, fib.get, ttl=16)
        forwarder.launch([CbrSource(node=3, rate=5.0)], 0.0, 1.0)
        scheduler.run()
        assert forwarder.report.delivered_hops == {3: 5}
        assert forwarder.report.mean_delivered_hops == pytest.approx(3.0)

    def test_mid_flight_redirection_counts_actual_hops(self, scheduler):
        """A packet redirected mid-flight logs the hops it really took."""
        topo = chain(3)
        fib = {0: 0, 1: None, 2: 1}
        forwarder = PacketForwarder(scheduler, topo, lambda n: fib.get(n), ttl=16)
        forwarder.launch([CbrSource(node=2, rate=1.0)], 0.0, 1.0)
        scheduler.call_at(0.001, lambda: fib.__setitem__(1, 0))
        scheduler.run()
        assert forwarder.report.delivered_hops == {2: 1}
