"""Tests for session re-establishment: ConnectRetry, OPEN handshake, crashes."""

import pytest

from repro.bgp import BgpConfig, BgpSpeaker, Open, SessionManager
from repro.engine import RandomStreams, Scheduler
from repro.errors import ConfigError
from repro.net import Network
from repro.topology import chain, clique

PREFIX = "dest"
RECONNECT_CONFIG = BgpConfig(
    mrai=1.0,
    processing_delay=(0.01, 0.05),
    hold_time=9.0,
    keepalive_interval=3.0,
    connect_retry=0.5,
    connect_retry_cap=4.0,
)


def make_network(scheduler, topo, config=RECONNECT_CONFIG, seed=4):
    streams = RandomStreams(seed)
    return Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
    )


class TestConnectRetryBackoff:
    @pytest.fixture
    def attempts(self):
        return []

    @pytest.fixture
    def manager(self, scheduler, attempts):
        def connect(neighbor):
            attempts.append(scheduler.now)
            manager.start_reconnect(neighbor)  # peer never answers

        manager = SessionManager(
            scheduler,
            hold_time=9.0,
            keepalive_interval=3.0,
            send_keepalive=lambda n: None,
            on_session_down=lambda n: None,
            connect=connect,
            retry_base=1.0,
            retry_cap=4.0,
            rng=None,  # no jitter: exact backoff arithmetic
        )
        return manager

    def test_delays_double_then_cap(self, scheduler, manager, attempts):
        manager.start_reconnect(1)
        scheduler.run(until=20.0)
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        # 1, 2, 4, then capped at 4.
        assert attempts[0] == pytest.approx(1.0)
        assert gaps[0] == pytest.approx(2.0)
        assert gaps[1] == pytest.approx(4.0)
        assert all(g == pytest.approx(4.0) for g in gaps[2:])

    def test_establish_resets_backoff_and_counts_reestablishment(
        self, scheduler, manager, attempts
    ):
        manager.start_reconnect(1)
        scheduler.run(until=4.0)  # a few failed attempts accumulate backoff
        assert len(attempts) >= 2
        manager.establish(1)
        assert manager.established(1)
        assert manager.sessions_reestablished == 1
        assert not manager.retry_pending(1)
        # A later loss starts over at the base delay.
        manager.teardown(1)
        start = scheduler.now
        manager.start_reconnect(1)
        scheduler.run(until=start + 1.5)
        assert attempts[-1] == pytest.approx(start + 1.0)

    def test_boot_establish_is_not_a_reestablishment(self, scheduler, manager):
        manager.establish(1)
        assert manager.sessions_reestablished == 0

    def test_retry_jitter_validation(self, scheduler):
        with pytest.raises(ConfigError):
            SessionManager(
                scheduler, 9.0, 3.0, lambda n: None, lambda n: None,
                retry_base=0.0,
            )
        with pytest.raises(ConfigError):
            SessionManager(
                scheduler, 9.0, 3.0, lambda n: None, lambda n: None,
                retry_base=2.0, retry_cap=1.0,
            )

    def test_config_rejects_bad_connect_retry(self):
        with pytest.raises(ConfigError):
            BgpConfig(connect_retry=0.0)
        with pytest.raises(ConfigError):
            BgpConfig(connect_retry=5.0, connect_retry_cap=1.0)


class TestSessionResetRecovery:
    def test_reset_purges_then_reconnects_and_reconverges(self, scheduler):
        network = make_network(scheduler, chain(3))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        assert network.node(2).best_route(PREFIX) is not None

        network.reset_session(1, 2)
        # The purge is immediate: node 2 lost everything learned from 1.
        assert network.node(2).best_route(PREFIX) is None
        assert not network.node(2).sessions.established(1)

        scheduler.run(until=scheduler.now + 15.0)
        assert network.node(2).sessions.established(1)
        assert network.node(1).sessions.established(2)
        assert network.node(2).best_route(PREFIX) is not None
        # The rebuild went through the OPEN handshake, not link state.
        opens = network.trace.records(lambda r: isinstance(r.message, Open))
        assert opens, "expected OPEN messages on the wire"
        total_resets = sum(
            network.node(n).session_resets_seen for n in (1, 2)
        )
        assert total_resets == 2
        for node in network.nodes.values():
            node.check_invariants()

    def test_crossing_opens_terminate(self, scheduler):
        """Both endpoints retry after a reset; the handshake must converge
        to an established session, not an OPEN storm."""
        network = make_network(scheduler, chain(2))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        network.reset_session(0, 1)
        scheduler.run(until=scheduler.now + 20.0, max_events=50_000)
        opens = network.trace.records(lambda r: isinstance(r.message, Open))
        assert len(opens) <= 8  # a handful of handshake messages, no storm
        assert network.node(0).sessions.established(1)
        assert network.node(1).sessions.established(0)
        assert network.node(1).best_route(PREFIX) is not None

    def test_reestablishment_counted(self, scheduler):
        network = make_network(scheduler, chain(2))
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        network.reset_session(0, 1)
        scheduler.run(until=scheduler.now + 15.0)
        reestablished = sum(
            network.node(n).sessions.sessions_reestablished for n in (0, 1)
        )
        assert reestablished == 2

    def test_reset_without_session_layer_reexchanges_instantly(self, scheduler):
        """The paper-mode (sessionless) speaker models a reset as an
        instantaneous TCP rebuild: purge + immediate full re-exchange."""
        config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
        network = make_network(scheduler, chain(3), config=config)
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run()
        assert network.node(2).best_route(PREFIX) is not None
        network.reset_session(1, 2)
        scheduler.run()
        assert network.node(2).best_route(PREFIX) is not None
        assert network.node(2).session_resets_seen == 1
        for node in network.nodes.values():
            node.check_invariants()


class TestSpeakerCrashRestart:
    @pytest.mark.parametrize("config", [
        BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05)),
        RECONNECT_CONFIG,
    ], ids=["paper-mode", "session-mode"])
    def test_crash_purges_and_restart_relearns(self, scheduler, config):
        network = make_network(scheduler, clique(4), config=config)
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(until=30.0)
        crashed = network.node(1)
        assert crashed.best_route(PREFIX) is not None

        network.crash_node(1)
        assert crashed.best_route(PREFIX) is None
        assert crashed.fib.get(PREFIX) is None
        assert not crashed.alive

        scheduler.run(until=scheduler.now + 20.0)
        # Survivors converge around the hole.
        for nid in (2, 3):
            assert network.node(nid).best_route(PREFIX) is not None

        network.restart_node(1)
        scheduler.run(until=scheduler.now + 30.0)
        assert crashed.alive
        assert crashed.best_route(PREFIX) is not None
        assert crashed.next_hop(PREFIX) == 0  # direct route re-learned
        for node in network.nodes.values():
            node.check_invariants()

    def test_crashed_origin_reoriginates_on_restart(self, scheduler):
        """Origination survives a crash as configuration, not state."""
        config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
        network = make_network(scheduler, chain(2), config=config)
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run()
        network.crash_node(0)
        scheduler.run()
        assert network.node(1).best_route(PREFIX) is None
        network.restart_node(0)
        scheduler.run()
        assert network.node(0).best_route(PREFIX) is not None
        assert network.node(1).best_route(PREFIX) is not None

    def test_crash_drops_queued_work(self, scheduler):
        config = BgpConfig(mrai=1.0, processing_delay=(0.2, 0.4))
        network = make_network(scheduler, clique(3), config=config)
        network.node(0).originate(PREFIX)
        network.start()
        # Crash node 1 early, while announcements are still queued on its CPU.
        scheduler.call_at(0.3, lambda: network.crash_node(1))
        scheduler.run(until=30.0)
        assert network.node(1).processor.jobs_dropped >= 0
        assert network.node(1).best_route(PREFIX) is None
        assert network.node(2).best_route(PREFIX) is not None
