"""Unit tests for the §3.2 analytical model."""

import pytest

from repro.core import (
    loop_formation_example,
    resolution_schedule,
    schedule_resolution_time,
    worst_case_detection_delay,
    worst_case_loop_duration,
)
from repro.errors import AnalysisError


class TestBounds:
    def test_worst_case_duration_formula(self):
        assert worst_case_loop_duration(2, 30.0) == 30.0
        assert worst_case_loop_duration(5, 30.0) == 120.0

    def test_detection_delay_formula(self):
        # (m - k + 1) * M
        assert worst_case_detection_delay(5, 2, 30.0) == 120.0
        assert worst_case_detection_delay(5, 5, 30.0) == 30.0

    def test_worst_case_is_k_equals_2(self):
        m, mrai = 6, 10.0
        assert worst_case_detection_delay(m, 2, mrai) == worst_case_loop_duration(
            m, mrai
        )
        for k in range(3, m + 1):
            assert worst_case_detection_delay(m, k, mrai) < worst_case_loop_duration(
                m, mrai
            )

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            worst_case_loop_duration(1, 30.0)
        with pytest.raises(AnalysisError):
            worst_case_loop_duration(3, -1.0)
        with pytest.raises(AnalysisError):
            worst_case_detection_delay(5, 1, 30.0)
        with pytest.raises(AnalysisError):
            worst_case_detection_delay(5, 6, 30.0)


class TestSchedule:
    @pytest.mark.parametrize("m", [3, 4, 5, 8])
    @pytest.mark.parametrize("k", [2, 3])
    def test_schedule_agrees_with_closed_form(self, m, k):
        if k > m:
            pytest.skip("k must be <= m")
        assert schedule_resolution_time(m, k, 10.0) == worst_case_detection_delay(
            m, k, 10.0
        )

    def test_schedule_steps_walk_counterclockwise(self):
        steps = resolution_schedule(m=5, k=2, mrai=10.0)
        informed = [step.node for step in steps]
        assert informed == [5, 4, 3, 2]  # c_m first, ending at c_k

    def test_final_path_contains_ck(self):
        """The terminating path (c_{k+1} ... c_m c_1 ... c_k) contains c_k,
        which is exactly why poison reverse breaks the loop there."""
        k = 3
        steps = resolution_schedule(m=6, k=k, mrai=10.0)
        assert k in steps[-1].path

    def test_time_bounds_monotone(self):
        steps = resolution_schedule(m=7, k=2, mrai=5.0)
        times = [step.time_bound for step in steps]
        assert times == sorted(times)
        assert times[-1] == worst_case_detection_delay(7, 2, 5.0)


class TestFigure1Example:
    def test_paths_are_the_paper_figures(self):
        before, node5, node6 = loop_formation_example()
        assert list(before) == [4, 0]
        assert list(node5) == [5, 6, 4, 0]
        assert list(node6) == [6, 5, 4, 0]
        # Each node's backup goes through the other: the 2-node loop.
        assert 6 in node5 and 5 in node6
