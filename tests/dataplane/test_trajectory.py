"""Unit tests for the event-driven packet forwarder."""

import pytest

from repro.dataplane import CbrSource, PacketForwarder
from repro.errors import AnalysisError
from repro.topology import chain, ring


class TestForwarding:
    def make_forwarder(self, scheduler, topo, fib):
        return PacketForwarder(scheduler, topo, lambda node: fib.get(node), ttl=8)

    def test_delivery_through_chain(self, scheduler):
        topo = chain(3)
        fib = {0: 0, 1: 0, 2: 1}
        forwarder = self.make_forwarder(scheduler, topo, fib)
        forwarder.launch([CbrSource(node=2, rate=10.0)], 0.0, 1.0)
        scheduler.run()
        assert forwarder.report.packets_sent == 10
        assert forwarder.report.delivered == 10

    def test_no_route_drop(self, scheduler):
        topo = chain(3)
        fib = {0: 0, 2: 1}  # node 1 has no route
        forwarder = self.make_forwarder(scheduler, topo, fib)
        forwarder.launch([CbrSource(node=2, rate=10.0)], 0.0, 0.5)
        scheduler.run()
        assert forwarder.report.dropped_no_route == 5

    def test_ttl_exhaustion_in_static_loop(self, scheduler):
        topo = ring(3)
        fib = {0: 1, 1: 2, 2: 0}
        forwarder = self.make_forwarder(scheduler, topo, fib)
        forwarder.launch([CbrSource(node=0, rate=10.0)], 0.0, 0.5)
        scheduler.run()
        report = forwarder.report
        assert report.ttl_exhaustions == 5
        assert report.per_source_exhaustions == {0: 5}
        assert report.first_exhaustion is not None

    def test_fib_change_mid_flight_redirects_packet(self, scheduler):
        """The forwarder consults the LIVE fib: flipping an entry while the
        packet is in flight changes its fate — the case the epoch evaluator
        cannot see."""
        topo = chain(3)
        fib = {0: 0, 1: None, 2: 1}
        forwarder = PacketForwarder(scheduler, topo, lambda n: fib.get(n), ttl=8)
        forwarder.launch([CbrSource(node=2, rate=1.0)], 0.0, 1.0)
        # Packet leaves node 2 at t=0, arrives at node 1 at t=0.002.
        scheduler.call_at(0.001, lambda: fib.__setitem__(1, 0))
        scheduler.run()
        assert forwarder.report.delivered == 1

    def test_dead_link_in_fib_drops_packet(self, scheduler):
        topo = chain(3)
        fib = {2: 0}  # node 2 points at non-adjacent node 0
        forwarder = self.make_forwarder(scheduler, topo, fib)
        forwarder.launch([CbrSource(node=2, rate=1.0)], 0.0, 1.0)
        scheduler.run()
        assert forwarder.report.dropped_no_route == 1


class TestGuards:
    def test_empty_window_rejected(self, scheduler):
        forwarder = PacketForwarder(scheduler, chain(2), lambda n: None)
        with pytest.raises(AnalysisError):
            forwarder.launch([CbrSource(node=1)], 1.0, 1.0)

    def test_double_launch_rejected(self, scheduler):
        forwarder = PacketForwarder(scheduler, chain(2), lambda n: None)
        forwarder.launch([CbrSource(node=1)], 0.0, 0.1)
        with pytest.raises(AnalysisError):
            forwarder.launch([CbrSource(node=1)], 0.0, 0.1)

    def test_report_before_launch_rejected(self, scheduler):
        forwarder = PacketForwarder(scheduler, chain(2), lambda n: None)
        with pytest.raises(AnalysisError):
            forwarder.report
