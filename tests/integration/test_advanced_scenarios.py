"""Advanced protocol scenarios beyond the paper's single-event runs:
multiple prefixes, anycast origination, link flaps, and cascading failures.
"""

import pytest

from repro.bgp import AsPath, BgpConfig, BgpSpeaker
from repro.core import find_loops, is_loop_free, loop_timeline
from repro.dataplane import FibChangeLog, ForwardingGraph, PacketFate, walk
from repro.engine import RandomStreams, Scheduler
from repro.net import Network
from repro.topology import Topology, chain, clique, grid, ring

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))


def build(topo, seed=5, config=FAST):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    log = FibChangeLog()
    network = Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(
            nid, sch, config=config, streams=streams, fib_listener=log.record
        ),
    )
    return network, scheduler, log


def graph_for(network, prefix):
    graph = ForwardingGraph()
    for nid, node in network.nodes.items():
        graph.set_next_hop(nid, node.fib.get(prefix))
    return graph


class TestMultiplePrefixes:
    def test_two_prefixes_converge_independently(self):
        network, scheduler, _log = build(clique(5))
        network.node(0).originate("alpha")
        network.node(4).originate("beta")
        network.start()
        scheduler.run(max_events=200_000)
        for nid, node in network.nodes.items():
            node.check_invariants()
            if nid != 0:
                assert node.next_hop("alpha") == 0
            if nid != 4:
                assert node.next_hop("beta") == 4

    def test_failure_of_one_prefix_leaves_other_untouched(self):
        network, scheduler, log = build(chain(4))
        network.node(0).originate("alpha")
        network.node(3).originate("beta")
        network.start()
        scheduler.run(max_events=200_000)
        scheduler.call_at(
            scheduler.now + 0.5,
            lambda: network.node(0).withdraw_origin("alpha"),
        )
        scheduler.run(max_events=200_000)
        for nid, node in network.nodes.items():
            assert node.best_route("alpha") is None
            if nid != 3:
                assert node.next_hop("beta") == nid + 1

    def test_per_prefix_mrai_timers_are_independent(self):
        """Updates for prefix alpha must not be held behind beta's timer."""
        network, scheduler, _log = build(clique(4))
        network.node(0).originate("alpha")
        network.node(0).originate("beta")
        network.start()
        scheduler.run(max_events=200_000)
        # Withdraw both at once; both converge (no cross-prefix blocking).
        at = scheduler.now + 0.5
        scheduler.call_at(at, lambda: network.node(0).withdraw_origin("alpha"))
        scheduler.call_at(at, lambda: network.node(0).withdraw_origin("beta"))
        scheduler.run(max_events=200_000)
        for node in network.nodes.values():
            assert node.best_route("alpha") is None
            assert node.best_route("beta") is None
            node.check_invariants()


class TestAnycast:
    def test_two_origins_split_the_network(self):
        """Anycast: both ends of a chain originate the same prefix; each
        node routes to its nearer instance."""
        network, scheduler, _log = build(chain(5))
        network.node(0).originate("any")
        network.node(4).originate("any")
        network.start()
        scheduler.run(max_events=200_000)
        graph = graph_for(network, "any")
        assert graph.delivers_locally(0)
        assert graph.delivers_locally(4)
        assert walk(graph, 1).fate is PacketFate.DELIVERED
        assert walk(graph, 3).fate is PacketFate.DELIVERED
        assert network.node(1).next_hop("any") == 0
        assert network.node(3).next_hop("any") == 4

    def test_losing_one_anycast_instance_fails_over_to_the_other(self):
        network, scheduler, _log = build(chain(5))
        network.node(0).originate("any")
        network.node(4).originate("any")
        network.start()
        scheduler.run(max_events=200_000)
        scheduler.call_at(
            scheduler.now + 0.5, lambda: network.node(0).withdraw_origin("any")
        )
        scheduler.run(max_events=200_000)
        graph = graph_for(network, "any")
        for source in (0, 1, 2, 3):
            assert walk(graph, source).fate is PacketFate.DELIVERED
        assert network.node(0).next_hop("any") == 1  # old origin now a client


class TestFlaps:
    def test_flap_restores_original_routing(self):
        network, scheduler, _log = build(grid(2, 3))
        network.node(0).originate("dest")
        network.start()
        scheduler.run(max_events=200_000)
        before = graph_for(network, "dest").as_dict()
        down_at = scheduler.now + 0.5
        network.schedule_link_failure(0, 1, at=down_at)
        network.schedule_link_restore(0, 1, at=down_at + 5.0)
        scheduler.run(max_events=200_000)
        after = graph_for(network, "dest").as_dict()
        assert after == before
        for node in network.nodes.values():
            node.check_invariants()

    def test_flap_during_convergence_still_converges(self):
        """A second failure injected mid-convergence (the re-convergence
        case the paper leaves implicit) must still quiesce loop-free."""
        network, scheduler, log = build(clique(6))
        network.node(0).originate("dest")
        network.start()
        scheduler.run(max_events=200_000)
        t0 = scheduler.now + 0.5
        scheduler.call_at(t0, lambda: network.node(0).withdraw_origin("dest"))
        # Mid-convergence, fail a bystander link too.
        network.schedule_link_failure(2, 3, at=t0 + 0.8)
        scheduler.run(max_events=500_000)
        for node in network.nodes.values():
            node.check_invariants()
            assert node.best_route("dest") is None

    def test_reorigination_after_tdown(self):
        network, scheduler, _log = build(ring(5))
        origin = network.node(0)
        origin.originate("dest")
        network.start()
        scheduler.run(max_events=200_000)
        t0 = scheduler.now + 0.5
        scheduler.call_at(t0, lambda: origin.withdraw_origin("dest"))
        scheduler.run(max_events=200_000)
        scheduler.call_at(scheduler.now + 1.0, lambda: origin.originate("dest"))
        scheduler.run(max_events=200_000)
        graph = graph_for(network, "dest")
        assert is_loop_free(graph)
        for source in range(5):
            assert walk(graph, source).fate is PacketFate.DELIVERED


class TestCascadingFailures:
    def test_sequential_link_failures_converge_loop_free(self):
        network, scheduler, _log = build(grid(3, 3))
        network.node(0).originate("dest")
        network.start()
        scheduler.run(max_events=200_000)
        base = scheduler.now
        network.schedule_link_failure(0, 1, at=base + 0.5)
        network.schedule_link_failure(1, 4, at=base + 1.0)
        network.schedule_link_failure(3, 4, at=base + 1.5)
        scheduler.run(max_events=500_000)
        graph = graph_for(network, "dest")
        assert is_loop_free(graph)
        for node in network.nodes.values():
            node.check_invariants()
            # Grid stays connected after those three failures.
            assert node.best_route("dest") is not None
