"""Property-based tests for longest-prefix-match FIB resolution.

The trie in :mod:`repro.dataplane.fib` is checked against the brute-force
linear scan :func:`repro.prefixes.longest_match` over random prefix
populations, including the cover/specific shadowing transitions that
aggregation and deaggregation events walk through.
"""

from hypothesis import given, strategies as st

from repro.dataplane import MultiPrefixFib, PrefixTrie
from repro.prefixes import ADDRESS_SPACE, PrefixSpec, longest_match, parse_prefix

# Canonical random prefixes: draw (value, length) and mask host bits.
prefix_specs = st.builds(
    lambda raw, length: PrefixSpec(
        raw & PrefixSpec(0, length).network_mask if length else 0, length
    ),
    st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
    st.integers(min_value=0, max_value=32),
)

addresses = st.integers(min_value=0, max_value=ADDRESS_SPACE - 1)


@given(st.lists(prefix_specs, max_size=40), addresses)
def test_trie_lookup_agrees_with_brute_force(specs, address):
    trie = PrefixTrie()
    table = {}
    for payload, spec in enumerate(specs):
        trie.insert(spec, payload)
        table[spec] = payload  # duplicate specs: last payload wins, both sides
    expected = longest_match(list(table.items()), address)
    got = trie.lookup(address)
    if expected is None:
        assert got is None
    else:
        # Equal-length matches containing one address are the same prefix,
        # so the matched spec is unique even if payloads collide.
        assert got is not None
        assert got[0] == expected[0]
        assert got[1] == table[got[0]]


@given(st.lists(prefix_specs, min_size=1, max_size=30), st.data())
def test_trie_removal_agrees_with_brute_force(specs, data):
    trie = PrefixTrie()
    table = {}
    for payload, spec in enumerate(specs):
        trie.insert(spec, payload)
        table[spec] = payload
    to_remove = data.draw(
        st.lists(st.sampled_from(sorted(table, key=str)), unique=True, max_size=10)
    )
    for spec in to_remove:
        assert trie.remove(spec)
        assert not trie.remove(spec)  # second removal is a no-op
        del table[spec]
    assert len(trie) == len(table)
    for address in data.draw(st.lists(addresses, min_size=1, max_size=20)):
        expected = longest_match(list(table.items()), address)
        got = trie.lookup(address)
        assert (got[0] if got else None) == (expected[0] if expected else None)


@given(
    st.integers(min_value=0, max_value=ADDRESS_SPACE - 1),
    st.integers(min_value=0, max_value=28),
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_cover_specific_shadowing_through_deaggregation(raw, length, bits, data):
    """Walk an aggregate→deaggregate cycle and check every intermediate state.

    A cover plus its 2^k specifics go in; specifics are withdrawn one at a
    time (the aggregation event's intermediate states).  At every step, any
    address under a live specific resolves to it, and any address whose
    specific is gone falls back to the cover — per the brute-force oracle.
    """
    cover = PrefixSpec(
        raw & PrefixSpec(0, length).network_mask if length else 0, length
    )
    specifics = cover.split(bits)
    fib = MultiPrefixFib()
    node = 0
    fib.set_entry(node, str(cover), 100)
    live = {}
    for i, spec in enumerate(specifics):
        fib.set_entry(node, str(spec), 200 + i)
        live[spec] = 200 + i

    def check():
        oracle = [(cover, 100)] + sorted(live.items(), key=lambda e: str(e[0]))
        probes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=cover.size - 1),
                min_size=1,
                max_size=8,
            )
        )
        for offset in probes:
            address = cover.value + offset
            expected = longest_match(oracle, address)
            got = fib.resolve(node, address)
            assert got is not None and expected is not None
            assert got == (str(expected[0]), expected[1])

    check()
    for spec in specifics:  # deaggregated -> withdraw specifics one by one
        fib.set_entry(node, str(spec), None)
        del live[spec]
        check()
    # Fully re-aggregated: only the cover remains; it matches everywhere.
    for offset in (0, cover.size - 1):
        assert fib.resolve(node, cover.value + offset) == (str(cover), 100)


@given(st.lists(prefix_specs, max_size=20), addresses)
def test_withdrawn_entries_never_shadow(specs, address):
    """A next_hop=None entry deletes — an unreachable specific must not
    shadow a reachable cover."""
    fib = MultiPrefixFib()
    for payload, spec in enumerate(specs):
        fib.set_entry(0, str(spec), payload)
        fib.set_entry(0, str(spec), None)
    assert fib.resolve(0, address) is None


def test_opaque_prefixes_are_exact_and_disjoint():
    fib = MultiPrefixFib()
    fib.set_entry(0, "dest", 7)
    fib.set_entry(0, "0a000000/8", 9)
    assert fib.resolve(0, "dest") == ("dest", 7)
    assert fib.resolve(0, "other") is None
    # Opaque names never capture structured lookups and vice versa.
    assert fib.resolve(0, 0x0A000001) == ("0a000000/8", 9)
    assert parse_prefix("dest") is None
