"""Unit + integration tests for update-churn analysis."""

import pytest

from repro.bgp import Announcement, AsPath, BgpConfig, Withdrawal
from repro.core import UpdateChurn
from repro.errors import AnalysisError
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.net import MessageTrace


def ann():
    return Announcement(prefix="d", path=AsPath((1, 0)))


def wd():
    return Withdrawal(prefix="d")


@pytest.fixture
def churn():
    trace = MessageTrace()
    trace.record(5.0, 0, 1, ann())      # pre-failure: excluded
    trace.record(10.0, 0, 1, wd())
    trace.record(11.0, 0, 2, wd())
    trace.record(12.0, 1, 2, ann())
    trace.record(14.5, 1, 2, ann())
    trace.record(15.0, 1, 2, "keepalive")  # not an update
    trace.record(20.0, 2, 1, ann())
    return UpdateChurn.from_trace(trace, failure_time=10.0)


class TestExtraction:
    def test_counts(self, churn):
        assert churn.total_updates == 5
        assert churn.announcements == 3
        assert churn.withdrawals == 2
        assert churn.withdrawal_fraction == pytest.approx(0.4)

    def test_pre_failure_and_non_updates_excluded(self, churn):
        assert 5.0 not in churn.send_times
        assert len(churn.send_times) == 5

    def test_per_sender(self, churn):
        assert churn.per_sender == {0: 2, 1: 2, 2: 1}
        assert churn.busiest_senders(top=1) == [(0, 2)]

    def test_busiest_senders_tie_break_by_id(self, churn):
        assert churn.busiest_senders(top=2) == [(0, 2), (1, 2)]


class TestTimeline:
    def test_activity_histogram(self, churn):
        bins = churn.activity_histogram(bin_seconds=5.0)
        # [10,15): 4 updates; [15,20): 0; [20,25): 1.
        assert bins == [4, 0, 1]

    def test_histogram_invalid_bin(self, churn):
        with pytest.raises(AnalysisError):
            churn.activity_histogram(0.0)

    def test_empty_histogram(self):
        churn = UpdateChurn.from_trace(MessageTrace(), failure_time=0.0)
        assert churn.activity_histogram(1.0) == []
        assert churn.withdrawal_fraction == 0.0

    def test_pair_spacings(self, churn):
        gaps = sorted(churn.pair_spacings())
        assert gaps == [pytest.approx(2.5)]
        assert churn.min_pair_spacing() == pytest.approx(2.5)

    def test_min_spacing_none_when_no_repeats(self):
        trace = MessageTrace()
        trace.record(1.0, 0, 1, ann())
        churn = UpdateChurn.from_trace(trace, failure_time=0.0)
        assert churn.min_pair_spacing() is None

    def test_updates_by_round(self, churn):
        assert churn.updates_by_round(mrai=10.0) == [4, 1]
        with pytest.raises(AnalysisError):
            churn.updates_by_round(0)


class TestOnRealRun:
    def test_mrai_floor_visible_in_spacings(self):
        """Announcement spacings on any (src, dst) pair cannot fall below
        the minimum jittered MRAI — measured on a real clique Tdown.

        Withdrawals are exempt, so only announcements enter the check.
        """
        config = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
        run = run_experiment(
            tdown_clique(6),
            config,
            settings=RunSettings(failure_guard=0.5),
            seed=2,
            keep_network=True,
        )
        pairs = {}
        for record in run.network.trace:
            if record.time < run.failure_time:
                continue
            if not isinstance(record.message, Announcement):
                continue
            pairs.setdefault((record.src, record.dst), []).append(record.time)
        floor = 0.75 * 2.0
        for times in pairs.values():
            for a, b in zip(times, times[1:]):
                assert b - a >= floor - 1e-9

    def test_churn_totals_match_convergence_report(self):
        config = BgpConfig(mrai=2.0, processing_delay=(0.01, 0.05))
        run = run_experiment(
            tdown_clique(5),
            config,
            settings=RunSettings(failure_guard=0.5),
            seed=3,
            keep_network=True,
        )
        churn = UpdateChurn.from_trace(run.network.trace, run.failure_time)
        report = run.result.convergence
        assert churn.total_updates == report.update_count
        assert churn.announcements == report.announcement_count
        assert churn.withdrawals == report.withdrawal_count
