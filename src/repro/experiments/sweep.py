"""Parameter sweeps with repeated seeded trials and per-trial fault isolation.

Every figure in the paper is a sweep: an x-axis (topology size or MRAI
value), one or more measured series, each point averaged over repeated runs
("the simulation were repeated for a number of times").  :func:`sweep`
captures that pattern once so the per-figure drivers stay declarative.

Churn sweeps add a survivability requirement: a single pathological
(scenario, seed) pair — a flap period that resonates with MRAI, a crash that
trips the event budget — must not destroy the other trials' work.  By
default a failed trial is recorded as a :class:`TrialFailure` (with the
post-mortem :class:`~repro.experiments.diagnostics.DiagnosticSnapshot` when
the runner captured one) and the sweep continues; each
:class:`SweepPoint` reports how many of its trials succeeded.  Programming
errors — :class:`~repro.errors.ProtocolError`, bad configuration — still
propagate: they invalidate the whole sweep, not one trial.

Parallel execution
------------------

Trials are independent by construction (each builds its own scheduler,
network, and RNG streams from ``(x, seed)``), which makes the trial the
natural unit of fan-out.  ``sweep(..., jobs=N)`` runs trials on a
:class:`concurrent.futures.ProcessPoolExecutor` with ``N`` workers
(``jobs=0`` means one per CPU); results are reassembled into
:class:`SweepPoint` lists in deterministic ``(x, seed)`` order no matter
which worker finished first, so a parallel sweep is *bit-identical* to a
sequential one — a property the test suite proves with the PR-2
determinism digests (``digests=True`` attaches a
:class:`~repro.analysis.determinism.RunFingerprint` to every run).

Crossing the process boundary constrains the factories: closures cannot be
pickled, so ``jobs > 1`` requires module-level factory functions or
:func:`~repro.experiments.spec.factory_ref` wrappers (the built-in figure
drivers already comply).  Fault isolation survives the boundary — a worker
trial that raises :class:`~repro.errors.SimulationError` comes back as a
picklable :class:`TrialFailure` carrying its diagnostic snapshot, while
:class:`~repro.errors.SanitizerError` (the simulator itself is wrong)
still aborts the whole sweep from any worker.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotation only)
    from ..telemetry import MetricsSnapshot

from ..bgp import BgpConfig
from ..core import LoopStudyResult
from ..errors import AnalysisError, SimulationError
from ..util.stats import mean
from .config import RunSettings
from .resilience import (
    ResiliencePolicy,
    SupervisionReport,
    _publish_report,
    run_tasks_supervised,
    run_trial_resilient,
)
from .runner import ExperimentRun, run_experiment
from .scenarios import Scenario

ScenarioFactory = Callable[[float, int], Scenario]
"""``factory(x, seed) -> Scenario`` for the sweep's x value and trial seed."""

ConfigFactory = Callable[[float], BgpConfig]
"""``factory(x) -> BgpConfig`` for the sweep's x value."""


@dataclass(frozen=True)
class TrialFailure:
    """One trial that died, preserved for the post-mortem.

    Frozen and picklable (including the error's diagnostic snapshot, see
    :meth:`~repro.errors.BudgetExceededError.__reduce__`), so failures
    recorded inside pool workers survive the trip home.
    """

    x: float
    seed: int
    error: SimulationError
    #: Which attempt produced this terminal failure (1 = first try; > 1
    #: means the resilience layer retried a transient failure this many
    #: times before giving up).
    attempt: int = 1
    #: Wall-clock seconds the final attempt ran (harness-side
    #: observability; 0.0 outside the resilient paths).
    elapsed: float = 0.0

    @property
    def snapshot(self):
        """The diagnostic snapshot, when the runner captured one."""
        return getattr(self.error, "snapshot", None)

    def __repr__(self) -> str:
        # Stable across reruns: ``elapsed`` is wall clock and deliberately
        # excluded so failure reprs can be diffed between runs and asserted
        # on in tests.
        return (
            f"TrialFailure(x={self.x}, seed={self.seed}, "
            f"attempt={self.attempt}: {self.error})"
        )


@dataclass(frozen=True)
class TrialTimeout(TrialFailure):
    """A trial killed by the per-trial wall-clock watchdog.

    A :class:`TrialFailure` subclass so every existing consumer
    (``failures_of``, ``SweepPoint.failed``, ``on_trial_error``) sees it
    transparently; ``error`` is always a
    :class:`~repro.errors.TrialTimeoutError`.  Only the supervised
    (``jobs > 1`` + :class:`~repro.experiments.resilience.
    ResiliencePolicy` with ``trial_timeout``) executor produces these —
    an in-process trial cannot be preempted.
    """

    #: The wall-clock budget (seconds) the trial exceeded.
    timeout: float = 0.0

    def __repr__(self) -> str:
        return (
            f"TrialTimeout(x={self.x}, seed={self.seed}, "
            f"attempt={self.attempt}, timeout={self.timeout}: {self.error})"
        )


@dataclass(frozen=True)
class TrialProgress:
    """One completed trial, reported to the sweep's progress callback.

    ``done``/``total`` count attempted trials; in parallel mode callbacks
    arrive in *completion* order (the only nondeterministic observable —
    the returned points are always in task order).
    """

    done: int
    total: int
    x: float
    seed: int
    ok: bool


ProgressCallback = Callable[[TrialProgress], None]


@dataclass
class SweepPoint:
    """All trials at one x value, successful and failed."""

    x: float
    runs: List[ExperimentRun] = field(default_factory=list)
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def results(self) -> List[LoopStudyResult]:
        return [run.result for run in self.runs]

    @property
    def trials(self) -> int:
        """Trials attempted at this point."""
        return len(self.runs) + len(self.failures)

    @property
    def succeeded(self) -> int:
        """Trials that completed and were measured."""
        return len(self.runs)

    @property
    def failed(self) -> int:
        """Trials that died (recorded in :attr:`failures`)."""
        return len(self.failures)

    @property
    def timeouts(self) -> int:
        """Failed trials that were watchdog-killed (:class:`TrialTimeout`)."""
        return sum(
            1 for failure in self.failures if isinstance(failure, TrialTimeout)
        )

    def mean_metric(self, name: str) -> float:
        """Trial-mean of one ``LoopStudyResult.summary_row()`` metric.

        Computed over the *successful* trials; raises :class:`AnalysisError`
        (never ``ZeroDivisionError``) when none survived.
        """
        values = [result.summary_row()[name] for result in self.results]
        if not values:
            raise AnalysisError(
                f"no successful runs at x={self.x} "
                f"({self.failed} of {self.trials} trials failed)"
            )
        return mean(values)

    def metrics(self) -> Dict[str, float]:
        """Trial-mean of every summary metric (successful trials only)."""
        if not self.runs:
            raise AnalysisError(
                f"no successful runs at x={self.x} "
                f"({self.failed} of {self.trials} trials failed)"
            )
        keys = self.results[0].summary_row().keys()
        return {key: self.mean_metric(key) for key in keys}

    def telemetry(self) -> "MetricsSnapshot":
        """Aggregate of the successful trials' telemetry snapshots.

        Counters sum across trials, gauges keep their maxima, histograms
        merge bucket-wise (see :meth:`~repro.telemetry.registry.
        MetricsSnapshot.aggregate`).  Empty when the sweep ran without
        ``settings.telemetry``; per-trial snapshots are produced inside
        pool workers and aggregate here identically for ``jobs=1`` and
        ``jobs=N``.
        """
        from ..telemetry import MetricsSnapshot

        return MetricsSnapshot.aggregate(
            [run.metrics for run in self.runs if run.metrics is not None]
        )


@dataclass(frozen=True)
class TrialTask:
    """One ``(x, seed)`` trial, fully specified and (given picklable
    factories) shippable to a worker process."""

    index: int
    x: float
    seed: int
    make_scenario: ScenarioFactory
    make_config: ConfigFactory
    settings: RunSettings
    digests: bool = False


TrialOutcome = Union[ExperimentRun, TrialFailure]


def run_trial(task: TrialTask) -> TrialOutcome:
    """Execute one trial; the worker-side entry point of a parallel sweep.

    Module-level (not a closure) so pool workers import it by reference.
    :class:`~repro.errors.SimulationError` — the per-trial fault-isolation
    class — is converted to a :class:`TrialFailure`; everything else
    (sanitizer trips, protocol invariant violations, config errors)
    propagates and aborts the sweep from whichever process it ran in.
    """
    scenario = task.make_scenario(task.x, task.seed)
    config = task.make_config(task.x)
    try:
        run = run_experiment(
            scenario,
            config,
            settings=task.settings,
            seed=task.seed,
            keep_network=task.digests,
        )
    except SimulationError as exc:
        return TrialFailure(x=task.x, seed=task.seed, error=exc)
    if task.digests:
        # Imported lazily: analysis.determinism itself imports this package.
        from ..analysis.determinism import fingerprint_run

        run.fingerprint = fingerprint_run(run)
        # The live network (scheduler callbacks, channel closures) is not
        # picklable and was only kept to fingerprint the trace; drop it so
        # sequential and parallel runs return identical objects.
        run.network = None
    return run


def _resolve_jobs(jobs: int) -> int:
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise AnalysisError(f"jobs must be an int, got {jobs!r}")
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _check_tasks_picklable(task: TrialTask) -> None:
    """Fail fast, with a remedy, before submitting closures to the pool."""
    try:
        pickle.dumps(task)
    except Exception as exc:
        raise AnalysisError(
            f"sweep factories cannot cross the process boundary ({exc}); "
            f"jobs > 1 needs module-level factories or "
            f"repro.experiments.factory_ref(...) wrappers — closures and "
            f"lambdas only work with jobs=1"
        ) from exc


def _run_tasks_parallel(
    tasks: Sequence[TrialTask],
    jobs: int,
    on_progress: Optional[ProgressCallback],
) -> Dict[int, TrialOutcome]:
    """Fan tasks out to a process pool; return outcomes keyed by task index.

    Completion order is nondeterministic; the caller reassembles in task
    order.  A non-isolated error in any worker cancels what it can and
    propagates.
    """
    _check_tasks_picklable(tasks[0])
    outcomes: Dict[int, TrialOutcome] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        index_of = {pool.submit(run_trial, task): task.index for task in tasks}
        try:
            for future in as_completed(index_of):
                index = index_of[future]
                outcome = future.result()
                outcomes[index] = outcome
                if on_progress is not None:
                    task = tasks[index]
                    on_progress(
                        TrialProgress(
                            done=len(outcomes),
                            total=len(tasks),
                            x=task.x,
                            seed=task.seed,
                            ok=not isinstance(outcome, TrialFailure),
                        )
                    )
        except BaseException:
            # Per-future ``cancel()`` only catches futures not yet grabbed
            # by a worker, and the ``with`` exit alone would then *run*
            # every still-queued straggler before returning.  Cancel the
            # queue wholesale and drain only the in-flight trials, so a
            # sanitizer abort surfaces promptly even mid-sweep.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
    return outcomes


def sweep(
    xs: Sequence[float],
    make_scenario: ScenarioFactory,
    make_config: ConfigFactory,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    on_error: str = "record",
    on_trial_error: Optional[Callable[[TrialFailure], None]] = None,
    jobs: int = 1,
    digests: bool = False,
    on_progress: Optional[ProgressCallback] = None,
    policy: Optional[ResiliencePolicy] = None,
    on_report: Optional[Callable[[SupervisionReport], None]] = None,
) -> List[SweepPoint]:
    """Run ``len(xs) × len(seeds)`` experiments and group them by x.

    The scenario factory receives the trial seed so randomized scenarios
    (Internet-derived destination/link choice) vary across trials, exactly
    as the paper repeats runs "with different destination ASes and failed
    links".

    ``on_error`` controls trial fault isolation:

    * ``"record"`` (default) — a trial that raises
      :class:`~repro.errors.SimulationError` (budget exhaustion,
      non-convergence) is appended to its point's ``failures`` and the
      sweep continues; ``on_trial_error`` (if given) observes each failure
      in deterministic ``(x, seed)`` order.
    * ``"raise"`` — a failing trial aborts the sweep (the seed's behavior;
      useful when any failure means the setup itself is wrong).
      Sequentially the abort is immediate; with ``jobs > 1`` every trial is
      attempted first and the task-order-earliest failure is raised, so the
      raised error is deterministic regardless of completion order.

    Non-simulation errors (protocol invariant violations, sanitizer trips,
    bad configuration) always propagate — from workers too.

    ``jobs`` selects the executor: ``1`` (default) runs in-process exactly
    as before; ``N > 1`` fans trials out to ``N`` worker processes;
    ``0`` uses one worker per CPU.  Parallel results are reassembled in
    ``(x, seed)`` task order and are digest-identical to sequential runs.

    ``digests=True`` attaches a SHA-256
    :class:`~repro.analysis.determinism.RunFingerprint` (trace, FIB log,
    summary metrics) to each successful ``run.fingerprint`` — the
    equivalence oracle for the parallel path.

    ``on_progress`` observes every completed trial (completion order when
    parallel) — wire it to a counter or log line for long sweeps.

    ``policy`` (a :class:`~repro.experiments.resilience.ResiliencePolicy`)
    turns on resilient execution.  With ``jobs > 1`` trials run under the
    supervised executor: worker death and watchdog timeouts are retried
    with capped, deterministically-jittered backoff, and trials that
    exhaust their retries land in ``failures`` as
    :class:`TrialFailure`/:class:`TrialTimeout` (or abort the sweep,
    per ``policy.on_exhausted``).  With ``jobs=1`` the policy only adds
    attempt/elapsed provenance — an in-process trial cannot be preempted
    or survive its own crash.  A retried trial re-runs the *identical*
    :class:`TrialTask`, so resilience never perturbs ``digests=True``
    equivalence.

    ``on_report`` receives this sweep's
    :class:`~repro.experiments.resilience.SupervisionReport` once the
    sweep finishes (only when ``policy`` is set; the jobs=1 path
    synthesizes a report with zero supervision activity).  This is the
    report's home — each sweep's caller owns its own counters, so
    concurrent sweeps in one process never alias.  The deprecated
    :func:`~repro.experiments.resilience.last_report` shim still mirrors
    the most recent report.
    """
    if not xs:
        raise AnalysisError("sweep needs at least one x value")
    if not seeds:
        raise AnalysisError("sweep needs at least one seed")
    if on_error not in ("record", "raise"):
        raise AnalysisError(f"on_error must be 'record' or 'raise', got {on_error!r}")
    jobs = _resolve_jobs(jobs)

    tasks: List[TrialTask] = []
    for x in xs:
        for seed in seeds:
            tasks.append(
                TrialTask(
                    index=len(tasks),
                    x=x,
                    seed=seed,
                    make_scenario=make_scenario,
                    make_config=make_config,
                    settings=settings,
                    digests=digests,
                )
            )

    report: Optional[SupervisionReport] = None
    if jobs == 1:
        outcomes: Dict[int, TrialOutcome] = {}
        for task in tasks:
            if policy is not None:
                outcome = run_trial_resilient(task, policy)
            else:
                outcome = run_trial(task)
            if isinstance(outcome, TrialFailure) and on_error == "raise":
                raise outcome.error
            outcomes[task.index] = outcome
            if on_progress is not None:
                on_progress(
                    TrialProgress(
                        done=len(outcomes),
                        total=len(tasks),
                        x=task.x,
                        seed=task.seed,
                        ok=not isinstance(outcome, TrialFailure),
                    )
                )
        if policy is not None:
            # In-process trials cannot be preempted or restarted, so the
            # report records completions only — zero supervision events.
            report = SupervisionReport(
                trials=len(tasks), completed=len(outcomes)
            )
            _publish_report(report)
    elif policy is not None:
        _check_tasks_picklable(tasks[0])
        outcomes, report = run_tasks_supervised(
            tasks, jobs, policy, on_progress=on_progress
        )
    else:
        outcomes = _run_tasks_parallel(tasks, jobs, on_progress)
    if on_report is not None and report is not None:
        on_report(report)

    # Deterministic reassembly: walk tasks in submission order — the
    # REP103-clean path that makes jobs=N output identical to jobs=1.
    points: List[SweepPoint] = []
    cursor = 0
    for x in xs:
        point = SweepPoint(x=x)
        points.append(point)
        for _seed in seeds:
            task = tasks[cursor]
            outcome = outcomes[task.index]
            cursor += 1
            if isinstance(outcome, TrialFailure):
                if on_error == "raise":
                    raise outcome.error
                point.failures.append(outcome)
                if on_trial_error is not None:
                    on_trial_error(outcome)
            else:
                point.runs.append(outcome)
    return points


def failures_of(points: Sequence[SweepPoint]) -> List[TrialFailure]:
    """Every recorded trial failure across the sweep, sorted by ``(x, seed)``.

    Sorted explicitly (not just "appended in task order") so the output
    is deterministic even for failure lists assembled out of order — e.g.
    by the supervised executor's retry scheduling or by callers merging
    points from resumed journal segments.
    """
    failures = [failure for point in points for failure in point.failures]
    return sorted(failures, key=lambda failure: (failure.x, failure.seed))


def series(points: Sequence[SweepPoint], metric: str) -> List[float]:
    """Extract one metric's trial-mean series across the sweep."""
    return [point.mean_metric(metric) for point in points]


def xs_of(points: Sequence[SweepPoint]) -> List[float]:
    """The sweep's x values, in run order."""
    return [point.x for point in points]
