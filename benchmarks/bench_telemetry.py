"""Telemetry overhead: disabled-vs-enabled cost on a small Figure 4 sweep.

Runs the same fig4a clique-Tdown sweep three ways — telemetry off, metrics
on, metrics + timeline on — and reports best-of-N wall-clock per mode.
The *disabled* cost (the ``if scheduler.telemetry is not None`` guard each
hook site executes on every fire) cannot be A/B-tested against a guard-free
build, so it is estimated from first principles instead: a microbenchmark
times one attribute-read-plus-None-check, and that per-guard cost is
multiplied by the number of hook fires the enabled run actually counted.
The estimate must stay under 2% of the baseline run — the subsystem's
"free when off" contract.

Runs under pytest-benchmark (the recorded study below) or directly:
``python benchmarks/bench_telemetry.py --jobs 1``.

With ``--output PATH`` the script emits the ``compare_baselines.py`` JSON
schema — one result per telemetry mode (off / metrics / timeline), each
gated on its best-of-``--repeat`` wall-clock — so CI's ``bench-regression``
job and the continuous-bench scheduler can gate it against
``benchmarks/baselines/BENCH_telemetry.json``.
"""

from dataclasses import dataclass
from typing import Tuple

from _support import bench_cli

from repro.experiments import RunSettings
from repro.experiments.figures import figure4a
from repro.telemetry import Stopwatch, time_callable

SIZES = (5, 8)
SEEDS = (0,)
MRAI = 2.0
REPEATS = 3

#: Guard-cost ceiling from the acceptance criteria: the estimated cost of
#: the disabled-path guards must be below 2% of the baseline run.
DISABLED_OVERHEAD_CEILING = 0.02


def guard_cost_seconds(iterations: int = 200_000) -> float:
    """Wall seconds one disabled-path guard costs, microbenchmarked.

    Times a loop of ``holder.telemetry is not None`` checks against the
    same loop without the check; the difference per iteration is the cost
    every instrumented hook site pays when telemetry is off.  Clamped at
    zero — on fast machines the difference can vanish into timer noise.
    """

    class Holder:
        telemetry = None

    holder = Holder()
    indices = range(iterations)

    watch = Stopwatch.start()
    for _ in indices:
        pass
    empty = watch.elapsed()

    watch = Stopwatch.start()
    for _ in indices:
        if holder.telemetry is not None:
            raise AssertionError("unreachable")
    guarded = watch.elapsed()

    return max(0.0, (guarded - empty) / iterations)


@dataclass(frozen=True)
class TelemetryOverheadResult:
    """The three timed modes plus the estimated disabled-guard cost."""

    figure_id: str
    off_seconds: float
    metrics_seconds: float
    timeline_seconds: float
    hook_fires: int
    guard_seconds: float

    @property
    def metrics_overhead(self) -> float:
        """Fractional slowdown of metrics-on vs telemetry-off."""
        return self.metrics_seconds / self.off_seconds - 1.0

    @property
    def timeline_overhead(self) -> float:
        """Fractional slowdown of metrics+timeline vs telemetry-off."""
        return self.timeline_seconds / self.off_seconds - 1.0

    @property
    def disabled_overhead(self) -> float:
        """Estimated fraction of the baseline run spent in guards when off."""
        return self.hook_fires * self.guard_seconds / self.off_seconds

    def render(self) -> str:
        lines = [
            f"{self.figure_id}: fig4a sweep sizes={list(SIZES)} "
            f"(best of {REPEATS})",
            f"  telemetry off      {self.off_seconds:8.3f}s",
            f"  metrics on         {self.metrics_seconds:8.3f}s "
            f"({self.metrics_overhead:+7.1%})",
            f"  metrics + timeline {self.timeline_seconds:8.3f}s "
            f"({self.timeline_overhead:+7.1%})",
            f"  disabled-path estimate: {self.hook_fires} hook fires x "
            f"{self.guard_seconds * 1e9:.1f}ns guard = "
            f"{self.disabled_overhead:.4%} of baseline "
            f"(ceiling {DISABLED_OVERHEAD_CEILING:.0%})",
        ]
        return "\n".join(lines)


def _run(settings: RunSettings, jobs: int):
    return figure4a(
        sizes=SIZES, mrai=MRAI, seeds=SEEDS, settings=settings, jobs=jobs
    )


def measure(jobs: int = 1, repeats: int = REPEATS) -> TelemetryOverheadResult:
    """Time the three telemetry modes and estimate the disabled-path cost."""
    off_seconds, _ = time_callable(
        lambda: _run(RunSettings(), jobs), repeats=repeats
    )
    metrics_seconds, traced = time_callable(
        lambda: _run(RunSettings(telemetry=True), jobs), repeats=repeats
    )
    timeline_seconds, _ = time_callable(
        lambda: _run(RunSettings(telemetry=True, timeline=True), jobs),
        repeats=repeats,
    )
    # Counter totals from the enabled run stand in for how many guards the
    # disabled run executed.  Excluded: byte counters (their value is a byte
    # total, not a fire count) and the trace/dataplane counters the runner
    # fills in post-run, which never execute a per-event guard.  Still
    # conservative — one hook fire can bump several of the counters kept.
    assert traced is not None and traced.telemetry is not None
    hook_fires = sum(
        value
        for name, value in traced.telemetry.counters.items()
        if not name.startswith(("net.bytes_sent.", "trace.", "dataplane."))
    )
    return TelemetryOverheadResult(
        figure_id="telemetry_overhead",
        off_seconds=off_seconds,
        metrics_seconds=metrics_seconds,
        timeline_seconds=timeline_seconds,
        hook_fires=hook_fires,
        guard_seconds=guard_cost_seconds(),
    )


def _assert_contract(result: TelemetryOverheadResult) -> None:
    assert result.hook_fires > 0
    assert result.disabled_overhead < DISABLED_OVERHEAD_CEILING, (
        f"disabled-path guards estimated at {result.disabled_overhead:.2%} "
        f"of the baseline run (ceiling {DISABLED_OVERHEAD_CEILING:.0%})"
    )


def test_telemetry_overhead(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["off_seconds"] = round(result.off_seconds, 3)
    benchmark.extra_info["metrics_seconds"] = round(result.metrics_seconds, 3)
    benchmark.extra_info["timeline_seconds"] = round(result.timeline_seconds, 3)
    benchmark.extra_info["hook_fires"] = result.hook_fires
    benchmark.extra_info["disabled_overhead"] = f"{result.disabled_overhead:.4%}"
    print()
    print(result.render())
    _assert_contract(result)


def _driver(jobs: int) -> TelemetryOverheadResult:
    result = measure(jobs=jobs)
    _assert_contract(result)
    return result


SCHEMA_VERSION = 1


def measure_json(repeat: int):
    """One result per telemetry mode, in the compare_baselines.py schema.

    ``updates`` carries the enabled run's hook-fire count for context;
    only ``wall_clock_s`` is gated.
    """
    result = measure(jobs=1, repeats=repeat)
    _assert_contract(result)
    walls = {
        "telemetry-off": result.off_seconds,
        "telemetry-metrics": result.metrics_seconds,
        "telemetry-timeline": result.timeline_seconds,
    }
    return {
        name: {
            "scenario": f"fig4a-{name}",
            "wall_clock_s": round(wall, 6),
            "updates": result.hook_fires,
            "updates_per_s": round(result.hook_fires / wall, 1),
        }
        for name, wall in walls.items()
    }


if __name__ == "__main__":
    import sys

    if "--output" in sys.argv or "--repeat" in sys.argv:
        import argparse
        import json
        import platform
        from pathlib import Path

        parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
        parser.add_argument("--repeat", type=int, default=REPEATS, metavar="N",
                            help="timed repeats per mode; the best is "
                            f"reported (default {REPEATS})")
        parser.add_argument("--output", type=Path, default=None,
                            metavar="PATH",
                            help="write the compare_baselines.py JSON "
                            "document here (default: stdout only)")
        args = parser.parse_args()
        results = measure_json(repeat=args.repeat)
        for name, entry in results.items():
            print(f"[{name}] {entry['wall_clock_s'] * 1e3:.1f} ms "
                  f"(best of {args.repeat})")
        document = {
            "schema": SCHEMA_VERSION,
            "benchmark": "telemetry",
            "repeat": args.repeat,
            "python": platform.python_version(),
            "results": results,
        }
        payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if args.output is not None:
            args.output.write_text(payload, encoding="utf-8")
            print(f"wrote {args.output}")
        else:
            print(payload, end="")
        sys.exit(0)

    sys.exit(
        bench_cli(
            {"telemetry_overhead": _driver},
            description=__doc__.splitlines()[0],
        )
    )
