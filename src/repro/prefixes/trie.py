"""A path-compressed binary radix trie over structured prefixes.

This is the routing-table-scale index behind the prefix dimension: the
one-node-per-bit trie the data plane started with burns 32 node hops (and
32 allocated nodes) per /32 entry, which at 10k-prefix populations is the
difference between a FIB that fits in cache and one that does not.
:class:`RadixTrie` stores one node per *branching point* instead — the
classic PATRICIA layout — so a lookup touches O(distinct branch points)
nodes and an entry costs O(1) nodes amortized.

Three consumers, one structure:

* **LPM** — :meth:`RadixTrie.lookup` resolves an address to its
  most-specific entry (:class:`~repro.dataplane.fib.MultiPrefixFib`).
* **Specifics enumeration** — :meth:`RadixTrie.covered` yields every entry
  inside a covering prefix by subtree walk
  (:mod:`repro.bgp.aggregation`, and the traffic evaluator's inverted
  destination index, which turns "which destinations does this changed
  prefix touch?" from a scan over all destinations into a subtree walk).
* **Exact-match bookkeeping** — :meth:`insert` / :meth:`remove` /
  :meth:`get` with dict-like semantics.

Determinism: iteration (:meth:`entries`, :meth:`covered`) is pre-order
left-before-right, which equals ``(value, length)`` ascending — a pure
function of the entry set, independent of insertion order.

Interior nodes are retained after :meth:`remove` (the entry just clears):
aggregation cycles re-insert the same specifics repeatedly, so keeping the
skeleton trades a bounded sliver of memory for churn-free updates — the
same policy the original bit-at-a-time trie used.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from . import ADDRESS_BITS, PrefixSpec

_TOP_BIT = 1 << (ADDRESS_BITS - 1)


class _RadixNode:
    """One branching point: the common prefix ``(value, length)`` of every
    entry beneath it.  ``payload`` is only meaningful while ``has_entry``."""

    __slots__ = ("value", "length", "children", "has_entry", "spec", "payload")

    def __init__(self, value: int, length: int) -> None:
        self.value = value
        self.length = length
        self.children: List[Optional["_RadixNode"]] = [None, None]
        self.has_entry = False
        # The exact PrefixSpec object given to insert(), kept so queries
        # return it without re-validating a fresh instance per hit.
        self.spec: Optional[PrefixSpec] = None
        self.payload: object = None


def _bit(value: int, position: int) -> int:
    """Bit ``position`` of a 32-bit value, MSB first (position 0 = top)."""
    return (value >> (ADDRESS_BITS - 1 - position)) & 1


def _truncate(value: int, length: int) -> int:
    """``value`` with everything below the top ``length`` bits cleared."""
    if length <= 0:
        return 0
    return value & (((1 << length) - 1) << (ADDRESS_BITS - length))


def _common_prefix_length(a: int, b: int, limit: int) -> int:
    """Length of the longest shared leading bit-run of ``a``/``b`` (≤ limit)."""
    diff = a ^ b
    if diff == 0:
        return limit
    return min(limit, ADDRESS_BITS - diff.bit_length())


class RadixTrie:
    """Structured prefixes → payloads, with LPM and subtree enumeration.

    The key type is :class:`~repro.prefixes.PrefixSpec`; payloads are
    arbitrary.  Re-inserting a key replaces its payload.
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root = _RadixNode(0, 0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, spec: PrefixSpec) -> bool:
        node = self._find(spec)
        return node is not None and node.has_entry

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, spec: PrefixSpec, payload: object) -> None:
        """Store ``payload`` under ``spec`` (replacing any previous value)."""
        node = self._root
        while True:
            if node.length == spec.length and node.value == spec.value:
                if not node.has_entry:
                    node.has_entry = True
                    self._size += 1
                node.spec = spec
                node.payload = payload
                return
            # Invariant: node's key is a proper prefix of spec's.
            side = _bit(spec.value, node.length)
            child = node.children[side]
            if child is None:
                leaf = _RadixNode(spec.value, spec.length)
                leaf.has_entry = True
                leaf.spec = spec
                leaf.payload = payload
                node.children[side] = leaf
                self._size += 1
                return
            shared = _common_prefix_length(
                child.value, spec.value, min(child.length, spec.length)
            )
            if shared == child.length:
                node = child  # child's key prefixes spec: descend
                continue
            # Diverge inside the compressed edge: split at the shared run.
            mid = _RadixNode(_truncate(spec.value, shared), shared)
            mid.children[_bit(child.value, shared)] = child
            node.children[side] = mid
            if shared == spec.length:
                mid.has_entry = True
                mid.spec = spec
                mid.payload = payload
            else:
                leaf = _RadixNode(spec.value, spec.length)
                leaf.has_entry = True
                leaf.spec = spec
                leaf.payload = payload
                mid.children[_bit(spec.value, shared)] = leaf
            self._size += 1
            return

    def remove(self, spec: PrefixSpec) -> bool:
        """Drop the entry for ``spec``; True when one existed."""
        node = self._find(spec)
        if node is None or not node.has_entry:
            return False
        node.has_entry = False
        node.spec = None
        node.payload = None
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _find(self, spec: PrefixSpec) -> Optional[_RadixNode]:
        """The node holding exactly ``spec``'s key, or ``None``."""
        node = self._root
        while node.length < spec.length:
            child = node.children[_bit(spec.value, node.length)]
            if child is None or child.length > spec.length:
                return None
            if _truncate(spec.value, child.length) != child.value:
                return None
            node = child
        if node.length == spec.length and node.value == spec.value:
            return node
        return None

    def get(self, spec: PrefixSpec) -> Optional[object]:
        """The payload stored under exactly ``spec``, or ``None``."""
        node = self._find(spec)
        if node is None or not node.has_entry:
            return None
        return node.payload

    def lookup(self, address: int) -> Optional[Tuple[PrefixSpec, object]]:
        """Longest-prefix match: the most-specific entry containing
        ``address``, as ``(spec, payload)``, or ``None``."""
        best: Optional[_RadixNode] = None
        node: Optional[_RadixNode] = self._root
        while node is not None:
            if node.length and _truncate(address, node.length) != node.value:
                break
            if node.has_entry:
                best = node
            if node.length >= ADDRESS_BITS:
                break
            node = node.children[_bit(address, node.length)]
        if best is None:
            return None
        return (best.spec, best.payload)

    def covered(self, cover: PrefixSpec) -> List[Tuple[PrefixSpec, object]]:
        """Every entry equal to or more specific than ``cover``.

        This is specifics enumeration — the subtree walk aggregation and
        the traffic evaluator's inverted destination index rely on.
        Ordered ``(value, length)`` ascending, like :meth:`entries`.
        """
        node = self._root
        while node.length < cover.length:
            child = node.children[_bit(cover.value, node.length)]
            if child is None:
                return []
            if child.length >= cover.length:
                # The subtree at child either sits inside cover or misses it.
                if _truncate(child.value, cover.length) != cover.value:
                    return []
                node = child
                break
            if _truncate(cover.value, child.length) != child.value:
                return []
            node = child
        return list(self._walk(node))

    def entries(self) -> List[Tuple[PrefixSpec, object]]:
        """All live entries, ``(value, length)`` ascending — deterministic."""
        return list(self._walk(self._root))

    def _walk(self, node: _RadixNode) -> Iterator[Tuple[PrefixSpec, object]]:
        # Pre-order, left before right: ascending (value, length) because a
        # parent's value lower-bounds its subtree and bit-0 children sort
        # below bit-1 children.
        stack = [node]
        while stack:
            current = stack.pop()
            if current.has_entry:
                yield (current.spec, current.payload)
            right = current.children[1]
            if right is not None:
                stack.append(right)
            left = current.children[0]
            if left is not None:
                stack.append(left)
