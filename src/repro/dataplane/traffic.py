"""Constant-rate traffic sources.

"Every other AS has one host that sends a constant rate IP packet stream to
the destination ... We intentionally set a slow data packet rate of 10
packets per second to avoid congestion" (§4).  :class:`CbrSource` describes
one such stream arithmetically — packet *k* departs at ``start + k / rate`` —
so the epoch evaluator can count packets in an interval in O(1) instead of
enumerating them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from ..prefixes import parse_prefix

DEFAULT_PACKET_RATE = 10.0
"""Packets per second per source (the paper's setting)."""


@dataclass(frozen=True)
class CbrSource:
    """One constant-bit-rate packet stream from ``node``.

    ``start`` anchors the stream's phase: the k-th packet (k = 0, 1, ...)
    departs at ``start + k / rate``, forever.
    """

    node: int
    rate: float = DEFAULT_PACKET_RATE
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"packet rate must be positive, got {self.rate}")

    @property
    def interval(self) -> float:
        """Seconds between consecutive packets."""
        return 1.0 / self.rate

    def first_index_at_or_after(self, time: float) -> int:
        """Smallest k whose departure time is >= ``time``."""
        if time <= self.start:
            return 0
        return math.ceil((time - self.start) * self.rate - 1e-12)

    def departure_time(self, index: int) -> float:
        """Departure time of packet ``index``."""
        if index < 0:
            raise ConfigError(f"packet index must be >= 0, got {index}")
        return self.start + index / self.rate

    def count_in(self, t0: float, t1: float) -> int:
        """Packets departing in ``[t0, t1)``."""
        if t1 <= t0:
            return 0
        first = self.first_index_at_or_after(t0)
        beyond = self.first_index_at_or_after(t1)
        # [t0, t1) is half-open: a packet exactly at t1 belongs to the next
        # interval, which first_index_at_or_after already guarantees.
        return max(0, beyond - first)

    def times_in(self, t0: float, t1: float) -> Iterator[float]:
        """Departure times in ``[t0, t1)``, ascending.

        Boundary semantics are shared with :meth:`count_in` by iterating
        index-based between the same two ``first_index_at_or_after`` values,
        so ``len(list(times_in(a, b))) == count_in(a, b)`` always holds.
        """
        if t1 <= t0:
            return
        first = self.first_index_at_or_after(t0)
        beyond = self.first_index_at_or_after(t1)
        for index in range(first, beyond):
            yield self.departure_time(index)


def sources_for(
    nodes: List[int],
    destination: int,
    rate: float = DEFAULT_PACKET_RATE,
    start: float = 0.0,
    stagger: float = 0.0,
) -> List[CbrSource]:
    """One CBR source per non-destination node (the paper's workload).

    ``stagger`` optionally offsets each source's phase by
    ``node_index * stagger`` seconds, which avoids the artificial lockstep of
    every AS transmitting at identical instants; the default (0) matches the
    paper's plain setup.
    """
    sources = []
    for position, node in enumerate(sorted(nodes)):
        if node == destination:
            continue
        sources.append(CbrSource(node=node, rate=rate, start=start + position * stagger))
    return sources


# ----------------------------------------------------------------------
# Traffic matrices over prefix populations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Flow:
    """One CBR stream from ``source`` into ``prefix``.

    ``destination`` is what the packets are addressed to: a concrete integer
    address inside a structured prefix (resolved by longest match at every
    hop), or the prefix string itself for opaque legacy prefixes.  ``rate``
    is the flow's seeded weight — the heavier the flow, the more of the
    offered-traffic denominator it carries.
    """

    source: int
    prefix: str
    destination: Union[int, str]
    rate: float = DEFAULT_PACKET_RATE
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"flow rate must be positive, got {self.rate}")

    def as_cbr(self) -> CbrSource:
        """The flow's arrival process (for interval packet counting)."""
        return CbrSource(node=self.source, rate=self.rate, start=self.start)

    def count_in(self, t0: float, t1: float) -> int:
        """Packets this flow offers in ``[t0, t1)``."""
        return self.as_cbr().count_in(t0, t1)


@dataclass(frozen=True)
class TrafficMatrix:
    """A fixed set of flows — the demand side of the loop-damage metric."""

    flows: Tuple[Flow, ...]

    def __len__(self) -> int:
        return len(self.flows)

    def total_rate(self) -> float:
        return sum(flow.rate for flow in self.flows)

    def prefixes(self) -> List[str]:
        """Distinct target prefixes, sorted."""
        return sorted({flow.prefix for flow in self.flows})

    @classmethod
    def seeded(
        cls,
        nodes: Sequence[int],
        prefixes: Sequence[str],
        seed: int,
        rate_range: Tuple[float, float] = (1.0, DEFAULT_PACKET_RATE),
        start: float = 0.0,
        origins: Optional[Mapping[str, Tuple[int, ...]]] = None,
    ) -> "TrafficMatrix":
        """One flow per (source, prefix) with seeded rates and addresses.

        Rates are U[rate_range] per pair; the destination address of every
        flow for one structured prefix is a single seeded representative
        inside that prefix (drawn once per prefix, before the per-pair
        rates), which keeps evaluation vectorizable by destination.  Sources
        listed in ``origins[prefix]`` do not send to their own prefix — the
        paper's "every *other* AS" workload.  Iteration order is the sorted
        (prefix, node) grid, so the matrix is a pure function of the inputs.
        """
        low, high = rate_range
        if not (0 < low <= high):
            raise ConfigError(f"rate range must satisfy 0 < low <= high: {rate_range}")
        rng = random.Random(seed)
        flows: List[Flow] = []
        for prefix in sorted(set(prefixes)):
            spec = parse_prefix(prefix)
            if spec is None:
                destination: Union[int, str] = prefix
            else:
                destination = spec.value + rng.randrange(spec.size)
            skip = frozenset(origins.get(prefix, ()) if origins else ())
            for node in sorted(set(nodes)):
                if node in skip:
                    continue
                rate = rng.uniform(low, high)
                flows.append(
                    Flow(
                        source=node,
                        prefix=prefix,
                        destination=destination,
                        rate=rate,
                        start=start,
                    )
                )
        return cls(flows=tuple(flows))
