"""Job execution: specs in, events out, artifacts on disk.

One function per job kind, dispatched by :func:`execute_job`.  The
executor is deliberately synchronous — the daemon runs it on a worker
thread (``asyncio.to_thread``) so the socket loop stays responsive —
and communicates outward only through:

* the ``publish`` callback (events from :mod:`repro.service.events`),
* the job's trial journal / artifact directory on disk,
* its :class:`ExecutionOutcome` return value.

Sweep jobs run through :func:`~repro.experiments.journal.
checkpointed_sweep` against the job's own journal, with per-trial
digests on.  That single decision is what buys the service its headline
property: after ``kill -9``, re-executing the job re-runs only the
missing ``(x, seed)`` trials, and the journal's digests are directly
comparable to an undisturbed foreground run of the same plan.

Cancellation is cooperative: the daemon's ``should_cancel`` callback is
polled at every trial completion, and a positive answer raises
:class:`JobCancelled` — the journal checkpoint in the ``finally`` block
keeps everything finished so far, so a cancelled job resubmitted later
resumes rather than restarts.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ReproError, ServiceError
from ..experiments import SweepJournal, checkpointed_sweep
from ..telemetry import MetricsSnapshot, Timeline
from .events import log_event, point_event, snapshot_event, trial_event
from .jobs import JobView, resolve_sweep_plan
from .state import ServiceState


class JobCancelled(ReproError):
    """Raised inside the executor when the daemon requests cancellation."""


@dataclass
class ExecutionOutcome:
    """What a finished (or cancelled/failed) job leaves behind."""

    state: str  # done / failed / cancelled
    detail: Dict = field(default_factory=dict)


def sweep_digest(records: Dict) -> str:
    """One SHA-256 over a journal's per-trial digests.

    The combined fingerprint of a whole sweep: equal iff the two record
    sets cover the same ``(x, seed)`` keys with identical per-trial
    digests.  Used to compare a service run (possibly SIGKILLed and
    resumed) against an undisturbed foreground run.
    """
    digest = hashlib.sha256()
    for key in sorted(records):
        record = records[key]
        digest.update(f"{record.x!r}:{record.seed}:{record.digest}\n".encode())
    return digest.hexdigest()


def _noop_publish(event: Dict) -> None:
    return None


def _never_cancel() -> bool:
    return False


def execute_sweep(
    view: JobView,
    state: ServiceState,
    publish: Callable[[Dict], None] = _noop_publish,
    should_cancel: Callable[[], bool] = _never_cancel,
) -> ExecutionOutcome:
    """Run (or resume) one sweep job against its durable trial journal."""
    plan = resolve_sweep_plan(view.spec.params)
    job_id = view.job_id
    journal = SweepJournal(state.journal_path(job_id))
    timeline = Timeline()
    started = time.monotonic()
    snapshots: List[MetricsSnapshot] = []
    reports: List = []
    counts = {"ok": 0, "failed": 0}

    def on_progress(progress) -> None:
        if should_cancel():
            raise JobCancelled(f"job {job_id} cancelled")
        counts["ok" if progress.ok else "failed"] += 1
        timeline.instant(
            time.monotonic() - started,
            f"trial x={progress.x:g} seed={progress.seed}",
            "service.trial",
            ok=progress.ok,
            done=progress.done,
            total=progress.total,
        )
        publish(
            trial_event(job_id, progress.x, progress.seed, progress.ok)
        )

    def on_point(x: float, point) -> None:
        snapshots.append(point.telemetry())
        try:
            stats = point.metrics()
        except ReproError:
            stats = {}
        timeline.instant(
            time.monotonic() - started,
            f"point x={x:g}",
            "service.point",
            succeeded=point.succeeded,
            failed=point.failed,
        )
        publish(
            point_event(
                job_id,
                x,
                {
                    "succeeded": point.succeeded,
                    "failed": point.failed,
                    "timeouts": point.timeouts,
                    "metrics": stats,
                },
            )
        )

    try:
        summaries = checkpointed_sweep(
            plan.xs,
            plan.make_scenario,
            plan.make_config,
            journal=journal,
            seeds=plan.seeds,
            settings=plan.settings,
            jobs=plan.jobs,
            policy=plan.policy,
            digests=plan.digests,
            on_progress=on_progress,
            on_point=on_point,
            on_report=reports.append,
        )
    finally:
        # Checkpoint whatever finished — this is the resume point after
        # a cancel, a trial-level crash, or a daemon SIGKILL mid-close.
        journal.close()

    records = journal.records
    combined = sweep_digest(records) if plan.digests else ""

    aggregate = MetricsSnapshot.aggregate(snapshots)
    supervision = None
    for report in reports:
        supervision = report if supervision is None else supervision.merged(report)
    if supervision is not None and supervision.metrics is not None:
        aggregate = MetricsSnapshot.aggregate(
            [aggregate, supervision.metrics]
        )
    publish(snapshot_event(job_id, aggregate))

    state.artifact_dir(job_id).mkdir(parents=True, exist_ok=True)
    timeline.span(
        0.0, time.monotonic() - started, f"job {job_id}", "service.job"
    )
    trace_path = state.artifact_dir(job_id) / "timeline.json"
    timeline.write_chrome_trace(str(trace_path), process_name=f"repro-{job_id}")
    publish(log_event(job_id, f"timeline artifact: {trace_path}"))

    detail: Dict = {
        "points": len(summaries),
        "trials": len(records),
        "ok": sum(1 for record in records.values() if record.ok),
        "failed": sum(1 for record in records.values() if not record.ok),
        "digest": combined,
        "journal": str(journal.path),
        "timeline": str(trace_path),
    }
    if supervision is not None:
        detail["supervision"] = {
            "trials": supervision.trials,
            "completed": supervision.completed,
            "retries": supervision.retries,
            "worker_deaths": supervision.worker_deaths,
            "timeouts": supervision.timeouts,
        }
    return ExecutionOutcome(state="done", detail=detail)


def execute_figure(
    view: JobView,
    state: ServiceState,
    publish: Callable[[Dict], None] = _noop_publish,
    should_cancel: Callable[[], bool] = _never_cancel,
) -> ExecutionOutcome:
    """Render one paper figure into the job's artifact directory."""
    import inspect

    from ..cli import FIGURES, QUICK_FIGURE_KWARGS

    figure_id = view.spec.params.get("id")
    if figure_id not in FIGURES:
        raise ServiceError(f"unknown figure {figure_id!r}")
    if should_cancel():
        raise JobCancelled(f"job {view.job_id} cancelled")
    driver = FIGURES[figure_id]
    quick = bool(view.spec.params.get("quick", True))
    kwargs = dict(QUICK_FIGURE_KWARGS.get(figure_id, {})) if quick else {}
    jobs = view.spec.params.get("jobs", 1)
    if "jobs" in inspect.signature(driver).parameters:
        kwargs["jobs"] = jobs
    figure = driver(**kwargs)
    rendered = figure.render()
    directory = state.artifact_dir(view.job_id)
    directory.mkdir(parents=True, exist_ok=True)
    table_path = directory / f"{figure_id}.txt"
    table_path.write_text(rendered + "\n", encoding="utf-8")
    publish(log_event(view.job_id, f"figure artifact: {table_path}"))
    failures = [str(check) for check in figure.check_failures()]
    return ExecutionOutcome(
        state="done",
        detail={
            "figure": figure_id,
            "artifact": str(table_path),
            "shape_failures": failures,
        },
    )


def execute_bench(
    view: JobView,
    state: ServiceState,
    publish: Callable[[Dict], None] = _noop_publish,
    should_cancel: Callable[[], bool] = _never_cancel,
) -> ExecutionOutcome:
    """Run one continuous-benchmarking cycle and record the trajectory."""
    from .bench import run_bench_cycle

    if should_cancel():
        raise JobCancelled(f"job {view.job_id} cancelled")
    params = view.spec.params
    cycle = run_bench_cycle(
        targets=params.get("targets") or None,
        repeat=int(params.get("repeat", 1)),
        bench_dir=params.get("bench_dir"),
        results_dir=params.get("results_dir"),
        publish=lambda message: publish(log_event(view.job_id, message)),
    )
    return ExecutionOutcome(
        state="done" if cycle.ok else "failed",
        detail=cycle.summary(),
    )


_EXECUTORS = {
    "sweep": execute_sweep,
    "figure": execute_figure,
    "bench": execute_bench,
}


def execute_job(
    view: JobView,
    state: ServiceState,
    publish: Callable[[Dict], None] = _noop_publish,
    should_cancel: Callable[[], bool] = _never_cancel,
) -> ExecutionOutcome:
    """Dispatch one job to its kind's executor.

    Returns the outcome instead of raising: failures come back as
    ``state="failed"`` with the error message in ``detail``, and a
    :class:`JobCancelled` comes back as ``state="cancelled"`` — the
    daemon turns these into queue transitions and ``end`` events.
    """
    try:
        runner = _EXECUTORS[view.spec.kind]
    except KeyError:
        return ExecutionOutcome(
            state="failed",
            detail={"error": f"unknown job kind {view.spec.kind!r}"},
        )
    try:
        return runner(view, state, publish, should_cancel)
    except JobCancelled:
        return ExecutionOutcome(state="cancelled", detail={})
    except ReproError as exc:
        return ExecutionOutcome(
            state="failed",
            detail={"error": str(exc), "kind": type(exc).__name__},
        )
