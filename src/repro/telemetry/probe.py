"""The telemetry probe: the hook object the simulator layers call into.

A :class:`TelemetryProbe` bundles a :class:`~repro.telemetry.registry.
MetricsRegistry` and an optional :class:`~repro.telemetry.timeline.
Timeline` behind the duck-typed hook methods the engine, net, bgp, and
dataplane layers invoke.  Installation mirrors the sanitizer hooks:
:meth:`repro.engine.Scheduler.install_telemetry` sets
``scheduler.telemetry``, other layers reach it through their scheduler
reference, and every instrumentation point is guarded by a single
``if telemetry is not None`` — a run without telemetry pays one
attribute read per hook site and nothing more.

The probe only *observes*.  It never draws randomness, schedules
events, or reads the wall clock, so installing it cannot change a run's
event order or its determinism digest.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .registry import Counter, MetricsRegistry
from .timeline import Timeline

#: Fixed BGP message header size (RFC 4271 §4.1), bytes.
_HEADER_BYTES = 19
#: Modeled per-hop cost of the AS_PATH attribute (2-byte ASN).
_AS_HOP_BYTES = 2
#: Modeled NLRI / withdrawn-routes entry (1-byte length + /24 prefix + attrs
#: scaffolding); coarse, but consistent across variants so *relative*
#: overhead comparisons are meaningful.
_PREFIX_BYTES = 7
#: OPEN body: version, my-AS, hold time, BGP identifier, opt-param length.
_OPEN_BODY_BYTES = 10


def estimate_wire_size(message: Any) -> int:
    """A modeled wire size in bytes for a control-plane message.

    The simulator never serializes messages, so byte counters use this
    estimate: the RFC 4271 fixed header plus a per-kind body.  Unknown
    message types count as a bare header.
    """
    path = getattr(message, "path", None)
    if path is not None:  # Announcement
        return _HEADER_BYTES + _PREFIX_BYTES + _AS_HOP_BYTES * len(path)
    if hasattr(message, "prefix"):  # Withdrawal
        return _HEADER_BYTES + _PREFIX_BYTES
    if hasattr(message, "echo"):  # Open
        return _HEADER_BYTES + _OPEN_BODY_BYTES
    return _HEADER_BYTES  # Keepalive and anything else


class TelemetryProbe:
    """Metrics + timeline recording behind the simulator's hook points.

    Parameters
    ----------
    registry:
        Destination for counters/gauges/histograms; a fresh
        :class:`MetricsRegistry` when omitted.
    timeline:
        When given, the probe also records simulation-time instants for
        the sparse, plot-worthy events (MRAI expiries, FIB changes);
        dense per-event instrumentation stays metrics-only so traces
        remain loadable.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        timeline: Optional[Timeline] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeline = timeline
        reg = self.registry
        # Hot-path metrics are bound once here so hook calls do no dict
        # lookups beyond the per-kind caches.
        self._events_scheduled = reg.counter("engine.events_scheduled")
        self._events_executed = reg.counter("engine.events_executed")
        self._housekeeping_scheduled = reg.counter(
            "engine.housekeeping_scheduled"
        )
        self._heap_depth = reg.gauge("engine.heap_depth")
        self._channel_occupancy = reg.histogram("net.channel_occupancy")
        self._in_flight_dropped = reg.counter("net.in_flight_dropped")
        self._cpu_queue = reg.histogram("node.cpu_queue")
        self._decisions = reg.counter("bgp.decision_runs")
        self._mrai_expiries = reg.counter("bgp.mrai_expiries")
        self._fib_changes = reg.counter("dataplane.fib_changes")
        self._sent_by_kind: Dict[str, Counter] = {}
        self._bytes_by_kind: Dict[str, Counter] = {}
        self._delivered_by_kind: Dict[str, Counter] = {}
        self._suppressed_by_reason: Dict[str, Counter] = {}
        self._variant_extras: Dict[str, Counter] = {}

    # ------------------------------------------------------------------
    # Engine hooks (Scheduler)
    # ------------------------------------------------------------------

    def on_event_scheduled(
        self, now: float, time: float, name: Optional[str], housekeeping: bool
    ) -> None:
        self._events_scheduled.inc()
        if housekeeping:
            self._housekeeping_scheduled.inc()

    def on_event_fired(
        self, time: float, name: Optional[str], heap_depth: int
    ) -> None:
        self._events_executed.inc()
        self._heap_depth.set(heap_depth)

    # ------------------------------------------------------------------
    # Net hooks (Channel / Node)
    # ------------------------------------------------------------------

    def on_message_sent(
        self, src: int, dst: int, message: Any, in_flight: int
    ) -> None:
        kind = type(message).__name__
        counter = self._sent_by_kind.get(kind)
        if counter is None:
            counter = self._sent_by_kind[kind] = self.registry.counter(
                f"net.messages_sent.{kind}"
            )
        counter.inc()
        by = self._bytes_by_kind.get(kind)
        if by is None:
            by = self._bytes_by_kind[kind] = self.registry.counter(
                f"net.bytes_sent.{kind}"
            )
        by.inc(estimate_wire_size(message))
        self._channel_occupancy.observe(in_flight)

    def on_message_delivered(self, src: int, dst: int, message: Any) -> None:
        kind = type(message).__name__
        counter = self._delivered_by_kind.get(kind)
        if counter is None:
            counter = self._delivered_by_kind[kind] = self.registry.counter(
                f"net.messages_delivered.{kind}"
            )
        counter.inc()

    def on_in_flight_dropped(self, src: int, dst: int, count: int) -> None:
        self._in_flight_dropped.inc(count)

    def on_cpu_enqueue(self, node: int, queue_length: int) -> None:
        self._cpu_queue.observe(queue_length)

    # ------------------------------------------------------------------
    # BGP hooks (Speaker)
    # ------------------------------------------------------------------

    def on_decision(self, node: int, prefix: str) -> None:
        self._decisions.inc()

    def on_mrai_expiry(self, time: float, node: int, peer: int, prefix: str) -> None:
        self._mrai_expiries.inc()
        if self.timeline is not None:
            self.timeline.instant(
                time, "mrai-expiry", "bgp", track=node, peer=peer, prefix=prefix
            )

    def on_update_suppressed(
        self, node: int, peer: int, prefix: str, reason: str
    ) -> None:
        """An update the speaker wanted to send but held.

        ``reason`` is one of ``"mrai"`` (announcement held by the timer),
        ``"wrate"`` (withdrawal held, WRATE variant), or ``"duplicate"``
        (Adj-RIB-Out already holds the desired state).
        """
        counter = self._suppressed_by_reason.get(reason)
        if counter is None:
            counter = self._suppressed_by_reason[reason] = self.registry.counter(
                f"bgp.updates_suppressed.{reason}"
            )
        counter.inc()

    def on_variant_extra(self, node: int, kind: str) -> None:
        """A variant-specific protocol action (``ssld_conversion``,
        ``ghost_flush``, ``poison_reverse``, ``assertion_removal``)."""
        counter = self._variant_extras.get(kind)
        if counter is None:
            counter = self._variant_extras[kind] = self.registry.counter(
                f"bgp.variant.{kind}"
            )
        counter.inc()

    # ------------------------------------------------------------------
    # Dataplane hooks
    # ------------------------------------------------------------------

    def on_fib_change(
        self, time: float, node: int, prefix: str, next_hop: Optional[int]
    ) -> None:
        self._fib_changes.inc()
        if self.timeline is not None:
            self.timeline.instant(
                time,
                "fib-change",
                "dataplane",
                track=node,
                prefix=prefix,
                next_hop=next_hop,
            )

    # ------------------------------------------------------------------

    def snapshot(self):
        """Freeze the registry (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()
