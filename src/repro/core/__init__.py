"""The paper's primary contribution: transient-loop analysis for path-vector
routing.

* :mod:`.loop_detector` — find loops in forwarding graphs and their
  lifetimes in FIB history,
* :mod:`.convergence` — the convergence-time measurement,
* :mod:`.loop_metrics` — the §4.2 metric set per run,
* :mod:`.loop_theory` — the §3.2 analytical bounds,
* :mod:`.observations` — machine-checkable Observations 1-3.
"""

from .churn import UpdateChurn
from .convergence import ConvergenceReport, measure_convergence
from .exploration import ExplorationReport, RouteChange, RouteChangeLog
from .loop_detector import (
    LoopInterval,
    find_loops,
    is_loop_free,
    longest_loop_duration,
    loop_size_histogram,
    loop_timeline,
    nodes_in_loops,
)
from .loop_metrics import LoopStudyResult
from .loop_stats import LoopStatistics, percentile
from .loop_theory import (
    PropagationStep,
    loop_formation_example,
    resolution_schedule,
    schedule_resolution_time,
    worst_case_detection_delay,
    worst_case_loop_duration,
)
from .observations import (
    ObservationCheck,
    check_duration_coupling,
    check_enhancement_ranking,
    check_linear_in_mrai,
    check_ratio_constant,
    check_tlong_gap,
    check_wrate_regression,
)

__all__ = [
    "ConvergenceReport",
    "ExplorationReport",
    "LoopInterval",
    "LoopStatistics",
    "LoopStudyResult",
    "ObservationCheck",
    "PropagationStep",
    "RouteChange",
    "RouteChangeLog",
    "UpdateChurn",
    "check_duration_coupling",
    "check_enhancement_ranking",
    "check_linear_in_mrai",
    "check_ratio_constant",
    "check_tlong_gap",
    "check_wrate_regression",
    "find_loops",
    "is_loop_free",
    "longest_loop_duration",
    "loop_formation_example",
    "loop_size_histogram",
    "loop_timeline",
    "measure_convergence",
    "nodes_in_loops",
    "percentile",
    "resolution_schedule",
    "schedule_resolution_time",
    "worst_case_detection_delay",
    "worst_case_loop_duration",
]
