"""Unit tests for repro.net.network."""

import pytest

from repro.engine import Scheduler
from repro.errors import NetworkError
from repro.net import Network, Node
from repro.topology import Topology, clique


class Recorder(Node):
    def __init__(self, node_id, scheduler):
        super().__init__(node_id, scheduler)
        self.inbox = []
        self.events = []
        self.started = False

    def start(self):
        self.started = True

    def handle_message(self, src, message):
        self.inbox.append((src, message))

    def on_link_down(self, neighbor):
        self.events.append(("down", neighbor))

    def on_link_up(self, neighbor):
        self.events.append(("up", neighbor))


@pytest.fixture
def net(scheduler):
    return Network(clique(4), scheduler, lambda nid, sch: Recorder(nid, sch))


class TestConstruction:
    def test_one_node_per_topology_node(self, net):
        assert sorted(net.nodes) == [0, 1, 2, 3]

    def test_one_link_per_topology_edge(self, net):
        assert len(net.links) == 6

    def test_factory_must_honor_node_id(self, scheduler):
        with pytest.raises(NetworkError, match="factory returned"):
            Network(clique(2), scheduler, lambda nid, sch: Recorder(nid + 1, sch))

    def test_unknown_node_lookup(self, net):
        with pytest.raises(NetworkError):
            net.node(99)

    def test_unknown_link_lookup(self, net):
        with pytest.raises(NetworkError):
            net.link(0, 99)


class TestMessaging:
    def test_send_records_trace(self, scheduler, net):
        net.send(0, 1, "m")
        assert len(net.trace) == 1
        record = net.trace.records()[0]
        assert (record.src, record.dst, record.message) == (0, 1, "m")

    def test_send_over_down_link_raises(self, net):
        net.fail_link(0, 1)
        with pytest.raises(NetworkError, match="down"):
            net.send(0, 1, "m")

    def test_total_messages(self, net):
        net.send(0, 1, "a")
        net.send(1, 2, "b")
        assert net.total_messages() == 2


class TestFailureInjection:
    def test_fail_link_notifies_both_ends(self, net):
        net.fail_link(0, 1)
        assert ("down", 1) in net.node(0).events
        assert ("down", 0) in net.node(1).events

    def test_fail_link_idempotent(self, net):
        net.fail_link(0, 1)
        net.fail_link(0, 1)
        assert net.node(0).events.count(("down", 1)) == 1

    def test_live_neighbors_reflect_failures(self, net):
        net.fail_link(0, 1)
        assert net.live_neighbors(0) == [2, 3]

    def test_restore_link_notifies(self, net):
        net.fail_link(0, 1)
        net.restore_link(0, 1)
        assert ("up", 1) in net.node(0).events
        assert net.link_is_up(0, 1)

    def test_restore_up_link_is_noop(self, net):
        net.restore_link(0, 1)
        assert net.node(0).events == []

    def test_scheduled_failure_fires_at_time(self, scheduler, net):
        net.schedule_link_failure(0, 1, at=5.0)
        assert net.link_is_up(0, 1)
        scheduler.run()
        assert not net.link_is_up(0, 1)

    def test_scheduled_failure_validates_link_eagerly(self, net):
        with pytest.raises(NetworkError):
            net.schedule_link_failure(0, 99, at=5.0)

    def test_in_flight_messages_dropped_on_failure(self, scheduler, net):
        net.send(0, 1, "doomed")
        net.fail_link(0, 1)
        scheduler.run()
        assert net.node(1).inbox == []


class TestLifecycle:
    def test_start_invokes_all_nodes(self, net):
        net.start()
        assert all(node.started for node in net.nodes.values())
