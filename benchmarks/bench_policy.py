"""Extension study: routing policy vs transient looping.

The paper simulates shortest-path routing and notes that "a topology (or
policy) change can lead to inconsistent routing state".  This benchmark
asks the converse question: does a *realistic* policy change the looping
picture?  Running the same Tdown events under Gao-Rexford export rules
(customer/peer/provider relationships derived from the generator's tiers)
shows that valley-free filtering prunes most of the obsolete backup paths
that path exploration walks through — convergence collapses to a few
update rounds and transient loops all but disappear.

This is consistent with the analysis literature: BGP's slow convergence
and its transient loops are driven by the *size of the explorable path
space*, and policy restrictions shrink that space.  The paper's
shortest-path setting is thus the conservative (worst-ish) case.
"""

from _support import RESULTS_DIR

from repro.bgp import BgpConfig, GaoRexfordPolicy, relationships_from_tiers
from repro.experiments import RunSettings, custom_tdown, run_experiment
from repro.topology import InternetShape, choose_destination, internet_like_with_tiers
from repro.util import mean, render_table

SIZES = (29, 48, 75)
SEEDS = (0, 1)
#: Gao-Rexford needs a genuine tier-1 mesh (peer routes never transit peers).
SHAPE = InternetShape(core_mesh_probability=1.0)


def run_comparison():
    rows = []
    totals = {"shortest-path": [0.0, 0.0], "gao-rexford": [0.0, 0.0]}
    for n in SIZES:
        for policy_name in ("shortest-path", "gao-rexford"):
            conv, exh = [], []
            for seed in SEEDS:
                topo, tiers = internet_like_with_tiers(n, seed=seed, shape=SHAPE)
                destination = choose_destination(topo, seed=seed)
                scenario = custom_tdown(topo, destination, name=f"gr-{n}-s{seed}")
                if policy_name == "gao-rexford":
                    relationships = relationships_from_tiers(topo, tiers)
                    factory = lambda nid: GaoRexfordPolicy(relationships[nid])
                else:
                    factory = None
                result = run_experiment(
                    scenario,
                    BgpConfig.standard(30.0),
                    RunSettings(),
                    seed=seed,
                    policy_factory=factory,
                ).result
                conv.append(result.convergence_time)
                exh.append(float(result.ttl_exhaustions))
            rows.append([n, policy_name, mean(conv), mean(exh)])
            totals[policy_name][0] += mean(conv)
            totals[policy_name][1] += mean(exh)
    return rows, totals


def test_policy_ablation_gao_rexford(benchmark):
    rows, totals = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = render_table(
        ["size", "policy", "convergence_s", "ttl_exhaustions"],
        rows,
        title="Tdown under shortest-path vs Gao-Rexford policies",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "policy_ablation.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)
    sp_conv, sp_exh = totals["shortest-path"]
    gr_conv, gr_exh = totals["gao-rexford"]
    # Valley-free filtering shrinks the explorable path space: convergence
    # and looping both drop by a large factor.
    assert gr_conv < 0.5 * sp_conv
    assert gr_exh < 0.25 * sp_exh
