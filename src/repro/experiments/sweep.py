"""Parameter sweeps with repeated seeded trials.

Every figure in the paper is a sweep: an x-axis (topology size or MRAI
value), one or more measured series, each point averaged over repeated runs
("the simulation were repeated for a number of times").  :func:`sweep`
captures that pattern once so the per-figure drivers stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..bgp import BgpConfig
from ..core import LoopStudyResult
from ..errors import AnalysisError
from ..util.stats import mean
from .config import RunSettings
from .runner import ExperimentRun, run_experiment
from .scenarios import Scenario

ScenarioFactory = Callable[[float, int], Scenario]
"""``factory(x, seed) -> Scenario`` for the sweep's x value and trial seed."""

ConfigFactory = Callable[[float], BgpConfig]
"""``factory(x) -> BgpConfig`` for the sweep's x value."""


@dataclass
class SweepPoint:
    """All trials at one x value."""

    x: float
    runs: List[ExperimentRun] = field(default_factory=list)

    @property
    def results(self) -> List[LoopStudyResult]:
        return [run.result for run in self.runs]

    def mean_metric(self, name: str) -> float:
        """Trial-mean of one ``LoopStudyResult.summary_row()`` metric."""
        values = [result.summary_row()[name] for result in self.results]
        if not values:
            raise AnalysisError(f"no runs at x={self.x}")
        return mean(values)

    def metrics(self) -> Dict[str, float]:
        """Trial-mean of every summary metric."""
        if not self.runs:
            raise AnalysisError(f"no runs at x={self.x}")
        keys = self.results[0].summary_row().keys()
        return {key: self.mean_metric(key) for key in keys}


def sweep(
    xs: Sequence[float],
    make_scenario: ScenarioFactory,
    make_config: ConfigFactory,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
) -> List[SweepPoint]:
    """Run ``len(xs) × len(seeds)`` experiments and group them by x.

    The scenario factory receives the trial seed so randomized scenarios
    (Internet-derived destination/link choice) vary across trials, exactly
    as the paper repeats runs "with different destination ASes and failed
    links".
    """
    if not xs:
        raise AnalysisError("sweep needs at least one x value")
    if not seeds:
        raise AnalysisError("sweep needs at least one seed")
    points: List[SweepPoint] = []
    for x in xs:
        point = SweepPoint(x=x)
        for seed in seeds:
            scenario = make_scenario(x, seed)
            config = make_config(x)
            point.runs.append(
                run_experiment(scenario, config, settings=settings, seed=seed)
            )
        points.append(point)
    return points


def series(points: Sequence[SweepPoint], metric: str) -> List[float]:
    """Extract one metric's trial-mean series across the sweep."""
    return [point.mean_metric(metric) for point in points]


def xs_of(points: Sequence[SweepPoint]) -> List[float]:
    """The sweep's x values, in run order."""
    return [point.x for point in points]
