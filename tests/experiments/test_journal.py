"""The crash-safe trial journal: CRC framing, recovery, signal guard.

The acceptance-criterion scenario — resume from a journal whose final
record was truncated mid-write — lives in
``TestCheckpointedSweep.test_resume_from_truncated_final_record``.
"""

import json
import os
import signal
import zlib

import pytest

from repro.bgp import BgpConfig
from repro.errors import JournalError
from repro.experiments import (
    PointSummary,
    RunSettings,
    SweepJournal,
    TrialRecord,
    checkpointed_sweep,
    clique_tdown_trial,
    constant_config,
    factory_ref,
)
from repro.experiments.journal import (
    decode_record,
    encode_record,
    summarize_point,
)

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
MAKE_CONFIG = factory_ref(constant_config, config=FAST)


def ok_record(x, seed, attempt=1, **metrics):
    return TrialRecord(
        x=x, seed=seed, status="ok", attempt=attempt,
        metrics=metrics or {"updates": 10.0},
    )


class TestRecordCodec:
    def test_round_trip(self):
        record = ok_record(3.0, 1, attempt=2, updates=42.0, loops=1.0)
        assert decode_record(encode_record(record)) == record

    def test_failed_record_round_trips_error(self):
        record = TrialRecord(
            x=4.0, seed=0, status="timeout", attempt=3,
            error="trial exceeded 2.0s", kind="TrialTimeoutError",
        )
        clone = decode_record(encode_record(record))
        assert clone.error == "trial exceeded 2.0s"
        assert clone.kind == "TrialTimeoutError"
        assert not clone.ok

    def test_crc_mismatch_rejected(self):
        line = encode_record(ok_record(3.0, 0))
        frame = json.loads(line)
        frame["crc"] ^= 1
        with pytest.raises(JournalError, match="CRC"):
            decode_record(json.dumps(frame))

    def test_malformed_json_rejected(self):
        with pytest.raises(JournalError):
            decode_record('{"crc": 12, "record": {bro')

    def test_missing_fields_rejected(self):
        body = json.dumps({"x": 3.0}, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode("utf-8"))
        with pytest.raises(JournalError):
            decode_record('{"crc": %d, "record": %s}' % (crc, body))


class TestLoadRecovery:
    def test_missing_file_is_empty_and_clean(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        records, recovery = journal.load()
        assert records == {}
        assert recovery.clean
        assert not recovery.truncated_tail

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        whole = encode_record(ok_record(3.0, 0))
        torn = encode_record(ok_record(4.0, 0))[:-7]
        path.write_text(whole + "\n" + torn, encoding="utf-8")
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3.0, 0)}
        assert recovery.truncated_tail
        assert recovery.corrupt == 0
        assert not recovery.clean

    def test_corrupt_midfile_record_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            encode_record(ok_record(3.0, 0)),
            '{"crc": 1, "record": {"x": "garbage"}}',
            encode_record(ok_record(5.0, 0)),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3.0, 0), (5.0, 0)}
        assert recovery.corrupt == 1
        assert not recovery.truncated_tail
        assert "corrupt" in recovery.render()

    def test_duplicate_key_last_write_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = ok_record(3.0, 0, attempt=1, updates=1.0)
        second = ok_record(3.0, 0, attempt=2, updates=99.0)
        path.write_text(
            encode_record(first) + "\n" + encode_record(second) + "\n",
            encoding="utf-8",
        )
        records, recovery = SweepJournal(path).load()
        assert records[(3.0, 0)] == second
        assert recovery.duplicates == 1
        assert recovery.loaded == 1


class TestJournalWrites:
    def test_append_then_reload(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.load()
        journal.append(ok_record(3.0, 0))
        journal.append(ok_record(3.0, 1))
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3.0, 0), (3.0, 1)}
        assert recovery.clean

    def test_checkpoint_compacts_duplicates_and_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        stale = encode_record(ok_record(3.0, 0, updates=1.0))
        path.write_text(stale + "\n" + stale[:-9], encoding="utf-8")
        journal = SweepJournal(path)
        journal.load()
        journal.append(ok_record(3.0, 0, attempt=2, updates=50.0))
        journal.checkpoint()
        assert not path.with_suffix(path.suffix + ".tmp").exists()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        records, recovery = SweepJournal(path).load()
        assert records[(3.0, 0)].metrics == {"updates": 50.0}
        assert recovery.clean

    def test_discard_removes_file_and_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.load()
        journal.append(ok_record(3.0, 0))
        journal.discard()
        assert not path.exists()
        assert journal.records == {}


class TestSignalGuard:
    def test_sigint_checkpoints_then_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.load()
        with pytest.raises(KeyboardInterrupt):
            with journal.guarded():
                journal.append(ok_record(3.0, 0))
                # Simulate a torn tail that only a checkpoint would fix.
                with path.open("a", encoding="utf-8") as handle:
                    handle.write('{"crc": 1, "rec')
                os.kill(os.getpid(), signal.SIGINT)
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3.0, 0)}
        assert recovery.clean  # checkpoint compacted the torn tail away

    def test_sigterm_checkpoints_and_redelivers_to_previous_handler(
        self, tmp_path
    ):
        delivered = []
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: delivered.append(signum)
        )
        try:
            path = tmp_path / "j.jsonl"
            journal = SweepJournal(path)
            journal.load()
            with journal.guarded():
                journal.append(ok_record(4.0, 0))
                os.kill(os.getpid(), signal.SIGTERM)
            assert delivered == [signal.SIGTERM]
            # Guard restored the pre-existing handler on the way out.
            assert signal.getsignal(signal.SIGTERM) is not signal.SIG_DFL
        finally:
            signal.signal(signal.SIGTERM, previous)
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(4.0, 0)}
        assert recovery.clean


class TestSummaries:
    def test_summarize_point_means_ok_trials_only(self):
        trials = [
            ok_record(3.0, 0, updates=10.0),
            ok_record(3.0, 1, updates=20.0),
            TrialRecord(x=3.0, seed=2, status="failed", error="boom"),
            TrialRecord(x=3.0, seed=3, status="timeout", error="slow"),
        ]
        summary = summarize_point(3.0, trials)
        assert isinstance(summary, PointSummary)
        assert summary.trials == 4
        assert summary.succeeded == 2
        assert summary.failed == 2  # timeouts are a subset of failures
        assert summary.timeouts == 1
        assert summary.metrics == {"updates": 15.0}

    def test_all_failed_point_has_empty_metrics(self):
        trials = [TrialRecord(x=6.0, seed=0, status="failed", error="x")]
        summary = summarize_point(6.0, trials)
        assert summary.succeeded == 0
        assert summary.metrics == {}


class TestCheckpointedSweep:
    def run_sweep(self, path, xs=(3, 4), seeds=(0, 1)):
        return checkpointed_sweep(
            list(xs),
            clique_tdown_trial,
            MAKE_CONFIG,
            journal=path,
            seeds=tuple(seeds),
            settings=SETTINGS,
        )

    def test_fresh_run_journals_every_trial(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        summaries = self.run_sweep(path)
        assert [s.x for s in summaries] == [3, 4]
        assert all(s.succeeded == 2 for s in summaries)
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert recovery.clean

    def test_rerun_executes_nothing(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = self.run_sweep(path)
        before = path.read_text(encoding="utf-8")
        again = self.run_sweep(path)
        assert [s.metrics for s in again] == [s.metrics for s in first]
        assert path.read_text(encoding="utf-8") == before

    def test_resume_from_truncated_final_record(self, tmp_path):
        """Acceptance criterion: a journal whose final record was torn
        mid-write resumes — only the torn trial re-runs, and its result
        matches what the undisturbed sweep produced."""
        path = tmp_path / "sweep.jsonl"
        complete = self.run_sweep(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4
        path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][:-10], encoding="utf-8"
        )
        resumed = self.run_sweep(path)
        assert [s.metrics for s in resumed] == [s.metrics for s in complete]
        records, recovery = SweepJournal(path).load()
        assert set(records) == {(3, 0), (3, 1), (4, 0), (4, 1)}
        assert recovery.clean  # close() checkpointed the repaired view

    def test_fresh_flag_discards_previous_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        bogus = TrialRecord(
            x=3, seed=0, status="ok", metrics={"updates_sent": -1.0}
        )
        path.write_text(encode_record(bogus) + "\n", encoding="utf-8")
        summaries = checkpointed_sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            journal=path,
            seeds=(0,),
            settings=SETTINGS,
            fresh=True,
        )
        assert summaries[0].metrics["updates_sent"] > 0

    def test_caller_owned_journal_is_not_closed(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.load()
        checkpointed_sweep(
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            journal=journal,
            seeds=(0,),
            settings=SETTINGS,
        )
        # Still usable: the library must not have closed what it borrowed.
        journal.append(ok_record(9.0, 0))
        assert (9.0, 0) in journal.records
        journal.close()
