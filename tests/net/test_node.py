"""Unit tests for repro.net.node."""

import pytest

from repro.engine import Scheduler
from repro.errors import NetworkError
from repro.net import Network, Node
from repro.topology import Topology, chain


class EchoNode(Node):
    """Test node that logs processed messages and link events."""

    def __init__(self, node_id, scheduler, service_time=lambda: 0.2):
        super().__init__(node_id, scheduler, service_time)
        self.log = []

    def handle_message(self, src, message):
        self.log.append((self.scheduler.now, src, message))

    def on_link_down(self, neighbor):
        self.log.append(("down", neighbor))

    def on_link_up(self, neighbor):
        self.log.append(("up", neighbor))


@pytest.fixture
def net(scheduler):
    return Network(chain(3), scheduler, lambda nid, sch: EchoNode(nid, sch))


class TestProcessingDelay:
    def test_handler_runs_after_service_time(self, scheduler, net):
        net.send(0, 1, "ping")
        scheduler.run()
        node1 = net.node(1)
        (when, src, msg), = node1.log
        assert src == 0 and msg == "ping"
        assert when == pytest.approx(0.002 + 0.2)  # link delay + service

    def test_messages_serialized_at_receiver(self, scheduler, net):
        net.send(0, 1, "a")
        net.send(2, 1, "b")
        scheduler.run()
        times = [entry[0] for entry in net.node(1).log]
        assert times == [pytest.approx(0.202), pytest.approx(0.402)]

    def test_messages_received_counter(self, scheduler, net):
        net.send(0, 1, "a")
        net.send(0, 1, "b")
        scheduler.run()
        assert net.node(1).messages_received == 2


class TestWiring:
    def test_neighbors_via_network(self, net):
        assert net.node(1).neighbors == [0, 2]

    def test_send_to_non_neighbor_raises(self, net):
        with pytest.raises(NetworkError):
            net.node(0).send(2, "x")

    def test_double_attach_rejected(self, scheduler, net):
        with pytest.raises(NetworkError, match="already attached"):
            net.node(0).attach(net)

    def test_detached_node_has_no_network(self, scheduler):
        node = EchoNode(9, scheduler)
        with pytest.raises(NetworkError, match="not attached"):
            node.network

    def test_base_handle_message_is_abstract(self, scheduler):
        node = Node(1, scheduler)
        with pytest.raises(NotImplementedError):
            node.handle_message(0, "x")

    def test_link_is_up_helper(self, net):
        assert net.node(0).link_is_up(1)
        assert not net.node(0).link_is_up(2)  # not adjacent
        net.fail_link(0, 1)
        assert not net.node(0).link_is_up(1)
