"""Simulation correctness tooling.

Two prongs guard the repository's reproducibility contract:

* :mod:`repro.analysis.lint` — a static AST pass with
  simulation-specific determinism rules (no wall clock, no unseeded
  randomness, no unordered iteration on emission paths, no mutable
  defaults, no float timestamp equality), run as ``python -m repro
  lint`` and in CI;
* :mod:`repro.analysis.sanitizers` — opt-in runtime invariant checkers
  (causality, per-channel FIFO, RIB coherence) wired into the engine,
  net, and BGP layers through a lightweight invariant-hook API; plus
  :mod:`repro.analysis.determinism`, the dual-run harness that proves a
  scenario bit-for-bit reproducible under a fixed seed.
"""

from .determinism import (
    DeterminismReport,
    RunFingerprint,
    check_determinism,
    fingerprint_run,
)
from .lint import RULES, LintViolation, lint_paths, lint_source
from .sanitizers import (
    SANITIZER_NAMES,
    CausalitySanitizer,
    FifoSanitizer,
    InvariantHooks,
    RibCoherenceSanitizer,
    SanitizerSuite,
    build_suite,
)

__all__ = [
    "CausalitySanitizer",
    "DeterminismReport",
    "FifoSanitizer",
    "InvariantHooks",
    "LintViolation",
    "RULES",
    "RibCoherenceSanitizer",
    "RunFingerprint",
    "SANITIZER_NAMES",
    "SanitizerSuite",
    "build_suite",
    "check_determinism",
    "fingerprint_run",
    "lint_paths",
    "lint_source",
]
