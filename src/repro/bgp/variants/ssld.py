"""Sender-Side Loop Detection (SSLD) [Labovitz et al., Sigcomm 2000].

"Before sending a path, a node checks whether the receiver is present in the
path; if so, the sender knows the path will be discarded by the receiver.
Instead of sending this path (which is subject to MRAI timer delay), [it]
will send a withdrawal message (which is not limited by the MRAI timer)."

The effect (paper §5): the poison-reverse information arrives without MRAI
delay, which resolves 2-node loops at processing/propagation speed — but for
loops of three or more nodes SSLD only applies when the receiver already
appears in the sender's new path, so its overall improvement is modest.
"""

from __future__ import annotations

from ..path import AsPath


def converts_to_withdrawal(receiver: int, advertised_path: AsPath) -> bool:
    """True when SSLD should replace this announcement with a withdrawal.

    ``advertised_path`` is the path as it would be sent (sender's AS at the
    head).  If the receiver appears anywhere in it, the receiver's
    path-based poison reverse would discard it — so the sender transmits the
    equivalent information as an immediate withdrawal instead.
    """
    return receiver in advertised_path
