"""Unit tests for repro.telemetry.probe (hooks and the wire-size model)."""

import pytest

from repro.bgp import AsPath
from repro.bgp.messages import Announcement, Keepalive, Open, Withdrawal
from repro.telemetry import MetricsRegistry, TelemetryProbe, Timeline, estimate_wire_size


class TestWireSize:
    def test_announcement_scales_with_path_length(self):
        short = Announcement(prefix="d0", path=AsPath([1]))
        long = Announcement(prefix="d0", path=AsPath([3, 2, 1]))
        assert estimate_wire_size(long) == estimate_wire_size(short) + 4

    def test_relative_ordering(self):
        announcement = Announcement(prefix="d0", path=AsPath([1]))
        withdrawal = Withdrawal(prefix="d0")
        open_msg = Open()
        keepalive = Keepalive()
        assert estimate_wire_size(keepalive) == 19  # bare RFC 4271 header
        assert estimate_wire_size(open_msg) > estimate_wire_size(keepalive)
        assert estimate_wire_size(withdrawal) > estimate_wire_size(keepalive)
        assert estimate_wire_size(announcement) > estimate_wire_size(withdrawal)

    def test_unknown_message_counts_as_header(self):
        class Mystery:
            pass

        assert estimate_wire_size(Mystery()) == 19


@pytest.fixture
def probe():
    return TelemetryProbe(timeline=Timeline())


class TestEngineHooks:
    def test_scheduled_and_housekeeping(self, probe):
        probe.on_event_scheduled(0.0, 1.0, "deliver", False)
        probe.on_event_scheduled(0.0, 2.0, "keepalive", True)
        snap = probe.snapshot()
        assert snap.counter("engine.events_scheduled") == 2
        assert snap.counter("engine.housekeeping_scheduled") == 1

    def test_fired_tracks_heap_high_water(self, probe):
        probe.on_event_fired(1.0, "a", heap_depth=5)
        probe.on_event_fired(2.0, "b", heap_depth=2)
        snap = probe.snapshot()
        assert snap.counter("engine.events_executed") == 2
        gauge = snap.gauges["engine.heap_depth"]
        assert gauge.value == 2 and gauge.high_water == 5


class TestNetHooks:
    def test_per_kind_message_and_byte_counts(self, probe):
        announcement = Announcement(prefix="d0", path=AsPath([2, 1]))
        probe.on_message_sent(0, 1, announcement, in_flight=1)
        probe.on_message_sent(0, 1, announcement, in_flight=2)
        probe.on_message_sent(1, 0, Withdrawal(prefix="d0"), in_flight=1)
        probe.on_message_delivered(0, 1, announcement)
        snap = probe.snapshot()
        assert snap.counter("net.messages_sent.Announcement") == 2
        assert snap.counter("net.messages_sent.Withdrawal") == 1
        assert snap.counter("net.messages_delivered.Announcement") == 1
        assert snap.counter("net.bytes_sent.Announcement") == 2 * (19 + 7 + 4)
        assert snap.histograms["net.channel_occupancy"].count == 3
        assert snap.histograms["net.channel_occupancy"].max == 2

    def test_in_flight_drops_and_cpu_queue(self, probe):
        probe.on_in_flight_dropped(0, 1, count=3)
        probe.on_cpu_enqueue(2, queue_length=4)
        snap = probe.snapshot()
        assert snap.counter("net.in_flight_dropped") == 3
        assert snap.histograms["node.cpu_queue"].max == 4


class TestBgpHooks:
    def test_decisions_and_suppressions(self, probe):
        probe.on_decision(1, "d0")
        probe.on_update_suppressed(1, 2, "d0", "mrai")
        probe.on_update_suppressed(1, 2, "d0", "duplicate")
        probe.on_update_suppressed(1, 3, "d0", "mrai")
        probe.on_variant_extra(1, "ghost_flush")
        snap = probe.snapshot()
        assert snap.counter("bgp.decision_runs") == 1
        assert snap.counter("bgp.updates_suppressed.mrai") == 2
        assert snap.counter("bgp.updates_suppressed.duplicate") == 1
        assert snap.counter("bgp.variant.ghost_flush") == 1

    def test_mrai_expiry_counts_and_marks_timeline(self, probe):
        probe.on_mrai_expiry(4.5, node=2, peer=3, prefix="d0")
        assert probe.snapshot().counter("bgp.mrai_expiries") == 1
        (record,) = probe.timeline.records("bgp")
        assert record.name == "mrai-expiry"
        assert record.time == 4.5 and record.track == 2


class TestDataplaneHooks:
    def test_fib_change_counts_and_marks_timeline(self, probe):
        probe.on_fib_change(6.0, node=3, prefix="d0", next_hop=1)
        probe.on_fib_change(7.0, node=3, prefix="d0", next_hop=None)
        assert probe.snapshot().counter("dataplane.fib_changes") == 2
        records = probe.timeline.records("dataplane")
        assert [r.name for r in records] == ["fib-change", "fib-change"]
        assert dict(records[1].args)["next_hop"] is None


class TestConstruction:
    def test_external_registry_is_used(self):
        registry = MetricsRegistry()
        probe = TelemetryProbe(registry=registry)
        probe.on_decision(0, "d0")
        assert registry.snapshot().counter("bgp.decision_runs") == 1

    def test_timeline_optional(self):
        probe = TelemetryProbe()
        probe.on_mrai_expiry(1.0, 0, 1, "d0")  # must not raise
        assert probe.timeline is None
