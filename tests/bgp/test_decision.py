"""Unit tests for the decision process."""

import pytest

from repro.bgp import AdjRibIn, AsPath, DecisionProcess, Route, ShortestPathPolicy


def route_via(neighbor, *tail, prefix="d"):
    return Route(prefix=prefix, path=AsPath((neighbor,) + tail), next_hop=neighbor)


@pytest.fixture
def decision():
    return DecisionProcess(ShortestPathPolicy())


@pytest.fixture
def rib():
    return AdjRibIn()


class TestSelect:
    def test_no_candidates_returns_none(self, decision, rib):
        assert decision.select("d", rib, originated=False) is None

    def test_origination_selected_when_alone(self, decision, rib):
        best = decision.select("d", rib, originated=True)
        assert best is not None and best.is_local

    def test_origination_beats_learned_routes(self, decision, rib):
        rib.put(5, route_via(5, 0))
        best = decision.select("d", rib, originated=True)
        assert best.is_local

    def test_shortest_path_wins(self, decision, rib):
        rib.put(5, route_via(5, 0))
        rib.put(6, route_via(6, 7, 0))
        assert decision.select("d", rib, originated=False).next_hop == 5

    def test_tie_break_by_neighbor_id(self, decision, rib):
        rib.put(9, route_via(9, 0))
        rib.put(3, route_via(3, 0))
        assert decision.select("d", rib, originated=False).next_hop == 3

    def test_candidates_includes_origin_first(self, decision, rib):
        rib.put(5, route_via(5, 0))
        candidates = decision.candidates("d", rib, originated=True)
        assert candidates[0].is_local
        assert len(candidates) == 2

    def test_prefers(self, decision):
        assert decision.prefers(route_via(5, 0), route_via(6, 7, 0))
        assert not decision.prefers(route_via(6, 7, 0), route_via(5, 0))
