"""Unit tests for repro.net.trace."""

import pytest

from repro.net import MessageTrace, TraceRecord


class Ping:
    pass


class Pong:
    pass


@pytest.fixture
def trace():
    t = MessageTrace()
    t.record(1.0, 0, 1, Ping())
    t.record(2.0, 1, 0, Pong())
    t.record(3.0, 0, 2, Ping())
    return t


class TestQueries:
    def test_len_and_iter(self, trace):
        assert len(trace) == 3
        assert [r.time for r in trace] == [1.0, 2.0, 3.0]

    def test_kind_is_class_name(self, trace):
        assert trace.records()[0].kind == "Ping"

    def test_count_with_predicate(self, trace):
        assert trace.count(lambda r: r.kind == "Ping") == 2

    def test_first_and_last_time(self, trace):
        assert trace.first_time() == 1.0
        assert trace.last_time() == 3.0

    def test_first_time_with_predicate(self, trace):
        assert trace.first_time(lambda r: r.kind == "Pong") == 2.0

    def test_last_time_with_predicate(self, trace):
        assert trace.last_time(lambda r: r.kind == "Ping") == 3.0

    def test_no_match_returns_none(self, trace):
        assert trace.first_time(lambda r: r.src == 99) is None
        assert trace.last_time(lambda r: r.src == 99) is None

    def test_since(self, trace):
        assert [r.time for r in trace.since(2.0)] == [2.0, 3.0]

    def test_records_filtered(self, trace):
        pongs = trace.records(lambda r: r.kind == "Pong")
        assert len(pongs) == 1 and pongs[0].src == 1

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0
        assert trace.last_time() is None


class TestKindTallies:
    """The incremental per-kind counts agree with a full rescan."""

    def test_count_kind(self, trace):
        assert trace.count_kind("Ping") == 2
        assert trace.count_kind("Pong") == 1

    def test_count_kind_unknown_is_zero(self, trace):
        assert trace.count_kind("Open") == 0

    def test_count_with_kind_keyword(self, trace):
        assert trace.count(kind="Ping") == 2
        assert trace.count(kind="Open") == 0

    def test_count_rejects_predicate_plus_kind(self, trace):
        with pytest.raises(ValueError, match="not both"):
            trace.count(lambda r: True, kind="Ping")

    def test_kind_counts_sorted_copy(self, trace):
        counts = trace.kind_counts()
        assert counts == {"Ping": 2, "Pong": 1}
        assert list(counts) == sorted(counts)
        counts["Ping"] = 99
        assert trace.count_kind("Ping") == 2

    def test_tallies_match_predicate_scan(self, trace):
        for kind in ("Ping", "Pong"):
            assert trace.count_kind(kind) == trace.count(
                lambda r, k=kind: r.kind == k
            )

    def test_clear_resets_tallies(self, trace):
        trace.clear()
        assert trace.kind_counts() == {}
        assert trace.count_kind("Ping") == 0
        trace.record(4.0, 2, 0, Pong())
        assert trace.kind_counts() == {"Pong": 1}
