"""Property tests for Gao-Rexford routing on random tiered topologies."""

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp import (
    BgpConfig,
    BgpSpeaker,
    GaoRexfordPolicy,
    Relationship,
    is_valley_free,
    relationships_from_tiers,
)
from repro.engine import RandomStreams, Scheduler
from repro.net import Network
from repro.topology import Tier, Topology

PREFIX = "dest"


@st.composite
def tiered_topologies(draw):
    """Random 3-tier AS graphs: meshed core, homed transit, homed stubs."""
    num_core = draw(st.integers(min_value=2, max_value=3))
    num_transit = draw(st.integers(min_value=1, max_value=3))
    num_stub = draw(st.integers(min_value=1, max_value=4))
    topo = Topology("tiered")
    tiers = {}
    core = list(range(num_core))
    # The core must be a full peering mesh: under Gao-Rexford rules a peer
    # route is never re-exported to another peer, so a chain-only core
    # would (correctly!) leave far-side tier-1s unreachable.
    for node in core:
        tiers[node] = Tier.CORE
        topo.add_node(node)
        for other in core[:node]:
            topo.add_edge(node, other)
    transit = list(range(num_core, num_core + num_transit))
    for node in transit:
        tiers[node] = Tier.TRANSIT
        provider = draw(st.sampled_from(core + [t for t in transit if t < node]))
        topo.add_edge(node, provider)
    stubs = list(range(num_core + num_transit, num_core + num_transit + num_stub))
    for node in stubs:
        tiers[node] = Tier.STUB
        topo.add_edge(node, draw(st.sampled_from(transit)))
    # Optional extra peering/homing edges.
    extras = draw(
        st.lists(
            st.tuples(
                st.sampled_from(sorted(topo.nodes)),
                st.sampled_from(sorted(topo.nodes)),
            ),
            max_size=3,
        )
    )
    for u, v in extras:
        if u != v and not topo.has_edge(u, v) and Tier.RANK[tiers[u]] <= Tier.RANK[tiers[v]]:
            topo.add_edge(u, v)
    return topo, tiers


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tiered_topologies(), st.integers(min_value=0, max_value=50))
def test_gao_rexford_converges_valley_free_and_reachable(topo_tiers, seed):
    topo, tiers = topo_tiers
    relationships = relationships_from_tiers(topo, tiers)
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    config = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
    network = Network(
        topo,
        scheduler,
        lambda nid, sch: BgpSpeaker(
            nid, sch, config=config, streams=streams,
            policy=GaoRexfordPolicy(relationships[nid]),
        ),
    )
    origin = max(topo.nodes)  # the last stub (or deepest node) originates
    network.node(origin).originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)

    for nid, node in network.nodes.items():
        node.check_invariants()
        path = node.full_path(PREFIX)
        # A stub origination is announced upward to everyone: with the
        # graph connected through provider chains, all nodes must reach it.
        assert path is not None, f"node {nid} has no route to the stub"
        assert is_valley_free(list(path), relationships)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(tiered_topologies())
def test_relationships_are_antisymmetric_and_complete(topo_tiers):
    topo, tiers = topo_tiers
    relationships = relationships_from_tiers(topo, tiers)
    for u, v, _d in topo.edges():
        a, b = relationships[u][v], relationships[v][u]
        if a is Relationship.PEER:
            assert b is Relationship.PEER
        elif a is Relationship.CUSTOMER:
            assert b is Relationship.PROVIDER
        else:
            assert b is Relationship.CUSTOMER
