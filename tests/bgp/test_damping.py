"""Tests for route-flap damping (RFC 2439)."""

import pytest

from repro.bgp import BgpConfig, DampingConfig, RouteFlapDamper
from repro.engine import Scheduler
from repro.errors import ConfigError
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.net import flap
from repro.topology import chain

PREFIX = "dest"
FAST_DAMPING = DampingConfig(
    withdrawal_penalty=1000.0,
    attribute_change_penalty=500.0,
    suppress_threshold=2000.0,
    reuse_threshold=750.0,
    half_life=10.0,
    max_suppress_time=60.0,
)


class TestConfig:
    def test_defaults_are_rfc_examples(self):
        config = DampingConfig()
        assert config.withdrawal_penalty == 1000.0
        assert config.suppress_threshold == 2000.0
        assert config.half_life == 900.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DampingConfig(reuse_threshold=0.0)
        with pytest.raises(ConfigError):
            DampingConfig(reuse_threshold=3000.0, suppress_threshold=2000.0)
        with pytest.raises(ConfigError):
            DampingConfig(half_life=0.0)
        with pytest.raises(ConfigError):
            DampingConfig(withdrawal_penalty=-1.0)

    def test_penalty_ceiling_respects_max_suppress(self):
        config = FAST_DAMPING
        # Decaying the ceiling to the reuse threshold takes max_suppress_time.
        ratio = config.penalty_ceiling / config.reuse_threshold
        import math

        assert config.half_life * math.log2(ratio) == pytest.approx(60.0)


class TestDamper:
    @pytest.fixture
    def reuses(self):
        return []

    @pytest.fixture
    def damper(self, scheduler, reuses):
        return RouteFlapDamper(
            scheduler,
            FAST_DAMPING,
            on_reuse=lambda peer, prefix: reuses.append((scheduler.now, peer)),
        )

    def test_single_withdrawal_does_not_suppress(self, damper):
        damper.record_withdrawal(1, PREFIX)
        assert damper.current_penalty(1, PREFIX) == pytest.approx(1000.0)
        assert not damper.is_suppressed(1, PREFIX)

    def test_two_withdrawals_suppress(self, damper):
        damper.record_withdrawal(1, PREFIX)
        damper.record_withdrawal(1, PREFIX)
        assert damper.is_suppressed(1, PREFIX)
        assert damper.suppressions == 1

    def test_penalty_decays_with_half_life(self, scheduler, damper):
        damper.record_withdrawal(1, PREFIX)
        scheduler.call_at(10.0, lambda: None)
        scheduler.run(until=10.0)
        assert damper.current_penalty(1, PREFIX) == pytest.approx(500.0)

    def test_reuse_fires_when_penalty_decays(self, scheduler, damper, reuses):
        damper.record_withdrawal(1, PREFIX)
        damper.record_withdrawal(1, PREFIX)
        scheduler.run(until=100.0)
        assert len(reuses) == 1
        when, peer = reuses[0]
        # 2000 -> 750 at half-life 10: t = 10 * log2(2000/750) ~ 14.15 s.
        assert when == pytest.approx(14.15, abs=0.05)
        assert not damper.is_suppressed(1, PREFIX)
        assert damper.reuses == 1

    def test_flaps_while_suppressed_extend_suppression(
        self, scheduler, damper, reuses
    ):
        damper.record_withdrawal(1, PREFIX)
        damper.record_withdrawal(1, PREFIX)
        scheduler.call_at(5.0, lambda: damper.record_withdrawal(1, PREFIX))
        scheduler.run(until=200.0)
        assert len(reuses) == 1
        assert reuses[0][0] > 14.2  # later than the un-extended reuse

    def test_penalty_capped_at_ceiling(self, scheduler, damper):
        for _ in range(50):
            damper.record_withdrawal(1, PREFIX)
        assert damper.current_penalty(1, PREFIX) <= FAST_DAMPING.penalty_ceiling

    def test_pairs_independent(self, damper):
        damper.record_withdrawal(1, PREFIX)
        damper.record_withdrawal(1, PREFIX)
        assert not damper.is_suppressed(2, PREFIX)
        assert not damper.is_suppressed(1, "other")

    def test_cancel_peer_clears_state(self, scheduler, damper, reuses):
        damper.record_withdrawal(1, PREFIX)
        damper.record_withdrawal(1, PREFIX)
        damper.cancel_peer(1)
        assert not damper.is_suppressed(1, PREFIX)
        assert damper.current_penalty(1, PREFIX) == 0.0
        scheduler.run(until=100.0)
        assert reuses == []

    def test_attribute_change_penalty_smaller(self, damper):
        damper.record_change(1, PREFIX)
        assert damper.current_penalty(1, PREFIX) == pytest.approx(500.0)


class TestSpeakerIntegration:
    def run_with_flaps(self, damping):
        """A chain whose middle link flaps twice: the far node's view of its
        neighbor's route flaps, accruing penalty."""
        from repro.bgp import BgpSpeaker
        from repro.engine import RandomStreams, Scheduler
        from repro.net import Network

        config = BgpConfig(
            mrai=1.0, processing_delay=(0.01, 0.05), damping=damping
        )
        scheduler = Scheduler()
        streams = RandomStreams(8)
        network = Network(
            chain(3),
            scheduler,
            lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
        )
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(max_events=100_000)
        base = scheduler.now
        for offset in (1.0, 6.0, 11.0):
            network.schedule_link_failure(0, 1, at=base + offset)
            network.schedule_link_restore(0, 1, at=base + offset + 2.0)
        scheduler.run(max_events=200_000)
        return network, scheduler

    def test_flapping_route_gets_suppressed_then_reused(self):
        network, scheduler = self.run_with_flaps(FAST_DAMPING)
        node2 = network.node(2)
        assert node2.damper is not None
        assert node2.damper.suppressions >= 1
        assert node2.damper.reuses == node2.damper.suppressions
        # After reuse the route must be back and consistent.
        assert node2.best_route(PREFIX) is not None
        node2.check_invariants()

    def test_without_damping_no_damper(self):
        network, _scheduler = self.run_with_flaps(None)
        assert network.node(2).damper is None
        assert network.node(2).best_route(PREFIX) is not None

    def test_suppressed_route_not_selected(self):
        """While suppressed, the node must route around (or lose) the
        flapping route even though it is still stored in the Adj-RIB-In."""
        from repro.bgp import BgpSpeaker
        from repro.engine import RandomStreams, Scheduler
        from repro.net import Network

        config = BgpConfig(
            mrai=1.0, processing_delay=(0.01, 0.05), damping=FAST_DAMPING
        )
        scheduler = Scheduler()
        streams = RandomStreams(9)
        network = Network(
            chain(3),
            scheduler,
            lambda nid, sch: BgpSpeaker(nid, sch, config=config, streams=streams),
        )
        network.node(0).originate(PREFIX)
        network.start()
        scheduler.run(max_events=100_000)
        node2 = network.node(2)
        # Two manual flap records push (peer 1, dest) over the threshold.
        node2.damper.record_withdrawal(1, PREFIX)
        node2.damper.record_withdrawal(1, PREFIX)
        node2._run_decision(PREFIX)
        assert node2.best_route(PREFIX) is None       # suppressed, no backup
        assert node2.adj_rib_in.get(1, PREFIX) is not None  # but retained
        node2.check_invariants()
        scheduler.run(max_events=100_000)             # reuse timer fires
        assert node2.best_route(PREFIX) is not None
        node2.check_invariants()
