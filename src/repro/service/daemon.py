"""The always-on sweep service daemon.

One asyncio process per state directory:

* a Unix-domain-socket server speaking the newline-delimited JSON
  protocol (:mod:`repro.service.protocol`), one request per connection;
* a single serial job worker — jobs run one at a time, in submission
  order, on a thread (``asyncio.to_thread``) so the socket stays
  responsive while a sweep grinds; parallelism belongs *inside* a job
  (its ``jobs``/``policy`` sweep settings), not across jobs, because two
  concurrent sweeps would fight for the same cores and wreck both their
  benchmark numbers;
* an optional bench scheduler that submits a ``bench`` job every
  ``bench_interval`` seconds, building the per-commit perf trajectory;
* an :class:`~repro.service.events.EventBus` fanning per-trial progress,
  metrics snapshots, and lifecycle events out to ``watch`` subscribers.

Durability invariants:

* **submission is durable before it is acknowledged** — the queue fsyncs
  the submit record before the client sees ``{"ok": true}``;
* **a SIGKILLed daemon loses no finished trial** — trial journals fsync
  per record; on restart, replay re-queues every non-terminal job (with
  ``detail.resumed = true``) and re-execution skips journaled trials;
* **a polite shutdown (SIGTERM/SIGINT/``shutdown`` op) interrupts the
  running job cooperatively** — the job checkpoints its journal and goes
  back to ``queued`` (``detail.interrupted = true``), not ``cancelled``;
* **one daemon per state directory** — a ``flock`` on ``daemon.lock``
  makes a second daemon fail fast instead of double-running the queue.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Dict, Optional, Set

from .. import __version__
from ..errors import ReproError, ServiceError
from .events import EventBus, end_event, log_event, state_event
from .executor import execute_job
from .jobs import CANCELLED, QUEUED, RUNNING, JobSpec, validate_spec
from .protocol import MAX_LINE, encode, error, ok, parse_request
from .queue import DurableJobQueue
from .state import ServiceState


class ServiceDaemon:
    """One service instance bound to one state directory."""

    def __init__(
        self,
        state_dir,
        bench_interval: Optional[float] = None,
        bench_repeat: int = 1,
    ) -> None:
        self.state = ServiceState(state_dir)
        self.bench_interval = bench_interval
        self.bench_repeat = bench_repeat
        self.queue: Optional[DurableJobQueue] = None
        self.bus: Optional[EventBus] = None
        self._pending: Optional[asyncio.Queue] = None
        self._stop: Optional[asyncio.Event] = None
        self._stopping = False
        self._cancelled: Set[str] = set()
        self._running_job: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Serve until a shutdown request or signal arrives."""
        loop = asyncio.get_running_loop()
        self.state.ensure_layout()
        lock = self.state.daemon_lock()
        lock.acquire()  # JournalError when another daemon owns the state dir
        server = None
        worker = None
        bench_task = None
        try:
            self.queue = DurableJobQueue(self.state.queue_path)
            self.bus = EventBus(loop)
            self._pending = asyncio.Queue()
            self._stop = asyncio.Event()
            self._stopping = False
            self._replay()
            if self.state.socket_path.exists():
                # We hold the daemon lock, so any existing socket is a
                # leftover from a killed daemon — safe to clear.
                self.state.socket_path.unlink()
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=str(self.state.socket_path),
                limit=MAX_LINE,
            )
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            worker = asyncio.create_task(self._worker())
            if self.bench_interval:
                bench_task = asyncio.create_task(self._bench_loop())

            await self._stop.wait()
        finally:
            self._stopping = True
            if server is not None:
                server.close()
                await server.wait_closed()
            if bench_task is not None:
                bench_task.cancel()
            if worker is not None and self._pending is not None:
                # Sentinel unblocks an idle worker; a busy worker sees
                # _stopping via should_cancel and re-queues its job.
                self._pending.put_nowait(None)
                await worker
            if self.state.socket_path.exists():
                self.state.socket_path.unlink()
            if self.queue is not None:
                self.queue.compact()
                self.queue.close()
                self.queue = None
            lock.release()

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (signal handler / ``shutdown`` op)."""
        self._stopping = True
        if self._stop is not None:
            self._stop.set()

    def _replay(self) -> None:
        """Re-queue every non-terminal job found in the durable queue.

        A job that was ``running`` when the previous daemon died goes
        back to ``queued`` with ``detail.resumed = true``; its trial
        journal makes re-execution a resume, not a restart.
        """
        assert self.queue is not None and self._pending is not None
        for view in self.queue.pending():
            if view.state == RUNNING:
                self.queue.transition(
                    view.job_id, QUEUED, {"resumed": True}
                )
            self._pending.put_nowait(view.job_id)

    # ------------------------------------------------------------------
    # Job worker
    # ------------------------------------------------------------------

    def _should_cancel(self, job_id: str) -> bool:
        return self._stopping or job_id in self._cancelled

    async def _worker(self) -> None:
        assert (
            self.queue is not None
            and self.bus is not None
            and self._pending is not None
        )
        while True:
            job_id = await self._pending.get()
            if job_id is None:
                return
            try:
                view = self.queue.get(job_id)
            except ServiceError:  # pragma: no cover - compacted away
                continue
            if view.state != QUEUED:
                continue  # cancelled while waiting in line
            self.queue.transition(job_id, RUNNING)
            self.bus.publish(state_event(job_id, RUNNING))
            self._running_job = job_id
            try:
                outcome = await asyncio.to_thread(
                    execute_job,
                    view,
                    self.state,
                    self.bus.publish,
                    lambda: self._should_cancel(job_id),
                )
            finally:
                self._running_job = None
            interrupted = (
                outcome.state == CANCELLED
                and self._stopping
                and job_id not in self._cancelled
            )
            self._cancelled.discard(job_id)
            if interrupted:
                # Shutdown, not user cancellation: back to the queue so
                # the next daemon resumes from the journal checkpoint.
                self.queue.transition(job_id, QUEUED, {"interrupted": True})
                self.bus.publish(
                    state_event(job_id, QUEUED, {"interrupted": True})
                )
            else:
                self.queue.transition(job_id, outcome.state, outcome.detail)
                self.bus.publish(
                    state_event(job_id, outcome.state, outcome.detail)
                )
                self.bus.publish(end_event(job_id, outcome.state))
            if self._stopping:
                return

    async def _bench_loop(self) -> None:
        assert self.queue is not None and self._pending is not None
        while not self._stopping:
            await asyncio.sleep(self.bench_interval or 0)
            if self._stopping:
                return
            spec = JobSpec(
                kind="bench", params={"repeat": self.bench_repeat}
            )
            view = self.queue.submit(spec)
            if self.bus is not None:
                self.bus.publish(
                    log_event(view.job_id, "scheduled bench cycle")
                )
                self.bus.publish(state_event(view.job_id, QUEUED))
            self._pending.put_nowait(view.job_id)

    # ------------------------------------------------------------------
    # Protocol server
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                line = await reader.readline()
                if not line:
                    return
                request = parse_request(line)
            except (ServiceError, asyncio.LimitOverrunError, ValueError) as exc:
                writer.write(encode(error(str(exc))))
                await writer.drain()
                return
            try:
                await self._dispatch(request, writer)
            except ReproError as exc:
                writer.write(encode(error(str(exc))))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass  # watcher went away mid-stream; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: Dict, writer) -> None:
        assert (
            self.queue is not None
            and self.bus is not None
            and self._pending is not None
        )
        op = request["op"]
        if op == "ping":
            writer.write(
                encode(ok(pong=True, version=__version__))
            )
            await writer.drain()
        elif op == "submit":
            spec = JobSpec.from_json(request["spec"])
            validate_spec(spec)
            view = self.queue.submit(spec)
            self.bus.publish(state_event(view.job_id, QUEUED))
            self._pending.put_nowait(view.job_id)
            writer.write(encode(ok(job=view.job_id, state=view.state)))
            await writer.drain()
        elif op == "jobs":
            writer.write(
                encode(
                    ok(jobs=[view.summary() for view in self.queue.jobs()])
                )
            )
            await writer.drain()
        elif op == "cancel":
            await self._op_cancel(request["job"], writer)
        elif op == "watch":
            await self._op_watch(request["job"], writer)
        elif op == "shutdown":
            writer.write(encode(ok(stopping=True)))
            await writer.drain()
            self.request_shutdown()

    async def _op_cancel(self, job_id: str, writer) -> None:
        assert self.queue is not None and self.bus is not None
        view = self.queue.get(job_id)
        if view.terminal:
            writer.write(
                encode(error(f"job {job_id} already {view.state}"))
            )
            await writer.drain()
            return
        if view.state == QUEUED:
            self.queue.transition(job_id, CANCELLED)
            self.bus.publish(state_event(job_id, CANCELLED))
            self.bus.publish(end_event(job_id, CANCELLED))
            writer.write(encode(ok(job=job_id, state=CANCELLED)))
        else:  # running: cooperative, takes effect at next trial boundary
            self._cancelled.add(job_id)
            writer.write(encode(ok(job=job_id, state=RUNNING, cancelling=True)))
        await writer.drain()

    async def _op_watch(self, job_id: str, writer) -> None:
        assert self.queue is not None and self.bus is not None
        view = self.queue.get(job_id)  # raises for unknown jobs
        subscription = self.bus.subscribe(job_id)
        try:
            writer.write(encode(ok(job=job_id, state=view.state)))
            await writer.drain()
            if view.terminal:
                # Replay whatever history survives, then close the stream.
                while not subscription.empty():
                    event = subscription.get_nowait()
                    if event.get("job") != job_id:
                        continue
                    if event.get("event") == "end":
                        continue
                    writer.write(encode(event))
                writer.write(encode(end_event(job_id, view.state)))
                await writer.drain()
                return
            while True:
                event = await self._next_event(subscription)
                if event is None:
                    # Daemon shutting down: close the stream politely so
                    # ``server.wait_closed()`` cannot hang on us.
                    current = self.queue.get(job_id)
                    writer.write(encode(end_event(job_id, current.state)))
                    await writer.drain()
                    return
                if event.get("job") != job_id:
                    continue
                writer.write(encode(event))
                await writer.drain()
                if event.get("event") == "end":
                    return
        finally:
            self.bus.unsubscribe(subscription)

    async def _next_event(self, subscription: asyncio.Queue) -> Optional[Dict]:
        """The next bus event, or ``None`` once shutdown is requested."""
        assert self._stop is not None
        get_task = asyncio.ensure_future(subscription.get())
        stop_task = asyncio.ensure_future(self._stop.wait())
        done, pending = await asyncio.wait(
            {get_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        if get_task in done:
            return get_task.result()
        return None


def serve(
    state_dir,
    bench_interval: Optional[float] = None,
    bench_repeat: int = 1,
) -> None:
    """Run a daemon in the foreground until signalled to stop."""
    daemon = ServiceDaemon(
        state_dir, bench_interval=bench_interval, bench_repeat=bench_repeat
    )
    asyncio.run(daemon.run())
