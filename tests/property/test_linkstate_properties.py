"""Property test: link-state convergence is globally shortest-path."""

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import is_loop_free
from repro.dataplane import ForwardingGraph, PacketFate, walk
from repro.engine import RandomStreams, Scheduler
from repro.ls import LinkStateSpeaker
from repro.net import Network
from repro.topology import Topology

PREFIX = "dest"


@st.composite
def connected_topologies(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    topo = Topology(f"random-{n}")
    for node in range(1, n):
        topo.add_edge(node, draw(st.integers(min_value=0, max_value=node - 1)))
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=5,
        )
    )
    for u, v in extras:
        if u != v and not topo.has_edge(u, v):
            topo.add_edge(u, v)
    return topo


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies(), st.integers(min_value=0, max_value=100))
def test_linkstate_converges_to_shortest_path_tree(topo, seed):
    scheduler = Scheduler()
    streams = RandomStreams(seed)
    network = Network(
        topo,
        scheduler,
        lambda nid, sch: LinkStateSpeaker(
            nid, sch, streams, destinations={PREFIX: 0},
            processing_delay=(0.01, 0.05),
        ),
    )
    network.start()
    scheduler.run(max_events=500_000)

    graph = nx.Graph()
    graph.add_nodes_from(topo.nodes)
    graph.add_edges_from((u, v) for u, v, _d in topo.edges())
    distances = nx.single_source_shortest_path_length(graph, 0)

    forwarding = ForwardingGraph()
    for nid, node in network.nodes.items():
        forwarding.set_next_hop(nid, node.fib.get(PREFIX))
        if nid == 0:
            assert node.next_hop(PREFIX) == 0
            continue
        hop = node.next_hop(PREFIX)
        assert hop is not None, f"node {nid} has no route"
        # The chosen hop is one step closer, and the smallest such id.
        closer = [
            nbr for nbr in topo.neighbors(nid)
            if distances[nbr] == distances[nid] - 1
        ]
        assert hop == min(closer), (nid, hop, closer)

    assert is_loop_free(forwarding)
    for nid in topo.nodes:
        result = walk(forwarding, nid)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == distances[nid]
