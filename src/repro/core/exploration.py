"""Route-change traces and path-exploration analysis.

§6 proposes "examin[ing] route change traces" as the follow-up to the
aggregate looping metrics.  A :class:`RouteChangeLog` collects every
best-path change from every speaker (via the speaker's ``route_listener``
hook); the analysis quantifies **path exploration** — the signature BGP
convergence behavior in which a node serially adopts increasingly long
obsolete paths before settling:

* exploration depth — how many distinct best paths a node held,
* lengthening fraction — how many consecutive changes grew the path
  (pure Tdown exploration approaches 1.0 until the final withdrawal),
* per-node exploration sequences for inspection.

These quantities connect the micro behavior (§3's stale-path adoption) to
the macro metrics (convergence time ≈ exploration rounds × MRAI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bgp.path import AsPath
from ..errors import AnalysisError
from ..util.stats import mean


@dataclass(frozen=True)
class RouteChange:
    """One best-path change at one node."""

    time: float
    node: int
    prefix: str
    old_path: Optional[AsPath]
    new_path: Optional[AsPath]

    @property
    def is_loss(self) -> bool:
        """The node lost its route entirely."""
        return self.new_path is None

    @property
    def is_first_route(self) -> bool:
        """The node acquired its first route (warm-up learning)."""
        return self.old_path is None and self.new_path is not None

    @property
    def lengthened(self) -> bool:
        """The change replaced a route with a strictly longer one."""
        return (
            self.old_path is not None
            and self.new_path is not None
            and len(self.new_path) > len(self.old_path)
        )


class RouteChangeLog:
    """Append-only log of best-path changes across all nodes."""

    def __init__(self) -> None:
        self._changes: List[RouteChange] = []

    def record(
        self,
        time: float,
        node: int,
        prefix: str,
        old_path: Optional[AsPath],
        new_path: Optional[AsPath],
    ) -> None:
        """Speaker ``route_listener`` entry point."""
        self._changes.append(RouteChange(time, node, prefix, old_path, new_path))

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self):
        return iter(self._changes)

    def changes(
        self,
        prefix: Optional[str] = None,
        node: Optional[int] = None,
        since: float = float("-inf"),
    ) -> List[RouteChange]:
        """Filtered view, in time order."""
        return [
            c
            for c in self._changes
            if (prefix is None or c.prefix == prefix)
            and (node is None or c.node == node)
            and c.time >= since
        ]


@dataclass
class ExplorationReport:
    """Path-exploration statistics for one prefix over one window."""

    prefix: str
    per_node_sequences: Dict[int, List[Optional[AsPath]]] = field(
        default_factory=dict
    )

    @classmethod
    def from_log(
        cls, log: RouteChangeLog, prefix: str, since: float = float("-inf")
    ) -> "ExplorationReport":
        """Build per-node best-path sequences from the change log.

        Each node's sequence starts with the ``old_path`` of its first
        in-window change (its route when the window opened), followed by
        every ``new_path`` — so consecutive-pair analyses see the first
        transition too.
        """
        report = cls(prefix=prefix)
        for change in log.changes(prefix=prefix, since=since):
            sequence = report.per_node_sequences.get(change.node)
            if sequence is None:
                sequence = [change.old_path]
                report.per_node_sequences[change.node] = sequence
            sequence.append(change.new_path)
        return report

    # ------------------------------------------------------------------

    def exploration_depth(self, node: int) -> int:
        """Distinct best paths the node *adopted* within the window.

        The seeded first element (the route held when the window opened)
        is not counted — only paths switched to during the window.
        """
        paths = {
            path
            for path in self.per_node_sequences.get(node, [])[1:]
            if path is not None
        }
        return len(paths)

    def max_depth(self) -> int:
        """The deepest exploration by any node (0 when no changes)."""
        if not self.per_node_sequences:
            return 0
        return max(self.exploration_depth(n) for n in self.per_node_sequences)

    def mean_depth(self) -> float:
        """Average exploration depth across nodes that changed at all."""
        if not self.per_node_sequences:
            return 0.0
        return mean(
            [self.exploration_depth(n) for n in self.per_node_sequences]
        )

    def lengthening_fraction(self) -> float:
        """Fraction of path→path transitions that grew the path.

        Tdown path exploration walks monotonically through longer and
        longer obsolete paths, so this approaches 1 there; Tlong mixes in
        shortenings when real alternates arrive.
        """
        grew = total = 0
        for sequence in self.per_node_sequences.values():
            previous: Optional[AsPath] = None
            for path in sequence:
                if previous is not None and path is not None:
                    total += 1
                    if len(path) > len(previous):
                        grew += 1
                previous = path
        if total == 0:
            return 0.0
        return grew / total

    def non_shortening_fraction(self) -> float:
        """Fraction of path→path transitions that did not shrink the path.

        The sharper Tdown invariant: exploration may sidestep between
        equal-length obsolete paths (tie-break churn) but never moves to a
        strictly shorter one — shorter paths were already tried and
        invalidated.  Expect exactly 1.0 for Tdown convergence.
        """
        kept = total = 0
        for sequence in self.per_node_sequences.values():
            previous: Optional[AsPath] = None
            for path in sequence:
                if previous is not None and path is not None:
                    total += 1
                    if len(path) >= len(previous):
                        kept += 1
                previous = path
        if total == 0:
            return 0.0
        return kept / total

    def nodes(self) -> List[int]:
        return sorted(self.per_node_sequences)

    def longest_path_explored(self) -> int:
        """AS hops of the longest path any node adopted in the window."""
        longest = 0
        for sequence in self.per_node_sequences.values():
            for path in sequence[1:]:
                if path is not None:
                    longest = max(longest, len(path))
        return longest

    def changes_per_node(self) -> Dict[int, int]:
        """Best-path changes per node within the window."""
        return {
            node: len(sequence) - 1
            for node, sequence in self.per_node_sequences.items()
        }
