"""The daemon end to end: a real ``repro serve`` subprocess, real Unix
socket, real client — exactly what a user runs."""

import json

import pytest

from repro.cli import main
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceState

from daemon_harness import DaemonHarness

TINY_SWEEP = {"kind": "sweep", "params": {"family": "tdown", "xs": [3.0]}}


@pytest.fixture
def daemon(tmp_path):
    harness = DaemonHarness(tmp_path / "state").start()
    yield harness
    harness.stop()


class TestProtocolOps:
    def test_ping_reports_version(self, daemon):
        reply = daemon.client.ping()
        assert reply["pong"] is True
        assert reply["version"]

    def test_submit_watch_and_jobs(self, daemon):
        job = daemon.client.submit(TINY_SWEEP)
        assert job == "job-1"
        events = list(daemon.client.watch(job))
        kinds = [event["event"] for event in events]
        assert "trial" in kinds and "snapshot" in kinds
        assert events[-1] == {"event": "end", "job": job, "state": "done"}

        [summary] = daemon.client.jobs()
        assert summary["job"] == job
        assert summary["state"] == "done"
        assert len(summary["detail"]["digest"]) == 64

    def test_watch_after_completion_replays_and_ends(self, daemon):
        job = daemon.client.submit(TINY_SWEEP)
        assert list(daemon.client.watch(job))[-1]["state"] == "done"
        replay = list(daemon.client.watch(job))
        assert replay[-1]["event"] == "end"
        assert any(event["event"] == "trial" for event in replay)

    def test_bad_spec_refused_at_submit(self, daemon):
        with pytest.raises(ServiceError, match="family"):
            daemon.client.submit(
                {"kind": "sweep", "params": {"family": "nope", "xs": [3]}}
            )
        assert daemon.client.jobs() == []  # nothing was queued

    def test_unknown_job_refused(self, daemon):
        with pytest.raises(ServiceError, match="unknown job"):
            list(daemon.client.watch("job-99"))
        with pytest.raises(ServiceError, match="unknown job"):
            daemon.client.cancel("job-99")

    def test_cancel_running_job(self, daemon):
        job = daemon.client.submit(
            {
                "kind": "sweep",
                "params": {"family": "tdown", "xs": [3.0, 4.0, 5.0, 6.0]},
            }
        )
        stream = daemon.client.watch(job)
        for event in stream:
            if event["event"] == "trial":
                break
        reply = daemon.client.cancel(job)
        assert reply.get("cancelling") or reply["state"] == "cancelled"
        remaining = list(stream)
        assert remaining[-1]["event"] == "end"
        assert remaining[-1]["state"] == "cancelled"
        [summary] = daemon.client.jobs()
        assert summary["state"] == "cancelled"

    def test_second_daemon_fails_fast(self, daemon, tmp_path):
        second = DaemonHarness(tmp_path / "state").start(wait=False)
        assert second.process.wait(timeout=30) != 0
        assert "already has a writer" in second.output()
        daemon.client.ping()  # the first daemon is unharmed

    def test_shutdown_op_stops_daemon(self, daemon):
        daemon.client.shutdown()
        assert daemon.process.wait(timeout=30) == 0


class TestCliVerbs:
    def test_submit_follow_jobs_watch_cancel(self, daemon, capsys):
        state = str(daemon.state_dir)
        code = main(
            ["submit", "--state", state, "--sweep", "tdown", "--xs", "3",
             "--follow"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "submitted job-1" in out
        assert "trial x=3 seed=0: ok" in out
        assert "job job-1 finished: done" in out

        code = main(["jobs", "--state", state])
        out = capsys.readouterr().out
        assert code == 0
        assert "job-1" in out and "done" in out

        code = main(["jobs", "--state", state, "--format", "json"])
        summaries = json.loads(capsys.readouterr().out)
        assert code == 0 and summaries[0]["job"] == "job-1"

        code = main(["watch", "--state", state, "job-1"])
        out = capsys.readouterr().out
        assert code == 0 and "finished: done" in out

    def test_cancel_verb(self, daemon, capsys):
        state = str(daemon.state_dir)
        job = daemon.client.submit(
            {
                "kind": "sweep",
                "params": {"family": "tdown", "xs": [3.0, 4.0, 5.0, 6.0]},
            }
        )
        stream = daemon.client.watch(job)
        for event in stream:
            if event["event"] == "trial":
                break
        code = main(["cancel", "--state", state, job])
        out = capsys.readouterr().out
        assert code == 0 and job in out
        assert list(stream)[-1]["state"] == "cancelled"

    def test_submit_sweep_requires_xs(self, daemon, capsys):
        code = main(
            ["submit", "--state", str(daemon.state_dir), "--sweep", "tdown"]
        )
        assert code == 2
        assert "--xs" in capsys.readouterr().err

    def test_figure_submission(self, daemon, capsys):
        state = str(daemon.state_dir)
        code = main(
            ["submit", "--state", state, "--figure", "theory", "--quick",
             "--follow"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "finished: done" in out
        artifact = ServiceState(daemon.state_dir).artifact_dir("job-1")
        assert (artifact / "theory.txt").exists()


class TestClientErrors:
    def test_no_daemon_socket(self, tmp_path):
        client = ServiceClient(tmp_path / "empty")
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()

    def test_stale_socket_refused(self, tmp_path, daemon):
        # A socket file without a listener behind it (daemon killed hard).
        state = ServiceState(tmp_path / "stale")
        state.ensure_layout()
        state.socket_path.touch()
        with pytest.raises(ServiceError, match="connect"):
            ServiceClient(tmp_path / "stale").ping()
