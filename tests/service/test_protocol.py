"""The wire protocol: framing, request validation, reply shapes."""

import pytest

from repro.errors import ServiceError
from repro.service.protocol import (
    MAX_LINE,
    OPS,
    decode,
    encode,
    error,
    ok,
    parse_request,
)


class TestFraming:
    def test_round_trip(self):
        message = {"op": "submit", "spec": {"kind": "bench", "params": {}}}
        assert decode(encode(message)) == message

    def test_encode_ends_with_newline(self):
        assert encode({"op": "ping"}).endswith(b"\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServiceError, match="malformed"):
            decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServiceError, match="object"):
            decode(b"[1, 2, 3]\n")

    def test_decode_rejects_oversized_line(self):
        with pytest.raises(ServiceError, match="too long"):
            decode(b"x" * (MAX_LINE + 1))


class TestParseRequest:
    def test_all_ops_parse(self):
        for op in OPS:
            request = {"op": op}
            if op in ("watch", "cancel"):
                request["job"] = "job-1"
            if op == "submit":
                request["spec"] = {"kind": "bench"}
            assert parse_request(encode(request))["op"] == op

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError, match="unknown op"):
            parse_request(encode({"op": "frobnicate"}))

    def test_watch_needs_job(self):
        with pytest.raises(ServiceError, match="job"):
            parse_request(encode({"op": "watch"}))

    def test_cancel_needs_job_string(self):
        with pytest.raises(ServiceError, match="job"):
            parse_request(encode({"op": "cancel", "job": 3}))

    def test_submit_needs_spec_object(self):
        with pytest.raises(ServiceError, match="spec"):
            parse_request(encode({"op": "submit", "spec": "sweep"}))


class TestReplies:
    def test_ok_shape(self):
        reply = ok(job="job-1")
        assert reply == {"ok": True, "job": "job-1"}

    def test_error_shape(self):
        reply = error("nope")
        assert reply == {"ok": False, "error": "nope"}
