"""Configuration for a BGP speaker / protocol variant.

One immutable :class:`BgpConfig` describes everything that distinguishes the
five protocols the paper compares: the MRAI value, and which of the four
convergence enhancements are active.  The paper's simulator settings
(processing delay U[0.1, 0.5] s) live here too, so an experiment is fully
described by ``(topology, event, BgpConfig, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import ConfigError
from .damping import DampingConfig
from .mrai import DEFAULT_JITTER, DEFAULT_MRAI, MRAI_MODES, MRAI_PER_PREFIX

DEFAULT_PROCESSING_DELAY = (0.1, 0.5)
"""The paper's routing-message processing delay: uniform on [0.1 s, 0.5 s]."""


@dataclass(frozen=True)
class BgpConfig:
    """Immutable knobs for one speaker.

    Attributes
    ----------
    mrai:
        The Minimum Route Advertisement Interval M in seconds (0 disables).
    mrai_jitter:
        Multiplicative jitter range applied each time a timer is armed.
    mrai_mode:
        ``"per-prefix"`` (the paper's per-(destination, neighbor) timers —
        the default) or ``"per-peer"`` (one timer per neighbor shared by
        every prefix; expiry flushes all held prefixes in one round).
    batch_updates:
        Pack all same-instant updates toward one peer into a single
        :class:`~repro.bgp.messages.UpdateBatch` (RFC 4271-style NLRI +
        withdrawn lists) instead of one message per prefix.
    processing_delay:
        ``(low, high)`` of the uniform per-message CPU service time.
    wrate:
        Withdrawal Rate Limiting — MRAI applies to withdrawals too
        (adopted as standard by the post-RFC1771 specification drafts).
    ssld:
        Sender-Side Loop Detection — a path the receiver would discard is
        replaced by an immediate withdrawal.
    assertion:
        The Assertion approach — receiving a route invalidates stored
        routes that are provably inconsistent with it.
    ghost_flushing:
        Ghost Flushing — moving to a longer path while MRAI holds the
        announcement triggers an immediate withdrawal "flush".
    connect_retry / connect_retry_cap:
        ConnectRetry backoff for session re-establishment: attempt ``k``
        waits ``min(cap, base * 2**k)`` seconds (jittered).  Only relevant
        when sessions are enabled.
    """

    mrai: float = DEFAULT_MRAI
    mrai_jitter: Tuple[float, float] = DEFAULT_JITTER
    mrai_mode: str = MRAI_PER_PREFIX
    batch_updates: bool = False
    processing_delay: Tuple[float, float] = DEFAULT_PROCESSING_DELAY
    wrate: bool = False
    ssld: bool = False
    assertion: bool = False
    ghost_flushing: bool = False
    hold_time: float = 0.0
    keepalive_interval: float = 0.0
    connect_retry: float = 1.0
    connect_retry_cap: float = 60.0
    damping: Optional[DampingConfig] = None

    def __post_init__(self) -> None:
        if self.mrai < 0:
            raise ConfigError(f"mrai must be >= 0, got {self.mrai}")
        low, high = self.mrai_jitter
        if not (0 < low <= high):
            raise ConfigError(f"mrai_jitter must satisfy 0 < low <= high: {self.mrai_jitter}")
        if self.mrai_mode not in MRAI_MODES:
            raise ConfigError(
                f"mrai_mode must be one of {sorted(MRAI_MODES)}, got {self.mrai_mode!r}"
            )
        lo, hi = self.processing_delay
        if not (0 <= lo <= hi):
            raise ConfigError(
                f"processing_delay must satisfy 0 <= low <= high: {self.processing_delay}"
            )
        if self.hold_time < 0:
            raise ConfigError(f"hold_time must be >= 0, got {self.hold_time}")
        if self.keepalive_interval < 0:
            raise ConfigError(
                f"keepalive_interval must be >= 0, got {self.keepalive_interval}"
            )
        if self.hold_time > 0 and self.effective_keepalive >= self.hold_time:
            raise ConfigError(
                f"keepalive interval {self.effective_keepalive} must be "
                f"shorter than hold time {self.hold_time}"
            )
        if self.connect_retry <= 0 or self.connect_retry_cap < self.connect_retry:
            raise ConfigError(
                f"connect retry must satisfy 0 < base <= cap, got "
                f"{self.connect_retry} vs {self.connect_retry_cap}"
            )

    @property
    def sessions_enabled(self) -> bool:
        """True when the keepalive/hold-timer session layer is active.

        With sessions off (the default, and the paper's model) a speaker
        learns of adjacency failures instantly from the interface; with
        sessions on, a *silent* failure is detected only when the hold
        timer expires, and a lost session re-establishes via ConnectRetry
        (``connect_retry``/``connect_retry_cap`` backoff).  Keepalive and
        hold timers are housekeeping events, so session mode works with the
        run-to-quiescence harness — give the run a ``settle`` window longer
        than the hold time so pending detections still fire.
        """
        return self.hold_time > 0

    @property
    def effective_keepalive(self) -> float:
        """The keepalive interval in force (defaults to hold_time / 3)."""
        if self.keepalive_interval > 0:
            return self.keepalive_interval
        return self.hold_time / 3.0

    # ------------------------------------------------------------------
    # Named variants (the five protocols of §5)
    # ------------------------------------------------------------------

    @classmethod
    def standard(cls, mrai: float = DEFAULT_MRAI) -> "BgpConfig":
        """Standard BGP per RFC 1771 (withdrawals not rate-limited)."""
        return cls(mrai=mrai)

    def with_mrai(self, mrai: float) -> "BgpConfig":
        """This config with a different MRAI value (for MRAI sweeps)."""
        return replace(self, mrai=mrai)

    @property
    def variant_name(self) -> str:
        """Short human-readable name of the enabled enhancement set."""
        enabled = [
            name
            for name, active in (
                ("ssld", self.ssld),
                ("wrate", self.wrate),
                ("assertion", self.assertion),
                ("ghost-flushing", self.ghost_flushing),
            )
            if active
        ]
        return "+".join(enabled) if enabled else "standard"
