"""Network substrate: nodes, links, channels, failure injection, tracing.

Models the parts of SSFNET the original study relied on: reliable in-order
delivery (BGP-over-TCP), per-link propagation delay, per-node serialized
message processing, and whole-link failures with immediate endpoint
notification.
"""

from .channel import Channel
from .failures import (
    FailureSchedule,
    LinkFailure,
    LinkFlap,
    LinkRestore,
    NodeCrash,
    OriginWithdrawal,
    SessionReset,
    flap,
)
from .link import Link
from .network import Network, NodeFactory
from .node import Node, zero_service_time
from .trace import MessageTrace, TraceRecord

__all__ = [
    "Channel",
    "FailureSchedule",
    "Link",
    "LinkFailure",
    "LinkFlap",
    "LinkRestore",
    "MessageTrace",
    "Network",
    "Node",
    "NodeCrash",
    "NodeFactory",
    "OriginWithdrawal",
    "SessionReset",
    "TraceRecord",
    "flap",
    "zero_service_time",
]
