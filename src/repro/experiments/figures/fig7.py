"""Figure 7: TTL exhaustions and looping ratio vs MRAI value.

Observation 2: exhaustion counts grow linearly with M while the looping
ratio stays almost constant — because M stretches both each loop's duration
*and* the convergence window that the denominator (packets sent) integrates
over.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core import check_linear_in_mrai, check_ratio_constant
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import bclique_tlong_fixed, clique_tdown_fixed
from ..spec import factory_ref
from .common import metric_sweep_figure

_METRICS = ("ttl_exhaustions", "looping_ratio")


def _with_obs2_checks(figure: FigureData) -> FigureData:
    figure.checks.append(
        check_linear_in_mrai(figure.xs, figure.series["ttl_exhaustions"])
    )
    figure.checks.append(check_ratio_constant(figure.series["looping_ratio"]))
    return figure


def figure7a(
    mrai_values: Sequence[float] = (7.5, 15.0, 30.0, 45.0),
    clique_size: int = 10,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in a Clique: linear exhaustions, flat ratio."""
    figure, _points = metric_sweep_figure(
        "fig7a",
        f"Tdown TTL exhaustions / looping ratio vs MRAI (Clique-{clique_size})",
        "mrai",
        list(mrai_values),
        factory_ref(clique_tdown_fixed, size=clique_size),
        _METRICS,
        seeds=seeds,
        settings=settings,
        mrai_is_x=True,
        jobs=jobs,
        policy=policy,
    )
    return _with_obs2_checks(figure)


def figure7b(
    mrai_values: Sequence[float] = (7.5, 15.0, 30.0, 45.0),
    bclique_size: int = 8,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tlong in a B-Clique: linear exhaustions, flat ratio."""
    figure, _points = metric_sweep_figure(
        "fig7b",
        f"Tlong TTL exhaustions / looping ratio vs MRAI (B-Clique-{bclique_size})",
        "mrai",
        list(mrai_values),
        factory_ref(bclique_tlong_fixed, size=bclique_size),
        _METRICS,
        seeds=seeds,
        settings=settings,
        mrai_is_x=True,
        jobs=jobs,
        policy=policy,
    )
    return _with_obs2_checks(figure)
