"""Job specs and sweep-plan resolution: every bad spec must die at the
submission gate, and resolved plans must be exactly what a foreground
sweep would run."""

import pytest

from repro.errors import ServiceError
from repro.experiments import ResiliencePolicy
from repro.service import (
    DONE,
    JOB_STATES,
    QUEUED,
    JobSpec,
    JobView,
    resolve_sweep_plan,
    validate_spec,
)
from repro.service.jobs import SWEEP_FAMILIES, job_sort_key


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(kind="sweep", params={"family": "tdown", "xs": [3]})
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_missing_kind_rejected(self):
        with pytest.raises(ServiceError, match="kind"):
            JobSpec.from_json({"params": {}})

    def test_non_dict_params_rejected(self):
        with pytest.raises(ServiceError, match="params"):
            JobSpec.from_json({"kind": "sweep", "params": [1, 2]})

    def test_params_default_empty(self):
        assert JobSpec.from_json({"kind": "bench"}).params == {}


class TestResolveSweepPlan:
    def test_defaults(self):
        plan = resolve_sweep_plan({"xs": [3, 4]})
        assert plan.xs == (3.0, 4.0)
        assert plan.seeds == (0,)
        assert plan.jobs == 1
        assert plan.policy is None
        assert plan.digests is True

    def test_trials_become_seed_range(self):
        plan = resolve_sweep_plan({"xs": [3], "trials": 4})
        assert plan.seeds == (0, 1, 2, 3)

    def test_churn_family_gets_session_timers(self):
        plan = resolve_sweep_plan({"family": "treset", "xs": [4]})
        config = plan.make_config(0)
        assert config.sessions_enabled
        assert config.hold_time == 9.0

    def test_non_churn_family_keeps_sessions_off(self):
        plan = resolve_sweep_plan({"family": "tdown", "xs": [4]})
        assert not plan.make_config(0).sessions_enabled

    def test_tflap_requires_size(self):
        with pytest.raises(ServiceError, match="size"):
            resolve_sweep_plan({"family": "tflap", "xs": [10.0]})

    def test_tflap_binds_size(self):
        plan = resolve_sweep_plan(
            {"family": "tflap", "xs": [10.0], "size": 4}
        )
        scenario = plan.make_scenario(10.0, 0)
        assert "4" in scenario.name

    def test_policy_from_retries_and_timeout(self):
        plan = resolve_sweep_plan(
            {"xs": [3], "retries": 5, "trial_timeout": 30.0}
        )
        assert isinstance(plan.policy, ResiliencePolicy)
        assert plan.policy.max_retries == 5
        assert plan.policy.trial_timeout == 30.0

    @pytest.mark.parametrize(
        "params, fragment",
        [
            ({"family": "nope", "xs": [3]}, "family"),
            ({"xs": []}, "xs"),
            ({"xs": "3,4"}, "xs"),
            ({"xs": [3, "four"]}, "numbers"),
            ({"xs": [3], "trials": 0}, "trials"),
            ({"xs": [3], "trials": True}, "trials"),
            ({"xs": [3], "variant": "nope"}, "variant"),
            ({"xs": [3], "mrai": -1}, "mrai"),
            ({"xs": [3], "jobs": -1}, "jobs"),
            ({"family": "tflap", "xs": [3], "size": 2}, "size"),
        ],
    )
    def test_bad_params_rejected(self, params, fragment):
        with pytest.raises(ServiceError, match=fragment):
            resolve_sweep_plan(params)

    def test_every_family_resolves(self):
        for family in SWEEP_FAMILIES:
            params = {"family": family, "xs": [4.0]}
            if family == "tflap":
                params["size"] = 4
            plan = resolve_sweep_plan(params)
            assert callable(plan.make_scenario)


class TestValidateSpec:
    def test_unknown_kind(self):
        with pytest.raises(ServiceError, match="kind"):
            validate_spec(JobSpec(kind="mystery"))

    def test_sweep_delegates_to_plan(self):
        with pytest.raises(ServiceError, match="xs"):
            validate_spec(JobSpec(kind="sweep", params={}))

    def test_figure_checks_registry(self):
        validate_spec(JobSpec(kind="figure", params={"id": "fig4a"}))
        with pytest.raises(ServiceError, match="figure"):
            validate_spec(JobSpec(kind="figure", params={"id": "fig99"}))

    def test_bench_targets_must_be_list(self):
        validate_spec(JobSpec(kind="bench", params={}))
        with pytest.raises(ServiceError, match="targets"):
            validate_spec(JobSpec(kind="bench", params={"targets": "hotpath"}))


class TestJobView:
    def test_summary_shape(self):
        view = JobView(
            job_id="job-1",
            spec=JobSpec(kind="bench"),
            state=DONE,
            submitted=1.0,
            updated=2.0,
            detail={"ok": True},
        )
        summary = view.summary()
        assert summary["job"] == "job-1"
        assert summary["kind"] == "bench"
        assert summary["state"] == DONE
        assert summary["detail"] == {"ok": True}

    def test_terminal_states(self):
        view = JobView(job_id="job-1", spec=JobSpec(kind="bench"))
        assert view.state == QUEUED and not view.terminal
        for state in JOB_STATES:
            view.state = state
            assert view.terminal == (state in ("done", "failed", "cancelled"))

    def test_job_sort_key_numeric_order(self):
        ids = ["job-10", "job-2", "job-1", "weird"]
        assert sorted(ids, key=job_sort_key) == [
            "job-1",
            "job-2",
            "job-10",
            "weird",
        ]
