"""Tests for the runtime sanitizers and the invariant-hook plumbing."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CausalitySanitizer,
    FifoSanitizer,
    RibCoherenceSanitizer,
    SanitizerSuite,
    build_suite,
)
from repro.bgp import BgpConfig, variant
from repro.engine import Scheduler
from repro.errors import BudgetExceededError, SanitizerError
from repro.experiments import RunSettings, run_experiment, tdown_clique
from repro.net.channel import Channel


class TestBuildSuite:
    def test_default_suite_has_all_sanitizers(self):
        suite = build_suite()
        kinds = {type(s) for s in suite.sanitizers}
        assert kinds == {CausalitySanitizer, FifoSanitizer, RibCoherenceSanitizer}

    def test_unknown_name_rejected(self):
        with pytest.raises(SanitizerError, match="unknown sanitizer"):
            build_suite(["causality", "asan"])

    def test_describe_aggregates_all_members(self):
        lines = build_suite().describe()
        text = "\n".join(lines)
        assert "causality" in text
        assert "fifo" in text
        assert "rib" in text


class TestCausalitySanitizer:
    def test_scheduling_into_the_past_trips(self):
        scheduler = Scheduler()
        scheduler.install_invariants(SanitizerSuite([CausalitySanitizer()]))
        scheduler.call_at(5.0, lambda: None)
        scheduler.run()
        assert scheduler.now == 5.0
        with pytest.raises(SanitizerError, match="causality"):
            scheduler.call_at(1.0, lambda: None, name="stale-timer")

    def test_event_scheduled_in_past_from_handler_trips(self):
        scheduler = Scheduler()
        scheduler.install_invariants(SanitizerSuite([CausalitySanitizer()]))

        def misbehave():
            scheduler.call_at(scheduler.now - 0.5, lambda: None)

        scheduler.call_at(2.0, misbehave)
        with pytest.raises(SanitizerError, match="causality"):
            scheduler.run()

    def test_non_monotone_firing_trips(self):
        sanitizer = CausalitySanitizer()
        sanitizer.on_event_fired(0.0, 5.0, "a")
        with pytest.raises(SanitizerError, match="fired at"):
            sanitizer.on_event_fired(5.0, 3.0, "b")

    def test_clean_run_counts_checks(self):
        scheduler = Scheduler()
        sanitizer = CausalitySanitizer()
        scheduler.install_invariants(SanitizerSuite([sanitizer]))
        for delay in (1.0, 2.0, 3.0):
            scheduler.call_after(delay, lambda: None)
        scheduler.run()
        assert sanitizer.schedules_checked == 3
        assert sanitizer.events_checked == 3


class TestFifoSanitizer:
    def test_sequence_gap_trips(self):
        sanitizer = FifoSanitizer()
        sanitizer.on_channel_deliver(0, 1, 0, 1, 0.1)
        with pytest.raises(SanitizerError, match="fifo"):
            sanitizer.on_channel_deliver(0, 1, 0, 3, 0.2)

    def test_reordered_arrival_time_trips(self):
        sanitizer = FifoSanitizer()
        sanitizer.on_channel_deliver(0, 1, 0, 1, 1.0)
        with pytest.raises(SanitizerError, match="precedes"):
            sanitizer.on_channel_deliver(0, 1, 0, 2, 0.5)

    def test_delivery_from_flushed_generation_trips(self):
        sanitizer = FifoSanitizer()
        sanitizer.on_channel_deliver(0, 1, 0, 1, 0.1)
        sanitizer.on_channel_flush(0, 1, 0)
        with pytest.raises(SanitizerError, match="dead generation"):
            sanitizer.on_channel_deliver(0, 1, 0, 2, 0.2)

    def test_new_generation_restarts_sequence(self):
        sanitizer = FifoSanitizer()
        sanitizer.on_channel_deliver(0, 1, 0, 1, 0.1)
        sanitizer.on_channel_flush(0, 1, 0)
        sanitizer.on_channel_deliver(0, 1, 1, 1, 0.3)
        assert sanitizer.deliveries_checked == 2

    def test_channel_integration_clean(self):
        scheduler = Scheduler()
        sanitizer = FifoSanitizer()
        scheduler.install_invariants(SanitizerSuite([sanitizer]))
        received = []
        channel = Channel(
            scheduler, 0, 1, 0.002, lambda src, msg: received.append(msg)
        )
        for index in range(5):
            channel.send(index)
        scheduler.run()
        assert received == [0, 1, 2, 3, 4]
        assert sanitizer.deliveries_checked == 5

    def test_channel_integration_across_reset(self):
        scheduler = Scheduler()
        sanitizer = FifoSanitizer()
        scheduler.install_invariants(SanitizerSuite([sanitizer]))
        received = []
        channel = Channel(
            scheduler, 0, 1, 0.002, lambda src, msg: received.append(msg)
        )
        channel.send("a")
        channel.send("b")
        scheduler.run()
        channel.send("lost")  # destroyed in flight by the reset below
        channel.drop_in_flight()
        channel.send("c")
        scheduler.run()
        assert received == ["a", "b", "c"]
        assert sanitizer.deliveries_checked == 3


class TestRibCoherenceSanitizer:
    @pytest.fixture
    def converged_network(self, bgp_network_factory):
        from repro.topology import clique

        network, _fib_log = bgp_network_factory(clique(4))
        speaker = network.node(0)
        speaker.originate("d0/8")
        network.scheduler.run()
        return network

    def test_clean_converged_state_passes(self, converged_network):
        sanitizer = RibCoherenceSanitizer()
        for node_id in sorted(converged_network.nodes):
            sanitizer.on_decision(converged_network.node(node_id), "d0/8")
        assert sanitizer.decisions_checked == 4

    def test_corrupted_loc_rib_trips(self, converged_network):
        speaker = converged_network.node(1)
        speaker.loc_rib.remove("d0/8")
        with pytest.raises(SanitizerError, match="decision process selects"):
            RibCoherenceSanitizer().on_decision(speaker, "d0/8")

    def test_corrupted_fib_trips(self, converged_network):
        speaker = converged_network.node(1)
        speaker.fib["d0/8"] = 3  # best route points elsewhere
        best = speaker.best_route("d0/8")
        assert best is not None and best.next_hop != 3
        with pytest.raises(SanitizerError, match="FIB hop"):
            RibCoherenceSanitizer().on_decision(speaker, "d0/8")

    def test_announcement_during_mrai_hold_trips(self, converged_network):
        speaker = converged_network.node(1)
        path = speaker.full_path("d0/8")
        speaker.mrai.mark_sent(2, "d0/8")
        assert speaker.mrai.holding(2, "d0/8")
        with pytest.raises(SanitizerError, match="MRAI"):
            RibCoherenceSanitizer().on_announcement(speaker, 2, "d0/8", path)

    def test_foreign_path_head_trips(self, converged_network):
        speaker = converged_network.node(1)
        foreign = speaker.full_path("d0/8").prepend(9)
        with pytest.raises(SanitizerError, match="headed by"):
            RibCoherenceSanitizer().on_announcement(speaker, 2, "d0/8", foreign)


class TestRunnerIntegration:
    def test_sanitized_run_matches_unsanitized(self):
        scenario = tdown_clique(5)
        config = variant("standard", mrai=2.0)
        plain = run_experiment(scenario, config, seed=3)
        sanitized = run_experiment(
            scenario, config, settings=RunSettings(sanitize=True), seed=3
        )
        assert (
            sanitized.result.summary_row() == plain.result.summary_row()
        ), "sanitizers must observe, never perturb"

    def test_sanitized_session_run_passes(self):
        from repro.experiments import treset_clique

        config = BgpConfig(
            mrai=1.0,
            processing_delay=(0.01, 0.05),
            hold_time=9.0,
            keepalive_interval=3.0,
            connect_retry=0.5,
            connect_retry_cap=4.0,
        )
        run = run_experiment(
            treset_clique(4), config, settings=RunSettings(sanitize=True), seed=1
        )
        assert run.converged

    def test_budget_snapshot_reports_sanitizer_state(self):
        scenario = tdown_clique(5)
        config = variant("standard", mrai=2.0)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_experiment(
                scenario,
                config,
                settings=RunSettings(sanitize=True, event_budget=10),
                seed=0,
            )
        snapshot = excinfo.value.snapshot
        assert snapshot is not None
        state = "\n".join(snapshot.sanitizer_state)
        assert "causality" in state
        assert "fifo" in state
        assert "rib" in state
        assert "sanitizer state:" in snapshot.render()

    def test_unsanitized_snapshot_has_no_sanitizer_state(self):
        scenario = tdown_clique(5)
        config = variant("standard", mrai=2.0)
        with pytest.raises(BudgetExceededError) as excinfo:
            run_experiment(
                scenario, config, settings=RunSettings(event_budget=10), seed=0
            )
        assert excinfo.value.snapshot.sanitizer_state == ()
