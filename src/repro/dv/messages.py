"""Distance-vector protocol messages."""

from __future__ import annotations

from dataclasses import dataclass

INFINITY_METRIC = 16
"""RIP's unreachability metric."""


@dataclass(frozen=True)
class DvUpdate:
    """One (prefix, metric) advertisement from a distance-vector speaker.

    ``metric`` is the sender's hop count to the destination;
    :data:`INFINITY_METRIC` announces unreachability (and is what poison
    reverse sends toward the current next hop).
    """

    prefix: str
    metric: int

    def __post_init__(self) -> None:
        if not 0 <= self.metric <= INFINITY_METRIC:
            raise ValueError(
                f"metric must be in [0, {INFINITY_METRIC}], got {self.metric}"
            )

    @property
    def is_unreachable(self) -> bool:
        return self.metric >= INFINITY_METRIC

    def __repr__(self) -> str:
        reach = "unreachable" if self.is_unreachable else f"metric={self.metric}"
        return f"DvUpdate[{self.prefix} {reach}]"
