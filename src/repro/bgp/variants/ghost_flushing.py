"""Ghost Flushing [Bremler-Barr, Afek & Schwarz, INFOCOM 2003].

"Ghost Flushing requires that a node immediately send a withdrawal when the
node changes to a longer path [and] the new path announcement is delayed by
the MRAI timer" (paper §5).  The withdrawal "flushes" the ghost — the stale,
better-looking path the neighbor still holds — at processing/propagation
speed, while the (rate-limited) announcement follows when MRAI expires.

Effects the paper measures: convergence time and looping drop by ≥80% on
cliques and Internet-derived topologies, but on large cliques the flood of
flush withdrawals queues up in nodes' serialized message processing and
delays the very updates that carry new reachability — the benefit shrinks as
node degree grows.  Ghost Flushing also trades loss for loop-freedom: nodes
flushed of their route drop packets instead of forwarding along a stale (but
possibly working) path.
"""

from __future__ import annotations

from typing import Optional

from ..path import AsPath
from ..rib import SentState


def should_flush(last_sent: SentState, new_advertised_path: Optional[AsPath]) -> bool:
    """True when moving to ``new_advertised_path`` warrants an immediate flush.

    Parameters
    ----------
    last_sent:
        What this peer was last told (from the Adj-RIB-Out).
    new_advertised_path:
        The path that *would* be announced now if MRAI were not holding it
        (speaker's AS at the head), or ``None`` when the new state is
        "no route" (that case is an ordinary withdrawal, not a flush).

    The flush fires only when the peer currently holds a *shorter* path than
    the one we will eventually announce: the held announcement cannot arrive
    for up to M seconds, and until it does the peer is operating on ghost
    information strictly better than reality.
    """
    if last_sent.path is None:
        return False  # peer holds nothing; there is no ghost to flush
    if new_advertised_path is None:
        return False  # plain unreachability; normal withdrawal handles it
    return len(new_advertised_path) > len(last_sent.path)
