"""Parameter sweeps with repeated seeded trials and per-trial fault isolation.

Every figure in the paper is a sweep: an x-axis (topology size or MRAI
value), one or more measured series, each point averaged over repeated runs
("the simulation were repeated for a number of times").  :func:`sweep`
captures that pattern once so the per-figure drivers stay declarative.

Churn sweeps add a survivability requirement: a single pathological
(scenario, seed) pair — a flap period that resonates with MRAI, a crash that
trips the event budget — must not destroy the other trials' work.  By
default a failed trial is recorded as a :class:`TrialFailure` (with the
post-mortem :class:`~repro.experiments.diagnostics.DiagnosticSnapshot` when
the runner captured one) and the sweep continues; each
:class:`SweepPoint` reports how many of its trials succeeded.  Programming
errors — :class:`~repro.errors.ProtocolError`, bad configuration — still
propagate: they invalidate the whole sweep, not one trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..bgp import BgpConfig
from ..core import LoopStudyResult
from ..errors import AnalysisError, SimulationError
from ..util.stats import mean
from .config import RunSettings
from .runner import ExperimentRun, run_experiment
from .scenarios import Scenario

ScenarioFactory = Callable[[float, int], Scenario]
"""``factory(x, seed) -> Scenario`` for the sweep's x value and trial seed."""

ConfigFactory = Callable[[float], BgpConfig]
"""``factory(x) -> BgpConfig`` for the sweep's x value."""


@dataclass(frozen=True)
class TrialFailure:
    """One trial that died, preserved for the post-mortem."""

    x: float
    seed: int
    error: SimulationError

    @property
    def snapshot(self):
        """The diagnostic snapshot, when the runner captured one."""
        return getattr(self.error, "snapshot", None)

    def __repr__(self) -> str:
        return f"TrialFailure(x={self.x}, seed={self.seed}: {self.error})"


@dataclass
class SweepPoint:
    """All trials at one x value, successful and failed."""

    x: float
    runs: List[ExperimentRun] = field(default_factory=list)
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def results(self) -> List[LoopStudyResult]:
        return [run.result for run in self.runs]

    @property
    def trials(self) -> int:
        """Trials attempted at this point."""
        return len(self.runs) + len(self.failures)

    @property
    def succeeded(self) -> int:
        """Trials that completed and were measured."""
        return len(self.runs)

    @property
    def failed(self) -> int:
        """Trials that died (recorded in :attr:`failures`)."""
        return len(self.failures)

    def mean_metric(self, name: str) -> float:
        """Trial-mean of one ``LoopStudyResult.summary_row()`` metric.

        Computed over the *successful* trials; raises when none survived.
        """
        values = [result.summary_row()[name] for result in self.results]
        if not values:
            raise AnalysisError(
                f"no successful runs at x={self.x} "
                f"({self.failed} of {self.trials} trials failed)"
            )
        return mean(values)

    def metrics(self) -> Dict[str, float]:
        """Trial-mean of every summary metric (successful trials only)."""
        if not self.runs:
            raise AnalysisError(
                f"no successful runs at x={self.x} "
                f"({self.failed} of {self.trials} trials failed)"
            )
        keys = self.results[0].summary_row().keys()
        return {key: self.mean_metric(key) for key in keys}


def sweep(
    xs: Sequence[float],
    make_scenario: ScenarioFactory,
    make_config: ConfigFactory,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    on_error: str = "record",
    on_trial_error: Optional[Callable[[TrialFailure], None]] = None,
) -> List[SweepPoint]:
    """Run ``len(xs) × len(seeds)`` experiments and group them by x.

    The scenario factory receives the trial seed so randomized scenarios
    (Internet-derived destination/link choice) vary across trials, exactly
    as the paper repeats runs "with different destination ASes and failed
    links".

    ``on_error`` controls trial fault isolation:

    * ``"record"`` (default) — a trial that raises
      :class:`~repro.errors.SimulationError` (budget exhaustion,
      non-convergence) is appended to its point's ``failures`` and the
      sweep continues; ``on_trial_error`` (if given) observes each failure
      as it happens, e.g. to log progress.
    * ``"raise"`` — the first failing trial aborts the sweep (the seed's
      behavior; useful when any failure means the setup itself is wrong).

    Non-simulation errors (protocol invariant violations, bad
    configuration) always propagate.
    """
    if not xs:
        raise AnalysisError("sweep needs at least one x value")
    if not seeds:
        raise AnalysisError("sweep needs at least one seed")
    if on_error not in ("record", "raise"):
        raise AnalysisError(f"on_error must be 'record' or 'raise', got {on_error!r}")
    points: List[SweepPoint] = []
    for x in xs:
        point = SweepPoint(x=x)
        for seed in seeds:
            scenario = make_scenario(x, seed)
            config = make_config(x)
            try:
                point.runs.append(
                    run_experiment(scenario, config, settings=settings, seed=seed)
                )
            except SimulationError as exc:
                if on_error == "raise":
                    raise
                failure = TrialFailure(x=x, seed=seed, error=exc)
                point.failures.append(failure)
                if on_trial_error is not None:
                    on_trial_error(failure)
        points.append(point)
    return points


def failures_of(points: Sequence[SweepPoint]) -> List[TrialFailure]:
    """Every recorded trial failure across the sweep, in run order."""
    return [failure for point in points for failure in point.failures]


def series(points: Sequence[SweepPoint], metric: str) -> List[float]:
    """Extract one metric's trial-mean series across the sweep."""
    return [point.mean_metric(metric) for point in points]


def xs_of(points: Sequence[SweepPoint]) -> List[float]:
    """The sweep's x values, in run order."""
    return [point.x for point in points]
