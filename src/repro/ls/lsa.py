"""Link-state advertisements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


@dataclass(frozen=True)
class LinkStateAd:
    """One router's view of its own adjacencies, with a sequence number.

    Frozen and hashable so flooding can deduplicate by value; ``newer_than``
    implements the usual freshness rule (higher sequence wins).
    """

    origin: int
    sequence: int
    neighbors: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {self.sequence}")
        if self.origin in self.neighbors:
            raise ValueError(f"LSA origin {self.origin} lists itself as neighbor")

    def newer_than(self, other: "LinkStateAd") -> bool:
        """Freshness: strictly higher sequence from the same origin."""
        if other.origin != self.origin:
            raise ValueError("comparing LSAs from different origins")
        return self.sequence > other.sequence

    def __repr__(self) -> str:
        nbrs = " ".join(str(n) for n in sorted(self.neighbors))
        return f"LSA[{self.origin} seq={self.sequence} nbrs=({nbrs})]"


def make_lsa(origin: int, sequence: int, neighbors) -> LinkStateAd:
    """Convenience constructor normalizing the neighbor collection."""
    return LinkStateAd(
        origin=origin, sequence=sequence, neighbors=frozenset(neighbors)
    )
