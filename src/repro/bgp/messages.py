"""BGP control-plane messages.

Only the two message kinds that drive convergence dynamics are modeled:
announcements (UPDATE with NLRI) and withdrawals (UPDATE with withdrawn
routes).  Session management (OPEN/KEEPALIVE/NOTIFICATION) is abstracted
away: peerings exist while the underlying link is up, which matches how the
paper treats adjacencies.

Prefixes are opaque strings (e.g. ``"d0"``); the simulations use one prefix,
but the speaker handles any number.
"""

from __future__ import annotations

from dataclasses import dataclass

from .path import AsPath

Prefix = str
"""Type alias for destination identifiers."""


@dataclass(frozen=True)
class Announcement:
    """An UPDATE advertising ``path`` as the sender's route to ``prefix``.

    ``path`` is the path *as sent*: the sender's own AS number is the head.
    """

    prefix: Prefix
    path: AsPath

    def __post_init__(self) -> None:
        if self.path.is_empty:
            raise ValueError("an announcement must carry a non-empty AS path")

    @property
    def sender(self) -> int:
        """The advertising AS (head of the path)."""
        assert self.path.head is not None
        return self.path.head

    def __repr__(self) -> str:
        return f"Announce[{self.prefix} via {self.path!r}]"


@dataclass(frozen=True)
class Withdrawal:
    """An UPDATE withdrawing the sender's previously-announced route."""

    prefix: Prefix

    def __repr__(self) -> str:
        return f"Withdraw[{self.prefix}]"


@dataclass(frozen=True)
class Keepalive:
    """A KEEPALIVE: refreshes the receiver's hold timer, carries no routes.

    Only exchanged when the speaker's session layer is enabled
    (``BgpConfig.hold_time > 0``); the paper's experiments model instant
    interface-level failure detection and never need them.
    """

    def __repr__(self) -> str:
        return "Keepalive"


def is_update(message: object) -> bool:
    """True for the messages that count toward convergence time.

    The paper measures convergence as "the time the last BGP update message
    is sent"; both announcements and withdrawals are updates.
    """
    return isinstance(message, (Announcement, Withdrawal))
