"""The Minimum Route Advertisement Interval (MRAI) machinery.

"BGP also uses a Minimum Route Advertisement Interval (MRAI) timer to space
out consecutive updates for the same destination by M seconds (default value
30) with a small jitter interval" (§3).  The study implements the timer "on a
per (destination, neighbor) pair base", and so does this module.

Semantics implemented (RFC 1771 / SSFNET style):

* When an advertisement for (prefix, peer) is sent, the timer for that pair
  is armed with a jittered interval.
* While the timer runs, further advertisements for the pair are held; when
  it expires the speaker re-derives the desired advertisement from *current*
  state (so intermediate flaps collapse into one update) and, if something
  must be sent, sends it and re-arms.
* Withdrawals bypass the timer unless WRATE is enabled, in which case they
  are held exactly like advertisements.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from ..engine import Scheduler, Timer
from .messages import Prefix

DEFAULT_MRAI = 30.0
"""The protocol default of M = 30 seconds."""

DEFAULT_JITTER = (0.75, 1.0)
"""RFC 1771's suggested jitter: the configured value scaled by U[0.75, 1]."""

ExpiryCallback = Callable[[int, Prefix], None]


class MraiManager:
    """Per-(peer, prefix) MRAI timers for one speaker.

    Parameters
    ----------
    scheduler:
        Simulation scheduler the timers run on.
    interval:
        The configured M in seconds.  ``0`` disables rate limiting entirely
        (every ``can_send_now`` is True) — used by ablation experiments.
    jitter:
        ``(low, high)`` multiplicative jitter range applied per arming.
    rng:
        Source for jitter draws (a named stream from the run's
        :class:`~repro.engine.rng.RandomStreams`).
    on_expiry:
        ``callback(peer, prefix)`` invoked when a timer fires; the speaker
        re-evaluates what (if anything) to send to that peer.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        jitter: Tuple[float, float],
        rng: random.Random,
        on_expiry: ExpiryCallback,
    ) -> None:
        if interval < 0:
            raise ValueError(f"MRAI interval must be >= 0, got {interval}")
        low, high = jitter
        if not (0 < low <= high):
            raise ValueError(f"jitter range must satisfy 0 < low <= high, got {jitter}")
        self._scheduler = scheduler
        self._interval = interval
        self._jitter = jitter
        self._rng = rng
        self._on_expiry = on_expiry
        self._timers: Dict[Tuple[int, Prefix], Timer] = {}

    # ------------------------------------------------------------------

    @property
    def interval(self) -> float:
        """The configured (un-jittered) M value."""
        return self._interval

    @property
    def enabled(self) -> bool:
        return self._interval > 0

    def can_send_now(self, peer: int, prefix: Prefix) -> bool:
        """True when no MRAI hold is in effect for ``(peer, prefix)``."""
        if not self.enabled:
            return True
        timer = self._timers.get((peer, prefix))
        return timer is None or not timer.running

    def mark_sent(self, peer: int, prefix: Prefix) -> None:
        """Record that a rate-limited update was just sent; arm the timer."""
        if not self.enabled:
            return
        timer = self._timers.get((peer, prefix))
        if timer is None:
            timer = Timer(
                self._scheduler,
                callback=lambda p=peer, x=prefix: self._on_expiry(p, x),
                name=f"mrai:{peer}:{prefix}",
            )
            self._timers[(peer, prefix)] = timer
        timer.restart(self._draw_interval())

    def holding(self, peer: int, prefix: Prefix) -> bool:
        """True while updates for the pair are being held by the timer."""
        return not self.can_send_now(peer, prefix)

    def cancel_peer(self, peer: int) -> None:
        """Drop all timers toward ``peer`` (session went down)."""
        for (timer_peer, _prefix), timer in list(self._timers.items()):
            if timer_peer == peer:
                timer.cancel()

    def cancel_all(self) -> None:
        """Drop every timer (the router crashed)."""
        for timer in self._timers.values():
            timer.cancel()

    def active_timers(self) -> int:
        """Number of currently-running timers (diagnostics)."""
        return sum(1 for t in self._timers.values() if t.running)

    # ------------------------------------------------------------------

    def _draw_interval(self) -> float:
        low, high = self._jitter
        return self._interval * self._rng.uniform(low, high)
