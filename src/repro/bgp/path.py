"""AS-path algebra.

The AS path is the defining attribute of a path-vector protocol: every
announcement carries the full sequence of ASes toward the destination, and
the paper's §3 reasons about paths with a concatenation operator "·" and a
containment test (the path-based poison reverse).  :class:`AsPath` implements
exactly that algebra as an immutable value type.

Conventions (matching the paper's notation):

* ``AsPath((5, 4, 0))`` is the path "5 4 0": the head (index 0) is the AS
  that most recently advertised the route, the tail is the origin AS.
* A node *stores* the path exactly as received and *prepends itself* when
  re-advertising, so a route's advertised form is ``path.prepend(self_id)``.
* The empty path is valid: it is the path of a locally-originated route.

Interning
---------

Paths are the hottest value type in the simulator: every announcement,
poison-reverse check, and Adj-RIB-Out duplicate test walks them.  This
module therefore maintains a process-global **intern table**: one canonical
:class:`AsPath` instance per distinct AS sequence.  All simulator code must
obtain paths through the interning constructors —

* :func:`intern_path` / :meth:`AsPath.of` — the canonical factory,
* the algebra methods (:meth:`AsPath.prepend`, :meth:`AsPath.concat`,
  :meth:`AsPath.suffix_from`, :meth:`AsPath.empty`), which always return
  interned instances,

— never ``AsPath(...)`` directly (the determinism linter's REP106 rule
enforces this outside this module).  Interning buys three things on the
hot path: construction of a previously-seen path is a single dict hit,
equality between interned paths short-circuits on identity, and every
path carries a precomputed hash plus a frozenset shadow of its members
for O(1) containment (the loop-detection test).

Pickle support re-interns on load (:meth:`AsPath.__reduce__`), so paths
that cross a process boundary — parallel sweep workers — land in the
worker's own intern table and keep the identity fast path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..errors import ProtocolError


class AsPath:
    """An immutable sequence of AS numbers, most-recent-first.

    Supports the operations the protocol and the paper's analysis need:
    prepend (advertisement), containment (loop detection), concatenation
    (the "·" operator of §3.2), suffix extraction (the Assertion check),
    and value equality/hashing (RIB bookkeeping).

    Direct construction validates but does **not** intern; simulator code
    uses :func:`intern_path` / :meth:`AsPath.of` (see the module docstring).
    Equality and hashing are value-based either way, so an un-interned
    instance (tests, ad-hoc analysis) compares equal to its canonical twin.
    """

    __slots__ = ("_ases", "_members", "_hash")

    def __init__(self, ases: Iterable[int] = ()) -> None:
        path = tuple(int(a) for a in ases)
        if any(a < 0 for a in path):
            raise ProtocolError(f"AS numbers must be non-negative: {path}")
        members = frozenset(path)
        if len(members) != len(path):
            raise ProtocolError(f"AS path may not contain duplicates: {path}")
        self._ases = path
        self._members = members
        self._hash = hash(path)

    # ------------------------------------------------------------------
    # Basic sequence behavior
    # ------------------------------------------------------------------

    @property
    def ases(self) -> Tuple[int, ...]:
        """The AS numbers as a tuple, most-recent-first."""
        return self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._members

    def __getitem__(self, index):
        return self._ases[index]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, AsPath):
            return self._ases == other._ases
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = " ".join(str(a) for a in self._ases)
        return f"({body})"

    def __reduce__(self):
        # Unpickling goes through the interning factory so paths shipped to
        # (or back from) sweep workers re-intern in the receiving process.
        return (intern_path, (self._ases,))

    # ------------------------------------------------------------------
    # Path-vector operations
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True for the path of a locally-originated route."""
        return not self._ases

    @property
    def head(self) -> Optional[int]:
        """The most recent AS (the advertising neighbor), or ``None``."""
        return self._ases[0] if self._ases else None

    @property
    def origin(self) -> Optional[int]:
        """The origin AS (last element), or ``None`` for the empty path."""
        return self._ases[-1] if self._ases else None

    def prepend(self, asn: int) -> "AsPath":
        """The path as advertised by ``asn``: ``asn`` prefixed to this path.

        Raises :class:`ProtocolError` if ``asn`` already appears — a speaker
        advertising a path through itself is a protocol bug.
        """
        if asn in self._members:
            raise ProtocolError(f"AS {asn} already in path {self!r}")
        return _intern_valid((asn,) + self._ases)

    def concat(self, other: "AsPath") -> "AsPath":
        """The paper's "·" operator: this path followed by ``other``.

        Used by the analytical model of §3.2, e.g.
        ``(c_1 .. c_k) · path(c_k, old)``.
        """
        return intern_path(self._ases + other._ases)

    def contains_any(self, ases: Iterable[int]) -> bool:
        """True if any AS from ``ases`` appears in this path."""
        return not self._members.isdisjoint(ases)

    def suffix_from(self, asn: int) -> Optional["AsPath"]:
        """The sub-path starting at ``asn`` (inclusive), or ``None``.

        This is the Assertion approach's consistency probe: node *v* checks
        whether a stored path's suffix from neighbor *u* matches *u*'s
        currently-announced path.
        """
        try:
            index = self._ases.index(asn)
        except ValueError:
            return None
        return _intern_valid(self._ases[index:])

    def next_after(self, asn: int) -> Optional[int]:
        """The AS that follows ``asn`` on the way to the origin, if any."""
        try:
            index = self._ases.index(asn)
        except ValueError:
            return None
        if index + 1 >= len(self._ases):
            return None
        return self._ases[index + 1]

    @classmethod
    def of(cls, ases: Iterable[int] = ()) -> "AsPath":
        """The canonical (interned) instance for ``ases``.

        This is the constructor simulator code should use; see
        :func:`intern_path`.
        """
        return intern_path(ases)

    @classmethod
    def empty(cls) -> "AsPath":
        """The path of a locally-originated route."""
        return _EMPTY


#: The process-global intern table: AS tuple -> canonical instance.
_INTERN_TABLE: Dict[Tuple[int, ...], AsPath] = {}


def intern_path(ases: Iterable[int] = ()) -> AsPath:
    """The canonical :class:`AsPath` for ``ases``, validating on first sight.

    Repeated requests for the same sequence return the *same* object, which
    is what makes path equality an identity check on the hot path.  Also the
    pickle re-entry point (see :meth:`AsPath.__reduce__`).
    """
    key = ases if type(ases) is tuple else tuple(int(a) for a in ases)
    cached = _INTERN_TABLE.get(key)
    if cached is not None:
        return cached
    path = AsPath(key)  # validates; normalizes any non-int tuple entries
    return _INTERN_TABLE.setdefault(path._ases, path)


def _intern_valid(key: Tuple[int, ...]) -> AsPath:
    """Intern a tuple already known valid (built from an interned path)."""
    cached = _INTERN_TABLE.get(key)
    if cached is not None:
        return cached
    path = AsPath.__new__(AsPath)
    path._ases = key
    path._members = frozenset(key)
    path._hash = hash(key)
    return _INTERN_TABLE.setdefault(key, path)


def intern_table_size() -> int:
    """Number of distinct paths currently interned (diagnostics/tests)."""
    return len(_INTERN_TABLE)


_EMPTY = intern_path(())
