#!/usr/bin/env python
"""§2 background: distance-vector vs path-vector loop behavior.

Runs the same Tdown event on a ring under (a) a RIP-like distance-vector
protocol with poison reverse and (b) the BGP path-vector speaker, and
compares update counts and transient forwarding loops.  The demonstration
matches the paper's framing:

* DV poison reverse detects 2-node loops only — on a ring the withdrawal
  triggers counting-to-infinity churn through a multi-node loop;
* the path vector lets every node discard any path containing itself, so
  BGP's churn is bounded by path exploration, not by a metric ceiling.
"""

from repro import BgpConfig, Scheduler
from repro.bgp import BgpSpeaker
from repro.core import loop_timeline
from repro.dataplane import FibChangeLog
from repro.dv import RipSpeaker
from repro.engine import RandomStreams
from repro.net import Network
from repro.topology import ring

PREFIX = "dest"
RING_SIZE = 5


def run_protocol(label, make_speaker):
    scheduler = Scheduler()
    log = FibChangeLog()
    network = Network(
        ring(RING_SIZE), scheduler, lambda nid, sch: make_speaker(nid, sch, log)
    )
    network.node(0).originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)

    failure_time = scheduler.now + 1.0
    scheduler.call_at(
        failure_time, lambda: network.node(0).withdraw_origin(PREFIX)
    )
    messages_before = len(network.trace)
    scheduler.run(max_events=500_000)

    churn = len(network.trace) - messages_before
    loops = loop_timeline(log, PREFIX, failure_time, scheduler.now)
    print(f"\n{label}:")
    print(f"  update messages after the failure : {churn}")
    print(f"  distinct transient loops          : {len(loops)}")
    for interval in loops:
        members = " -> ".join(str(n) for n in interval.cycle)
        print(f"    loop [{members}] lasted {interval.duration:.2f}s")
    return churn


def main() -> None:
    print(
        f"Tdown on a {RING_SIZE}-node ring: distance vector (poison reverse) "
        "vs path vector."
    )
    streams_dv = RandomStreams(1)
    dv_churn = run_protocol(
        "RIP-like distance vector (poison reverse ON)",
        lambda nid, sch, log: RipSpeaker(
            nid,
            sch,
            streams_dv,
            processing_delay=(0.1, 0.5),
            poison_reverse=True,
            fib_listener=log.record,
        ),
    )

    streams_bgp = RandomStreams(1)
    config = BgpConfig.standard(mrai=30.0)
    bgp_churn = run_protocol(
        "BGP path vector (MRAI 30s)",
        lambda nid, sch, log: BgpSpeaker(
            nid, sch, config=config, streams=streams_bgp, fib_listener=log.record
        ),
    )

    print(
        f"\nDistance vector needed {dv_churn} updates (counting toward the "
        f"infinity metric);\npath vector needed {bgp_churn} (bounded path "
        "exploration, arbitrary-length\nself-loops discarded on receipt)."
    )


if __name__ == "__main__":
    main()
