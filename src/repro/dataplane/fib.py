"""Forwarding state: per-node FIBs over time.

The data-plane analysis needs the forwarding graph — "which node forwards to
which" — at every instant of the convergence window.  Speakers report each
next-hop change to a :class:`FibChangeLog`; the log can replay itself into a
:class:`ForwardingGraph` snapshot at any time, or stream the sequence of
*epochs* (maximal intervals over which the graph is constant).

Next-hop encoding, shared with :class:`~repro.bgp.speaker.BgpSpeaker`:

* ``next_hop == node``  — the node delivers locally (it is the destination),
* ``next_hop is None`` (or absent) — no route: packets are dropped,
* otherwise — forward to that neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from ..errors import AnalysisError
from ..prefixes import PrefixSpec, parse_prefix
from ..prefixes.trie import RadixTrie

Prefix = str

Destination = Union[int, str]
"""What a packet is addressed to: an integer address inside a structured
prefix, or (for legacy opaque prefixes like ``"dest"``) the prefix string
itself, matched exactly."""

_parse = lru_cache(maxsize=None)(parse_prefix)


@dataclass(frozen=True, slots=True)
class FibChange:
    """One next-hop change at one node."""

    time: float
    node: int
    prefix: Prefix
    next_hop: Optional[int]


class ForwardingGraph:
    """A snapshot of every node's next hop for one prefix.

    This is a functional graph (out-degree ≤ 1), which is what makes loop
    analysis cheap: every walk either terminates or enters exactly one cycle.
    """

    def __init__(self, next_hops: Optional[Dict[int, Optional[int]]] = None) -> None:
        self._next_hops: Dict[int, Optional[int]] = dict(next_hops or {})

    def set_next_hop(self, node: int, next_hop: Optional[int]) -> None:
        self._next_hops[node] = next_hop

    def next_hop(self, node: int) -> Optional[int]:
        """The node's next hop (None = no route)."""
        return self._next_hops.get(node)

    def delivers_locally(self, node: int) -> bool:
        """True when the node is a local-delivery point for the prefix."""
        return self._next_hops.get(node) == node

    def nodes_with_route(self) -> List[int]:
        """Nodes currently holding some forwarding entry, ascending."""
        return sorted(n for n, nh in self._next_hops.items() if nh is not None)

    def as_dict(self) -> Dict[int, Optional[int]]:
        """A copy of the underlying mapping."""
        return dict(self._next_hops)

    def copy(self) -> "ForwardingGraph":
        return ForwardingGraph(self._next_hops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ForwardingGraph):
            return NotImplemented
        return self._next_hops == other._next_hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ForwardingGraph entries={len(self._next_hops)}>"


class FibChangeLog:
    """Append-only, time-ordered log of FIB changes across all nodes.

    Wire a speaker's ``fib_listener`` to :meth:`record`; the experiment
    harness does this for every node.
    """

    def __init__(self) -> None:
        self._changes: List[FibChange] = []

    def record(
        self, time: float, node: int, prefix: Prefix, next_hop: Optional[int]
    ) -> None:
        """Append one change; times must be non-decreasing."""
        if self._changes and time < self._changes[-1].time:
            raise AnalysisError(
                f"FIB change at t={time} recorded after t={self._changes[-1].time}"
            )
        self._changes.append(FibChange(time, node, prefix, next_hop))

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self) -> Iterator[FibChange]:
        return iter(self._changes)

    def changes_for(self, prefix: Prefix) -> List[FibChange]:
        return [c for c in self._changes if c.prefix == prefix]

    def change_times(self, prefix: Prefix) -> List[float]:
        """Distinct change instants for ``prefix``, ascending."""
        seen = sorted({c.time for c in self._changes if c.prefix == prefix})
        return seen

    def last_change_time(self, prefix: Prefix) -> Optional[float]:
        """Time of the final FIB change for ``prefix``, or ``None``."""
        times = self.change_times(prefix)
        return times[-1] if times else None

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def snapshot_at(self, prefix: Prefix, time: float) -> ForwardingGraph:
        """The forwarding graph for ``prefix`` as of ``time`` (inclusive)."""
        graph = ForwardingGraph()
        for change in self._changes:
            if change.time > time:
                break
            if change.prefix == prefix:
                graph.set_next_hop(change.node, change.next_hop)
        return graph

    def epochs(
        self, prefix: Prefix, start: float, end: float
    ) -> Iterator[Tuple[float, float, ForwardingGraph]]:
        """Yield ``(epoch_start, epoch_end, graph)`` covering ``[start, end)``.

        Each yielded graph is constant over its interval; consecutive graphs
        differ.  The first epoch starts exactly at ``start`` with the state
        accumulated up to (and including) ``start``.  Zero-length epochs
        (several changes at one instant) are merged away.
        """
        if end < start:
            raise AnalysisError(f"epoch window end {end} before start {start}")
        relevant = [c for c in self._changes if c.prefix == prefix]
        graph = ForwardingGraph()
        index = 0
        while index < len(relevant) and relevant[index].time <= start:
            graph.set_next_hop(relevant[index].node, relevant[index].next_hop)
            index += 1

        cursor = start
        while cursor < end:
            # Absorb every change at the next change instant (if within window).
            next_time = relevant[index].time if index < len(relevant) else None
            if next_time is None or next_time >= end:
                yield (cursor, end, graph.copy())
                return
            if next_time > cursor:
                yield (cursor, next_time, graph.copy())
                cursor = next_time
            # lint: allow(float-time-eq) -- next_time was read from this
            # very list, so equality groups records sharing one float value.
            while (
                index < len(relevant)
                and relevant[index].time == next_time  # lint: allow(float-time-eq)
            ):
                graph.set_next_hop(relevant[index].node, relevant[index].next_hop)
                index += 1

    # ------------------------------------------------------------------
    # Multi-prefix reconstruction
    # ------------------------------------------------------------------

    def prefixes(self) -> List[Prefix]:
        """Every prefix that ever appeared in the log, sorted."""
        return sorted({c.prefix for c in self._changes})

    def multi_epochs(
        self, start: float, end: float
    ) -> Iterator[Tuple[float, float, "MultiPrefixFib", FrozenSet[Prefix]]]:
        """Yield ``(epoch_start, epoch_end, fib, changed)`` over ``[start, end)``.

        Like :meth:`epochs` but across **all** prefixes at once: an epoch
        boundary is any instant at which any prefix's forwarding state
        changes anywhere.  ``changed`` is the set of prefixes whose entries
        were touched at the epoch's opening boundary (for the first epoch:
        everything applied at or before ``start``) — evaluators use it to
        re-derive only the forwarding state that could have moved.  The
        yielded :class:`MultiPrefixFib` is a **live view** that mutates on
        the next iteration — callers must finish with it before advancing
        (copying N-prefix state per epoch would be quadratic in exactly the
        workloads this exists for).
        """
        if end < start:
            raise AnalysisError(f"epoch window end {end} before start {start}")
        fib = MultiPrefixFib()
        index = 0
        changes = self._changes
        changed: Set[Prefix] = set()
        while index < len(changes) and changes[index].time <= start:
            fib.set_entry(changes[index].node, changes[index].prefix, changes[index].next_hop)
            changed.add(changes[index].prefix)
            index += 1

        cursor = start
        while cursor < end:
            next_time = changes[index].time if index < len(changes) else None
            if next_time is None or next_time >= end:
                yield (cursor, end, fib, frozenset(changed))
                return
            if next_time > cursor:
                yield (cursor, next_time, fib, frozenset(changed))
                cursor = next_time
                changed = set()
            # lint: allow(float-time-eq) -- equality groups same-instant
            # records sharing one float value read from this very list.
            while (
                index < len(changes)
                and changes[index].time == next_time  # lint: allow(float-time-eq)
            ):
                fib.set_entry(changes[index].node, changes[index].prefix, changes[index].next_hop)
                changed.add(changes[index].prefix)
                index += 1


# ----------------------------------------------------------------------
# Longest-prefix-match resolution
# ----------------------------------------------------------------------


PrefixTrie = RadixTrie
"""Historical name for the LPM index; now the path-compressed
:class:`~repro.prefixes.trie.RadixTrie` (same insert/remove/lookup/entries
surface, O(branch points) nodes instead of one node per bit)."""


class MultiPrefixFib:
    """Every node's forwarding table over a *population* of prefixes.

    Structured prefixes (parseable by :func:`repro.prefixes.parse_prefix`)
    resolve by longest match, so a specific shadows its cover and withdrawing
    the specific (``next_hop=None``) falls back to the cover — the semantics
    aggregation/deaggregation events rely on.  Opaque legacy prefixes match
    exactly and never interact with each other or with structured ones.

    A ``next_hop`` of ``None`` **deletes** the entry rather than storing a
    blackhole: an unreachable specific must not shadow a reachable cover.
    """

    def __init__(self) -> None:
        self._tries: Dict[int, RadixTrie] = {}
        self._opaque: Dict[int, Dict[Prefix, int]] = {}

    def set_entry(self, node: int, prefix: Prefix, next_hop: Optional[int]) -> None:
        spec = _parse(prefix)
        if spec is not None:
            trie = self._tries.get(node)
            if next_hop is None:
                if trie is not None:
                    trie.remove(spec)
                return
            if trie is None:
                trie = self._tries[node] = RadixTrie()
            # Payload carries the canonical string so resolve() never
            # re-formats a PrefixSpec on the per-hop hot path.
            trie.insert(spec, (prefix, next_hop))
        else:
            table = self._opaque.get(node)
            if next_hop is None:
                if table is not None:
                    table.pop(prefix, None)
                return
            if table is None:
                table = self._opaque[node] = {}
            table[prefix] = next_hop

    def resolve(self, node: int, destination: Destination) -> Optional[Tuple[Prefix, int]]:
        """LPM (or exact-match) resolution: ``(matched_prefix, next_hop)``.

        ``destination`` is an integer address for structured prefixes or the
        opaque prefix string itself.  ``None`` when the node has no matching
        route.
        """
        if isinstance(destination, int):
            trie = self._tries.get(node)
            if trie is None:
                return None
            hit = trie.lookup(destination)
            if hit is None:
                return None
            return hit[1]  # the (prefix, next_hop) payload stored at insert
        table = self._opaque.get(node)
        if table is None or destination not in table:
            return None
        return (destination, table[destination])

    def next_hop(self, node: int, destination: Destination) -> Optional[int]:
        hit = self.resolve(node, destination)
        return None if hit is None else hit[1]

    def delivers_locally(self, node: int, destination: Destination) -> bool:
        """True when the node's best match points at itself."""
        return self.next_hop(node, destination) == node

    def node_entries(self, node: int) -> List[Tuple[Prefix, int]]:
        """The node's live entries as sorted ``(prefix, next_hop)`` pairs."""
        pairs: List[Tuple[Prefix, int]] = [
            payload  # (prefix, next_hop), canonical string from insert time
            for _spec, payload in (
                self._tries[node].entries() if node in self._tries else []
            )
        ]
        pairs.extend(sorted((self._opaque.get(node) or {}).items()))
        pairs.sort()
        return pairs
