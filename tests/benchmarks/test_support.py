"""The benchmark journal: interrupted sweeps must resume, not restart.

``checkpointed_sweep`` appends one JSON line per finished point; these
tests drive it against real (tiny) sweeps and assert that a rerun only
executes the missing x values, that torn journal lines are tolerated, and
that an all-failed point journals ``metrics == {}`` instead of wedging
the resume loop.
"""

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

from _support import PointRecord, checkpointed_sweep, load_point_journal

from repro.bgp import BgpConfig
from repro.experiments import RunSettings, constant_config, factory_ref
from repro.experiments.scenarios import clique_tdown_trial

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
#: Budget that kills a 6-clique but lets a 3-clique finish (see
#: tests/experiments/test_parallel_sweep.py for the calibration).
TIGHT = RunSettings(failure_guard=0.5, event_budget=200)

MAKE_CONFIG = factory_ref(constant_config, config=FAST)


def journal_lines(path):
    return [
        line for line in path.read_text(encoding="utf-8").splitlines() if line
    ]


class TestCheckpointedSweep:
    def test_points_journal_as_they_finish(self, tmp_path):
        journal = tmp_path / "sweep.points.jsonl"
        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert all(r.succeeded == 1 and r.failed == 0 for r in records)
        assert len(journal_lines(journal)) == 2

    def test_interrupted_run_resumes_without_repeating(self, tmp_path):
        journal = tmp_path / "sweep.points.jsonl"
        # "Interrupt": the first invocation only got through x=3.
        first = checkpointed_sweep(
            "unused",
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        resumed = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in resumed] == [3, 4]
        # x=3 was loaded from the journal, byte-identical to the first run.
        assert resumed[0] == first[0]
        # Only one new line was appended (x=4); x=3 was not re-journaled.
        assert len(journal_lines(journal)) == 2

    def test_resume_skips_completed_x_entirely(self, tmp_path, monkeypatch):
        journal = tmp_path / "sweep.points.jsonl"
        checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )

        # With every point journaled, a rerun must not call sweep at all.
        def exploding_sweep(*args, **kwargs):
            raise AssertionError("sweep re-executed a completed point")

        monkeypatch.setattr(
            "repro.experiments.sweep", exploding_sweep, raising=True
        )
        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert all(r.metrics["convergence_time"] > 0 for r in records)

    def test_fresh_discards_the_journal(self, tmp_path):
        journal = tmp_path / "sweep.points.jsonl"
        journal.write_text(
            PointRecord(x=3, succeeded=9, failed=9, metrics={}).to_json()
            + "\n",
            encoding="utf-8",
        )
        records = checkpointed_sweep(
            "unused",
            [3],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
            fresh=True,
        )
        # The bogus journaled counts are gone; the point was re-run.
        assert records[0].succeeded == 1
        assert records[0].failed == 0

    def test_torn_final_line_is_skipped_and_rerun(self, tmp_path):
        journal = tmp_path / "sweep.points.jsonl"
        good = PointRecord(
            x=3, succeeded=1, failed=0, metrics={"convergence_time": 1.0}
        )
        # The interrupt arrived mid-write: the x=4 line is truncated.
        journal.write_text(
            good.to_json() + "\n" + '{"x": 4, "succ', encoding="utf-8"
        )
        completed = load_point_journal(journal)
        assert set(completed) == {3}

        records = checkpointed_sweep(
            "unused",
            [3, 4],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=SETTINGS,
            path=journal,
        )
        assert [r.x for r in records] == [3, 4]
        assert records[0] == good  # loaded, not re-run
        assert records[1].succeeded == 1  # re-run despite the torn line

    def test_all_failed_point_journals_empty_metrics(self, tmp_path):
        journal = tmp_path / "sweep.points.jsonl"
        records = checkpointed_sweep(
            "unused",
            [6],
            clique_tdown_trial,
            MAKE_CONFIG,
            seeds=(0,),
            settings=TIGHT,
            path=journal,
        )
        assert records[0].failed == 1
        assert records[0].succeeded == 0
        assert records[0].metrics == {}
        # And the journal line is valid JSON a resume can load.
        reloaded = load_point_journal(journal)
        assert reloaded[6].metrics == {}


class TestPointRecordJson:
    def test_round_trip(self):
        record = PointRecord(
            x=5.0,
            succeeded=2,
            failed=1,
            metrics={"updates_sent": 42.0, "distinct_loops": 1.5},
        )
        assert PointRecord.from_json(record.to_json()) == record

    def test_json_is_one_line(self):
        record = PointRecord(x=1.0, succeeded=1, failed=0, metrics={})
        assert "\n" not in record.to_json()
        assert json.loads(record.to_json())["x"] == 1.0
