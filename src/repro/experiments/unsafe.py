"""Deliberately unsafe policy scenarios: the classic divergence gadgets.

The paper's loops are *transient*: under shortest-path policy the protocol
provably converges, so every loop dies.  This module ships the canonical
counterexamples from the stability literature — policy configurations
whose loops need *not* die — so the static analyzer
(:mod:`repro.analysis.stability`) and the dynamic oscillation runner
(:mod:`repro.experiments.oscillation`) have ground truth in both
directions:

``disagree()``
    Griffin & Wilfong's DISAGREE: two nodes that each prefer the route
    through the other.  It has two stable states and converges under
    MRAI-staggered (asynchronous) timing, yet its dispute wheel admits a
    divergent execution that synchronous timing realizes — the textbook
    demonstration that a wheel makes divergence *possible*, not certain.
``bad_gadget()``
    The BAD-GADGET: three rim nodes around the destination, each
    preferring its clockwise neighbor's route.  It has **no** stable
    solution, so the protocol oscillates forever — the persistent-loop
    contrast to the paper's transient loops.
``wedgie()``
    A BGP wedgie (RFC 4264 shape): a primary/backup configuration with
    two stable states.  The intended state survives warm-up, but a single
    flap of the primary link can leave the network *wedged* in the
    unintended state after the link recovers.

Each gadget is a :class:`PolicyScenario`: a plain :class:`Scenario` plus a
picklable per-node policy factory built on
:class:`~repro.bgp.policy.PathRankPolicy` (the Stable Paths Problem's
ranked-path-list form).  :func:`stability_suite` bundles them with the
safe baseline scenarios into the named suite that ``python -m repro
stability`` certifies and CI pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..bgp import (
    GaoRexfordPolicy,
    PathRankPolicy,
    RoutingPolicy,
    ShortestPathPolicy,
    relationships_from_tiers,
)
from ..topology import InternetShape, Topology, internet_like_with_tiers
from .scenarios import (
    DEFAULT_PREFIX,
    EventKind,
    Scenario,
    tdown_clique,
    tdown_internet,
    tlong_bclique,
)


class RankedPolicyFactory:
    """Picklable per-node :class:`PathRankPolicy` assignment.

    Nodes absent from ``rankings`` (typically the destination, which
    originates locally) get the default shortest-path policy.
    """

    def __init__(
        self,
        rankings: Mapping[int, Sequence[Sequence[int]]],
        prefix: str = DEFAULT_PREFIX,
    ) -> None:
        self._rankings: Dict[int, Tuple[Tuple[int, ...], ...]] = {
            node: tuple(tuple(int(n) for n in path) for path in paths)
            for node, paths in sorted(rankings.items())
        }
        self._prefix = prefix

    def __call__(self, node: int) -> RoutingPolicy:
        ranked = self._rankings.get(node)
        if ranked is None:
            return ShortestPathPolicy()
        return PathRankPolicy(node, ranked, prefix=self._prefix)


class TieredGaoRexfordFactory:
    """Picklable Gao-Rexford assignment derived from generator tiers."""

    def __init__(self, topology: Topology, tiers: Dict[int, str]) -> None:
        self._relationships = relationships_from_tiers(topology, tiers)

    def __call__(self, node: int) -> RoutingPolicy:
        return GaoRexfordPolicy(self._relationships[node])


@dataclass(frozen=True)
class PolicyScenario:
    """A scenario bound to its (possibly ``None``) policy assignment.

    This is the unit the stability tooling works on: the static certifier
    consumes ``(scenario, policy_factory)``, and the oscillation runner
    simulates exactly the same pair — so a verdict and a measurement are
    always about the same object.
    """

    scenario: Scenario
    policy_factory: Optional[object]  # PolicyFactory; object keeps it picklable
    summary: str

    @property
    def name(self) -> str:
        return self.scenario.name


# ----------------------------------------------------------------------
# The gadgets
# ----------------------------------------------------------------------


def disagree() -> PolicyScenario:
    """DISAGREE: nodes 1 and 2 each prefer the route through the other.

    Stable states exist (two of them: one node direct, the other riding
    it), so the wheel the analyzer finds is not a proof of divergence —
    it is a proof that a divergent *execution* exists.  The simulator
    shows both: with MRAI staggering the rounds the system settles into a
    stable state within a handful of updates, while with ``mrai=0`` the
    two nodes can stay phase-locked, swapping preferences forever — the
    textbook demonstration that a wheel is necessary for divergence but
    convergence remains timing-dependent.
    """
    topology = Topology.from_edges([(0, 1), (0, 2), (1, 2)], name="disagree")
    scenario = Scenario(
        name="disagree",
        topology=topology,
        destination=0,
        event=EventKind.TDOWN,
    )
    factory = RankedPolicyFactory({
        1: ((1, 2, 0), (1, 0)),
        2: ((2, 1, 0), (2, 0)),
    })
    return PolicyScenario(
        scenario=scenario,
        policy_factory=factory,
        summary=(
            "two nodes each preferring the path through the other; has two "
            "stable states but its dispute wheel admits a divergent "
            "execution (reached under synchronous timing)"
        ),
    )


def bad_gadget() -> PolicyScenario:
    """BAD-GADGET: the canonical no-stable-solution instance.

    Rim nodes 1, 2, 3 around destination 0; each rim node prefers the
    path through its clockwise successor over its own direct path.  No
    assignment of paths is stable, so update activity — and the
    forwarding loops it drags around the rim — never ends.
    """
    topology = Topology.from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (1, 3)], name="bad-gadget"
    )
    scenario = Scenario(
        name="bad-gadget",
        topology=topology,
        destination=0,
        event=EventKind.TDOWN,
    )
    factory = RankedPolicyFactory({
        1: ((1, 2, 0), (1, 0)),
        2: ((2, 3, 0), (2, 0)),
        3: ((3, 1, 0), (3, 0)),
    })
    return PolicyScenario(
        scenario=scenario,
        policy_factory=factory,
        summary=(
            "three rim nodes each preferring the clockwise route; no stable "
            "solution exists, so oscillation is persistent"
        ),
    )


def wedgie(flap_period: float = 20.0) -> PolicyScenario:
    """A BGP wedgie: primary/backup intent with two stable states.

    Destination 0 is dual-homed: primary provider 3 (direct link) and
    backup provider 1, who honors the backup intent by ranking its long
    path through 2 and 3 *above* its direct customer link.  Node 2
    prefers routes via 1 over routes via 3.  Intended state: everyone
    reaches 0 through 3, and the 0–1 link idles.  After the primary link
    (0, 3) fails and recovers (one flap), the system can come back wedged
    — 2 riding 1's direct path, 1 unable to return to the long path —
    which is stable and violates the routing intent.
    """
    topology = Topology.from_edges(
        [(0, 1), (0, 3), (1, 2), (2, 3)], name="bgp-wedgie"
    )
    scenario = Scenario(
        name="bgp-wedgie",
        topology=topology,
        destination=0,
        event=EventKind.TFLAP,
        failed_link=(0, 3),
        flap_period=flap_period,
        flap_count=1,
    )
    factory = RankedPolicyFactory({
        1: ((1, 2, 3, 0), (1, 0)),
        2: ((2, 1, 0), (2, 3, 0)),
        3: ((3, 0), (3, 2, 1, 0)),
    })
    return PolicyScenario(
        scenario=scenario,
        policy_factory=factory,
        summary=(
            "primary/backup dual-homing with two stable states; one flap of "
            "the primary link can leave routing wedged in the wrong one"
        ),
    )


# ----------------------------------------------------------------------
# The certified suite
# ----------------------------------------------------------------------


def _gao_rexford_internet(n: int = 24, seed: int = 3) -> PolicyScenario:
    """A tiered Internet-like graph under Gao-Rexford policies (safe).

    Mirrors the convergence test's setup: fully-meshed tier-1 core (peer
    routes never re-export to peers, so a partial mesh can legitimately
    strand core nodes) and a stub-AS destination.
    """
    shape = InternetShape(core_mesh_probability=1.0)
    topology, tiers = internet_like_with_tiers(n, seed=seed, shape=shape)
    destination = max(topology.nodes)  # a stub AS originates
    scenario = Scenario(
        name=f"gao-rexford-internet-{n}-s{seed}",
        topology=topology,
        destination=destination,
        event=EventKind.TDOWN,
    )
    return PolicyScenario(
        scenario=scenario,
        policy_factory=TieredGaoRexfordFactory(topology, tiers),
        summary="tiered AS graph under Gao-Rexford policies (structurally safe)",
    )


def stability_suite() -> Tuple[PolicyScenario, ...]:
    """The bundled scenarios the stability CLI certifies, in fixed order.

    Safe baselines first (the paper's families plus the Gao-Rexford
    layer), then the three gadgets.  CI pins the expected verdicts in
    ``benchmarks/baselines/STABILITY_verdicts.json``.
    """
    shortest = (
        tdown_clique(5),
        tlong_bclique(4),
        tdown_internet(24, seed=0),
    )
    entries = [
        PolicyScenario(
            scenario=scenario,
            policy_factory=None,
            summary="paper baseline under shortest-path policy (safe)",
        )
        for scenario in shortest
    ]
    entries.append(_gao_rexford_internet())
    entries.extend((disagree(), bad_gadget(), wedgie()))
    return tuple(entries)
