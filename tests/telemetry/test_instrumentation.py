"""Integration: a traced run produces coherent metrics, an enriched
timeline, and — the core contract — a fingerprint bit-identical to the
untraced run."""

import pytest

from repro.analysis import fingerprint_run
from repro.bgp import BgpConfig
from repro.experiments import RunSettings, run_experiment, tdown_clique

FAST = BgpConfig(mrai=1.0, processing_delay=(0.01, 0.05))
SETTINGS = RunSettings(failure_guard=0.5)
TRACED = RunSettings(failure_guard=0.5, telemetry=True, timeline=True)


@pytest.fixture(scope="module")
def traced_run():
    return run_experiment(tdown_clique(4), FAST, TRACED, seed=0, keep_network=True)


class TestDigestInertness:
    def test_fingerprint_identical_with_telemetry_off(self, traced_run):
        plain = run_experiment(
            tdown_clique(4), FAST, SETTINGS, seed=0, keep_network=True
        )
        assert plain.metrics is None and plain.timeline is None
        assert fingerprint_run(traced_run).digest == fingerprint_run(plain).digest


class TestMetricsCoherence:
    def test_counts_cross_check_against_the_trace(self, traced_run):
        snap = traced_run.metrics
        trace = traced_run.network.trace
        # The live per-kind counters and the post-run trace tallies are two
        # independent measurements of the same sends.
        for kind, total in trace.kind_counts().items():
            assert snap.counter(f"net.messages_sent.{kind}") == total
            assert snap.counter(f"trace.messages.{kind}") == total

    def test_engine_counters_plausible(self, traced_run):
        snap = traced_run.metrics
        executed = snap.counter("engine.events_executed")
        scheduled = snap.counter("engine.events_scheduled")
        assert 0 < executed <= scheduled
        assert snap.gauges["engine.heap_depth"].high_water > 0

    def test_dataplane_counters_match_result(self, traced_run):
        snap = traced_run.metrics
        result = traced_run.result
        assert snap.counter("dataplane.loops_entered") == len(result.loop_intervals)
        assert (
            snap.counter("dataplane.ttl_exhaustions") == result.ttl_exhaustions
        )
        assert (
            snap.counter("dataplane.packets_sent")
            == result.dataplane.packets_sent
        )

    def test_bgp_activity_recorded(self, traced_run):
        snap = traced_run.metrics
        assert snap.counter("bgp.decision_runs") > 0
        assert snap.counter("bgp.mrai_expiries") > 0
        assert snap.counter("dataplane.fib_changes") > 0


class TestTimelineEnrichment:
    def test_phase_spans_bracket_the_run(self, traced_run):
        phases = {r.name: r for r in traced_run.timeline.records("phase")}
        assert set(phases) == {"warm-up", "failure", "post-failure"}
        assert phases["warm-up"].time == 0.0
        assert phases["warm-up"].end == traced_run.warmup_time
        assert phases["failure"].time == traced_run.failure_time
        assert phases["post-failure"].end == traced_run.end_time

    def test_one_span_per_loop_interval(self, traced_run):
        loops = traced_run.timeline.records("loop")
        assert len(loops) == len(traced_run.result.loop_intervals)
        for record, interval in zip(loops, traced_run.result.loop_intervals):
            assert record.time == interval.start
            assert record.end == interval.end
            assert record.name.startswith("loop[")

    def test_dense_categories_present(self, traced_run):
        categories = traced_run.timeline.categories()
        assert "bgp" in categories  # MRAI expiries
        assert "dataplane" in categories  # FIB changes

    def test_chrome_export_validates(self, traced_run):
        from repro.telemetry import validate_chrome_trace

        payload = traced_run.timeline.to_chrome_trace()
        assert validate_chrome_trace(payload) == len(
            payload["traceEvents"]
        ) > 0
