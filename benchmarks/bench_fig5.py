"""Figure 5: looping duration and convergence time vs MRAI.

Paper shape: both metrics are linearly proportional to the MRAI value
(Observation 1; for convergence time this confirms Griffin & Premore).
"""

from _support import record

from repro.experiments.figures import figure5a, figure5b

MRAI_VALUES = (7.5, 15.0, 30.0, 45.0, 60.0)


def test_fig5a_tdown_clique_mrai(benchmark):
    figure = benchmark.pedantic(
        lambda: figure5a(mrai_values=MRAI_VALUES, clique_size=10, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    assert all(check.holds for check in figure.checks)


def test_fig5b_tlong_bclique_mrai(benchmark):
    figure = benchmark.pedantic(
        lambda: figure5b(mrai_values=MRAI_VALUES, bclique_size=8, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
