"""Shared utilities: statistics and report formatting."""

from .stats import (
    LinearFit,
    Summary,
    coefficient_of_variation,
    linear_fit,
    mean,
    median,
    stdev,
    summarize,
)
from .plot import ascii_chart
from .tables import format_cell, render_series, render_table

__all__ = [
    "LinearFit",
    "Summary",
    "ascii_chart",
    "coefficient_of_variation",
    "format_cell",
    "linear_fit",
    "mean",
    "median",
    "render_series",
    "render_table",
    "stdev",
    "summarize",
]
