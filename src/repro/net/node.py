"""The protocol-agnostic node: serialized message processing over channels.

A :class:`Node` owns a :class:`~repro.engine.process.SerialProcessor` (the
router CPU).  Messages delivered by a channel do not reach the protocol
handler immediately; they queue for a per-message service time drawn from the
node's processing-delay distribution — the paper's U[0.1 s, 0.5 s] — and the
handler runs when service completes.  Protocol implementations (the BGP
speaker, the RIP baseline) subclass this and implement
:meth:`handle_message`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List

from ..engine import Scheduler, SerialProcessor
from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .network import Network


def zero_service_time() -> float:
    """A processing-delay distribution for instant handling (tests)."""
    return 0.0


class Node:
    """Base class for simulated routers.

    Subclasses receive three hooks:

    * :meth:`handle_message` — a message finished its processing delay,
    * :meth:`on_link_down` / :meth:`on_link_up` — adjacency state changed
      (invoked immediately, modeling interface-level failure detection),
    * :meth:`on_session_reset` — the transport session to a neighbor was
      torn down while the physical link stayed up,
    * :meth:`crash` / :meth:`restart` — whole-router fault injection,
    * :meth:`start` — the simulation is about to begin.
    """

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        service_time: Callable[[], float] = zero_service_time,
    ) -> None:
        self.node_id = node_id
        self.scheduler = scheduler
        self._service_time = service_time
        self.processor = SerialProcessor(scheduler, name=f"node-{node_id}")
        self._network: "Network" = None  # type: ignore[assignment]
        self.alive = True
        self.messages_received = 0
        self.messages_dropped_dead = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        """Called once by :class:`Network` when the node is registered."""
        if self._network is not None:
            raise NetworkError(f"node {self.node_id} already attached to a network")
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise NetworkError(f"node {self.node_id} is not attached to a network")
        return self._network

    @property
    def neighbors(self) -> List[int]:
        """Ids of neighbors whose link to this node is currently up."""
        return self.network.live_neighbors(self.node_id)

    def link_is_up(self, neighbor: int) -> bool:
        """True when the adjacency to ``neighbor`` exists and is up."""
        return self.network.link_is_up(self.node_id, neighbor)

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def send(self, neighbor: int, message: Any) -> None:
        """Transmit ``message`` to an adjacent node over the live link."""
        self.network.send(self.node_id, neighbor, message)

    def deliver(self, src: int, message: Any) -> None:
        """Channel callback: queue the message for CPU service.

        A crashed node's interfaces are dark: deliveries are silently lost.
        Messages flagged ``HOUSEKEEPING`` (keepalives) are processed in
        housekeeping service slots that do not block quiescence detection.
        """
        if not self.alive:
            self.messages_dropped_dead += 1
            return
        self.messages_received += 1
        telemetry = self.scheduler.telemetry
        if telemetry is not None:
            telemetry.on_cpu_enqueue(self.node_id, self.processor.queue_length)
        self.processor.submit(
            self._service_time(),
            lambda: self.handle_message(src, message),
            housekeeping=bool(getattr(message, "HOUSEKEEPING", False)),
        )

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Initialization hook; default does nothing."""

    def handle_message(self, src: int, message: Any) -> None:
        """Process one message from neighbor ``src`` (after service delay)."""
        raise NotImplementedError

    def on_link_down(self, neighbor: int) -> None:
        """The adjacency to ``neighbor`` just failed; default does nothing."""

    def on_link_up(self, neighbor: int) -> None:
        """The adjacency to ``neighbor`` just recovered; default does nothing."""

    def on_session_reset(self, neighbor: int) -> None:
        """The transport session to ``neighbor`` was reset (link stays up).

        Default does nothing — protocols without a session concept are
        unaffected by a TCP reset.
        """

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Go dark: lose the CPU queue; subclasses drop protocol state too.

        Called by :meth:`Network.crash_node`; do not call directly or the
        network's link bookkeeping is skipped.
        """
        self.alive = False
        self.processor.clear()

    def restart(self) -> None:
        """Come back up cold; subclasses re-seed their configured state.

        Invoked by :meth:`Network.restart_node` *before* the node's links
        are restored, so a restarting protocol sees its adjacencies come up
        one `on_link_up` at a time — exactly like a cold boot.
        """
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id}>"
