#!/usr/bin/env python
"""Link state vs distance vector vs path vector on one identical failure.

§2 of the paper surveys transient looping across routing-protocol families;
this example stages the comparison directly.  All three protocol
implementations share the same network substrate, processing-delay model,
failure injection, and loop metrics, so the only variable is the protocol.

Usage::

    python examples/protocol_triangle.py [bclique_size]
"""

import sys

from repro.bgp import BgpConfig, BgpSpeaker
from repro.core import loop_timeline
from repro.dataplane import FibChangeLog
from repro.dv import RipSpeaker
from repro.engine import RandomStreams, Scheduler
from repro.ls import LinkStateSpeaker
from repro.net import Network
from repro.topology import b_clique
from repro.util import render_table

PREFIX = "dest"
PROC = (0.1, 0.5)


def run_protocol(make_speaker, size):
    scheduler = Scheduler()
    log = FibChangeLog()
    network = Network(
        b_clique(size), scheduler, lambda nid, sch: make_speaker(nid, sch, log)
    )
    origin = network.node(0)
    if hasattr(origin, "originate"):
        origin.originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)

    failure_time = scheduler.now + 1.0
    network.schedule_link_failure(0, size, at=failure_time)
    before = len(network.trace)
    scheduler.run(max_events=500_000)

    last = network.trace.last_time(lambda r: r.time >= failure_time)
    convergence = (last - failure_time) if last is not None else 0.0
    intervals = loop_timeline(log, PREFIX, failure_time, scheduler.now)
    longest = max((i.duration for i in intervals), default=0.0)
    return convergence, len(intervals), longest, len(network.trace) - before


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(
        f"Failing the edge-to-core link of a B-Clique-{size} under three "
        "routing protocols\n(identical substrate, delays, and metrics).\n"
    )
    streams = [RandomStreams(1) for _ in range(3)]
    bgp_config = BgpConfig(mrai=30.0, processing_delay=PROC)
    protocols = [
        (
            "link-state (OSPF-ish)",
            lambda nid, sch, log: LinkStateSpeaker(
                nid, sch, streams[0], destinations={PREFIX: 0},
                processing_delay=PROC, fib_listener=log.record,
            ),
        ),
        (
            "distance-vector (RIP)",
            lambda nid, sch, log: RipSpeaker(
                nid, sch, streams[1], processing_delay=PROC,
                poison_reverse=True, fib_listener=log.record,
            ),
        ),
        (
            "path-vector (BGP)",
            lambda nid, sch, log: BgpSpeaker(
                nid, sch, config=bgp_config, streams=streams[2],
                fib_listener=log.record,
            ),
        ),
    ]
    rows = []
    for label, factory in protocols:
        convergence, loops, longest, messages = run_protocol(factory, size)
        rows.append([label, convergence, loops, longest, messages])
    print(
        render_table(
            ["protocol", "convergence_s", "loops", "longest_loop_s", "messages"],
            rows,
            title="Same failure, three protocol families",
        )
    )
    print(
        "\nReading: link state floods fast (short inconsistency, but loops"
        "\nstill form); distance vector pays in message churn; path-vector"
        "\nBGP pays in time — its MRAI timer stretches the inconsistent"
        "\nwindow, which is exactly the paper's thesis."
    )


if __name__ == "__main__":
    main()
