"""Compare a fresh benchmark document against a committed baseline.

The CI ``bench-regression`` job runs ``bench_hotpath.py`` (median of 3)
and then::

    python benchmarks/compare_baselines.py \
        benchmarks/baselines/BENCH_hotpath.json BENCH_hotpath.json

A scenario *regresses* when its median wall-clock grows more than
``--tolerance`` (default 25%) over the baseline, or when it is missing
from the candidate.  Speedups and small fluctuations pass; CI runners
are shared hardware, so the tolerance is deliberately generous and the
benchmark reports medians.

Updates/sec and update counts are reported for context but not gated:
the update count is digest-checked behavior (it cannot drift without the
determinism job failing first), and updates/sec is just its ratio with
the gated wall-clock.

Output formats (``--format``):

``table``
    The human-readable per-scenario table (default).
``json``
    One machine-readable document on stdout — per-scenario deltas,
    verdicts, the tolerance, and the overall ``ok`` flag.  This is what
    the sweep service's continuous-bench scheduler parses.

Exit codes (stable, scripted against by CI and the service):

* ``0`` — every baseline scenario present and within tolerance;
* ``1`` — at least one scenario regressed or went missing;
* ``2`` — unusable input (file missing, bad JSON, no ``results``).

``compare_documents`` is importable for anyone who already holds the
parsed documents and wants the structured report without a subprocess.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Exit statuses, named so callers can script against them.
EXIT_OK = 0
EXIT_REGRESSED = 1
EXIT_BAD_INPUT = 2


class ComparisonError(ValueError):
    """The baseline or candidate document is unusable."""


def load(path: Path) -> Dict:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ComparisonError(f"{path} does not exist")
    except json.JSONDecodeError as exc:
        raise ComparisonError(f"{path} is not valid JSON: {exc}")
    if not isinstance(document.get("results"), dict):
        raise ComparisonError(f"{path} has no 'results' mapping")
    return document


def compare_documents(
    baseline: Dict, candidate: Dict, tolerance: float = 0.25
) -> Dict:
    """Compare two parsed benchmark documents; returns the report dict.

    The report shape is the ``--format json`` output::

        {"tolerance": 0.25, "schema_match": true, "ok": true,
         "regressions": 0,
         "scenarios": [{"name": ..., "status": "ok"|"regressed"|"missing",
                        "baseline_wall_s": ..., "candidate_wall_s": ...,
                        "ratio": ..., "baseline_updates_per_s": ...,
                        "candidate_updates_per_s": ...}, ...]}
    """
    scenarios: List[Dict] = []
    regressions = 0
    for name in sorted(baseline["results"]):
        base = baseline["results"][name]
        cand = candidate["results"].get(name)
        if cand is None:
            scenarios.append({"name": name, "status": "missing"})
            regressions += 1
            continue
        base_wall = float(base["wall_clock_s"])
        cand_wall = float(cand["wall_clock_s"])
        ratio = cand_wall / base_wall if base_wall > 0 else float("inf")
        regressed = ratio > 1.0 + tolerance
        if regressed:
            regressions += 1
        scenarios.append(
            {
                "name": name,
                "status": "regressed" if regressed else "ok",
                "baseline_wall_s": base_wall,
                "candidate_wall_s": cand_wall,
                "ratio": ratio,
                "baseline_updates_per_s": base.get("updates_per_s"),
                "candidate_updates_per_s": cand.get("updates_per_s"),
            }
        )
    return {
        "tolerance": tolerance,
        "schema_match": baseline.get("schema") == candidate.get("schema"),
        "ok": regressions == 0,
        "regressions": regressions,
        "scenarios": scenarios,
    }


def render_table(report: Dict) -> str:
    """The human-readable per-scenario table for one report."""
    tolerance = report["tolerance"]
    header = (
        f"{'scenario':<12} {'baseline':>12} {'candidate':>12} "
        f"{'ratio':>8}  verdict"
    )
    lines = [header, "-" * len(header)]
    for scenario in report["scenarios"]:
        name = scenario["name"]
        if scenario["status"] == "missing":
            lines.append(f"{name:<12} {'—':>12} {'—':>12} {'—':>8}  MISSING")
            continue
        verdict = (
            f"REGRESSED (> +{tolerance:.0%})"
            if scenario["status"] == "regressed"
            else "ok"
        )
        lines.append(
            f"{name:<12} {scenario['baseline_wall_s'] * 1e3:>10.1f}ms "
            f"{scenario['candidate_wall_s'] * 1e3:>10.1f}ms "
            f"{scenario['ratio']:>7.2f}x  {verdict}"
        )
        lines.append(
            f"{'':<12} {scenario.get('baseline_updates_per_s') or '?':>10} u/s "
            f"{scenario.get('candidate_updates_per_s') or '?':>10} u/s"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a benchmark run against a committed baseline."
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("candidate", type=Path, help="freshly-measured JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRACTION",
        help="allowed wall-clock growth before failing (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format: human table (default) or machine JSON",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load(args.baseline)
        candidate = load(args.candidate)
    except ComparisonError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT

    report = compare_documents(baseline, candidate, args.tolerance)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        if not report["schema_match"]:
            print(
                f"warning: schema mismatch "
                f"(baseline {baseline.get('schema')}, "
                f"candidate {candidate.get('schema')})",
                file=sys.stderr,
            )
        print(render_table(report))
        if report["regressions"]:
            print(
                f"\n{report['regressions']} scenario(s) regressed beyond "
                f"+{args.tolerance:.0%}; if intentional, refresh the "
                f"baseline under benchmarks/baselines/ (see README).",
                file=sys.stderr,
            )
        else:
            print("\nall scenarios within tolerance")
    return EXIT_REGRESSED if report["regressions"] else EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
