"""Unit tests for ASCII charts."""

import pytest

from repro.errors import AnalysisError
from repro.util import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart([0, 5, 10], [("line", [0.0, 5.0, 10.0])], width=20, height=5)
        lines = text.splitlines()
        assert any("*" in line for line in lines)
        assert "line" in lines[-1]            # legend
        assert lines[-3].lstrip().startswith("+")  # x-axis rule

    def test_title_included(self):
        text = ascii_chart([0, 1], [("y", [1.0, 2.0])], title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_extremes_land_on_corners(self):
        text = ascii_chart([0, 10], [("y", [0.0, 10.0])], width=10, height=4)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        assert rows[0][-1] == "*"   # max y at max x: top-right
        assert rows[-1][0] == "*"   # min y at min x: bottom-left

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_chart(
            [0, 1, 2], [("a", [0, 1, 2]), ("b", [2, 1, 0])], width=15, height=5
        )
        assert "*" in text and "o" in text
        assert "a" in text and "b" in text

    def test_axis_labels_show_ranges(self):
        text = ascii_chart([2, 8], [("y", [10.0, 30.0])], width=20, height=5)
        assert "30" in text and "10" in text   # y range
        assert "2" in text and "8" in text     # x range

    def test_flat_series_renders(self):
        text = ascii_chart([0, 1, 2], [("y", [5.0, 5.0, 5.0])], width=12, height=4)
        assert "*" in text

    def test_nan_points_skipped(self):
        text = ascii_chart([0, 1, 2], [("y", [1.0, float("nan"), 3.0])])
        assert "*" in text

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_chart([], [("y", [])])
        with pytest.raises(AnalysisError):
            ascii_chart([1], [("y", [1.0, 2.0])])
        with pytest.raises(AnalysisError):
            ascii_chart([1], [("y", [1.0])], width=2)
        with pytest.raises(AnalysisError):
            ascii_chart([1], [(f"s{i}", [1.0]) for i in range(9)])
        with pytest.raises(AnalysisError):
            ascii_chart([1, 2], [("y", [float("nan"), float("nan")])])


class TestFigurePlot:
    def test_figure_data_plot(self):
        from repro.experiments import FigureData

        figure = FigureData(
            figure_id="f",
            title="t",
            x_label="x",
            xs=[1.0, 2.0, 3.0],
            series={"conv": [10.0, 20.0, 30.0], "bad": [1.0, float("inf"), 2.0]},
        )
        text = figure.plot(width=20, height=5)
        assert "conv" in text
        assert "bad" not in text  # non-finite series skipped

    def test_figure_plot_with_nothing_drawable(self):
        from repro.experiments import FigureData

        figure = FigureData(
            figure_id="f",
            title="t",
            x_label="x",
            xs=[1.0],
            series={"bad": [float("inf")]},
        )
        with pytest.raises(AnalysisError):
            figure.plot()
