"""Opt-in runtime sanitizers: simulation invariants checked while running.

The static linter (:mod:`repro.analysis.lint`) catches nondeterminism
*patterns*; the sanitizers catch invariant *violations* in a live
simulation.  They hang off a deliberately lightweight hook API so that
instrumentation points stay cheap when no sanitizer is installed:

* the :class:`~repro.engine.scheduler.Scheduler` owns an optional
  ``invariants`` object (installed via ``install_invariants``); it calls
  ``on_schedule`` / ``on_event_fired``,
* :class:`~repro.net.channel.Channel` stamps every message with a
  ``(generation, sequence)`` pair and calls ``on_channel_send`` /
  ``on_channel_deliver`` / ``on_channel_flush`` through the scheduler's
  hook object,
* :class:`~repro.bgp.speaker.BgpSpeaker` calls ``on_decision`` after
  every decision-process run and ``on_announcement`` /
  ``on_withdrawal`` just before emitting an update.

Every layer guards with ``if hooks is not None``, so the zero-sanitizer
fast path costs one attribute read.  Future subsystems get invariant
checking by adding a hook method to :class:`InvariantHooks` (default
no-op) and calling it from their layer.

The shipped sanitizers:

:class:`CausalitySanitizer`
    No event may be scheduled before current simulation time, and fired
    events must be non-decreasing in time.
:class:`FifoSanitizer`
    Per-channel sequence numbers assert reliable in-order delivery:
    within one channel generation (generations advance when in-flight
    messages are destroyed), delivered sequence numbers are exactly
    contiguous and arrival times non-decreasing.
:class:`RibCoherenceSanitizer`
    A speaker's Loc-RIB entry is always the decision-process winner over
    its Adj-RIB-In, the FIB mirrors the Loc-RIB, and rate-limited
    updates are only emitted when their MRAI timer permits.

Violations raise :class:`~repro.errors.SanitizerError`, which derives
from :class:`~repro.errors.ReproError` but *not* from
``SimulationError`` — a tripped sanitizer is a simulator bug, so sweeps
must not absorb it as an ordinary trial failure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SanitizerError

#: Names accepted by :func:`build_suite`, in canonical order.
SANITIZER_NAMES = ("causality", "fifo", "rib")


class InvariantHooks:
    """The invariant-hook API: every method is a no-op by default.

    Layers call these at their instrumentation points; subclasses
    override the ones they care about.  ``describe()`` feeds diagnostic
    snapshots, so implementations should keep cheap counters.
    """

    # -- engine --------------------------------------------------------

    def on_schedule(
        self, now: float, time: float, name: Optional[str], housekeeping: bool
    ) -> None:
        """An event is being inserted into the scheduler heap."""

    def on_event_fired(self, now: float, time: float, name: Optional[str]) -> None:
        """A (non-cancelled) event was popped and is about to run."""

    # -- net -----------------------------------------------------------

    def on_channel_send(
        self, src: int, dst: int, generation: int, sequence: int, time: float
    ) -> None:
        """A message was accepted by channel ``src -> dst``."""

    def on_channel_deliver(
        self, src: int, dst: int, generation: int, sequence: int, time: float
    ) -> None:
        """A message is arriving at ``dst`` from ``src``."""

    def on_channel_flush(self, src: int, dst: int, generation: int) -> None:
        """The channel destroyed its in-flight messages (reset/link down)."""

    # -- bgp -----------------------------------------------------------

    def on_decision(self, speaker: Any, prefix: str) -> None:
        """A speaker finished running its decision process for ``prefix``."""

    def on_announcement(self, speaker: Any, peer: int, prefix: str, path: Any) -> None:
        """A speaker is about to send an announcement to ``peer``."""

    def on_withdrawal(self, speaker: Any, peer: int, prefix: str) -> None:
        """A speaker is about to send a withdrawal to ``peer``."""

    # -- reporting -----------------------------------------------------

    def describe(self) -> List[str]:
        """Human-readable state lines for diagnostic snapshots."""
        return []


class CausalitySanitizer(InvariantHooks):
    """No time travel: scheduling into the past or firing out of order."""

    def __init__(self) -> None:
        self.schedules_checked = 0
        self.events_checked = 0
        self._last_fired: Optional[float] = None

    def on_schedule(
        self, now: float, time: float, name: Optional[str], housekeeping: bool
    ) -> None:
        self.schedules_checked += 1
        if time < now:
            raise SanitizerError(
                f"causality: event {name or '<anonymous>'!r} scheduled at "
                f"t={time} while the clock is at t={now}"
            )

    def on_event_fired(self, now: float, time: float, name: Optional[str]) -> None:
        self.events_checked += 1
        if self._last_fired is not None and time < self._last_fired:
            raise SanitizerError(
                f"causality: event {name or '<anonymous>'!r} fired at "
                f"t={time}, after an event at t={self._last_fired}"
            )
        self._last_fired = time

    def describe(self) -> List[str]:
        return [
            f"causality: {self.schedules_checked} schedules, "
            f"{self.events_checked} firings checked"
        ]


class FifoSanitizer(InvariantHooks):
    """Reliable in-order delivery per channel generation.

    A channel generation ends whenever in-flight messages are destroyed
    (session reset, link failure); within a generation the delivered
    sequence numbers must form the exact contiguous prefix of the sent
    ones, and arrival times must be non-decreasing.
    """

    def __init__(self) -> None:
        self.deliveries_checked = 0
        # (src, dst) -> (generation, last delivered seq, last arrival time)
        self._state: Dict[Tuple[int, int], Tuple[int, int, float]] = {}

    def on_channel_deliver(
        self, src: int, dst: int, generation: int, sequence: int, time: float
    ) -> None:
        self.deliveries_checked += 1
        key = (src, dst)
        gen, last_seq, last_time = self._state.get(key, (generation, 0, time))
        if generation < gen:
            raise SanitizerError(
                f"fifo: channel {src}->{dst} delivered a message from dead "
                f"generation {generation} (current {gen})"
            )
        if generation > gen:
            gen, last_seq = generation, 0
        if sequence != last_seq + 1:
            raise SanitizerError(
                f"fifo: channel {src}->{dst} delivered seq {sequence} after "
                f"seq {last_seq} (generation {gen}); reliable FIFO requires "
                f"{last_seq + 1}"
            )
        if time < last_time:
            raise SanitizerError(
                f"fifo: channel {src}->{dst} delivery at t={time} precedes "
                f"the previous delivery at t={last_time}"
            )
        self._state[key] = (gen, sequence, time)

    def on_channel_flush(self, src: int, dst: int, generation: int) -> None:
        # The flushed generation is over; whatever was undelivered stays
        # undelivered.  Remember the bump so stale deliveries are caught.
        key = (src, dst)
        state = self._state.get(key)
        if state is not None and generation >= state[0]:
            self._state[key] = (generation + 1, 0, state[2])

    def describe(self) -> List[str]:
        return [
            f"fifo: {self.deliveries_checked} deliveries over "
            f"{len(self._state)} channels checked"
        ]


class RibCoherenceSanitizer(InvariantHooks):
    """Loc-RIB/FIB coherence and MRAI discipline for every speaker."""

    def __init__(self) -> None:
        self.decisions_checked = 0
        self.updates_checked = 0
        self.rankings_checked = 0

    def on_decision(self, speaker: Any, prefix: str) -> None:
        self.decisions_checked += 1
        # Ground truth is the naive full scan; it both validates the
        # Loc-RIB and proves the incremental ranking picks the same
        # winner the scan would.
        expected = speaker._select_best_naive(prefix)
        self.rankings_checked += 1
        cached = speaker._select_best(prefix)
        if cached != expected:
            raise SanitizerError(
                f"rib: node {speaker.node_id} ranked selection for {prefix!r} "
                f"is {cached!r} but the naive scan selects {expected!r}"
            )
        actual = speaker.loc_rib.get(prefix)
        if expected != actual:
            raise SanitizerError(
                f"rib: node {speaker.node_id} loc-rib for {prefix!r} holds "
                f"{actual!r} but the decision process selects {expected!r}"
            )
        fib_hop = speaker.fib.get(prefix)
        if expected is None:
            if fib_hop is not None:
                raise SanitizerError(
                    f"rib: node {speaker.node_id} forwards {prefix!r} via "
                    f"{fib_hop} with no route selected"
                )
        else:
            want = speaker.node_id if expected.is_local else expected.next_hop
            if fib_hop != want:
                raise SanitizerError(
                    f"rib: node {speaker.node_id} FIB hop {fib_hop} does not "
                    f"match best-route hop {want} for {prefix!r}"
                )

    def on_announcement(self, speaker: Any, peer: int, prefix: str, path: Any) -> None:
        self.updates_checked += 1
        if path and path[0] != speaker.node_id:
            raise SanitizerError(
                f"rib: node {speaker.node_id} announcing a path headed by "
                f"{path[0]} to peer {peer}"
            )
        if not speaker.mrai.can_send_now(peer, prefix):
            raise SanitizerError(
                f"rib: node {speaker.node_id} announced {prefix!r} to "
                f"{peer} while its MRAI timer was running"
            )

    def on_withdrawal(self, speaker: Any, peer: int, prefix: str) -> None:
        self.updates_checked += 1
        from ..bgp.variants import withdrawals_rate_limited

        if withdrawals_rate_limited(speaker.config) and not speaker.mrai.can_send_now(
            peer, prefix
        ):
            raise SanitizerError(
                f"rib: node {speaker.node_id} sent a WRATE-limited withdrawal "
                f"for {prefix!r} to {peer} while its MRAI timer was running"
            )

    def describe(self) -> List[str]:
        return [
            f"rib: {self.decisions_checked} decisions, "
            f"{self.updates_checked} updates, "
            f"{self.rankings_checked} ranked-vs-naive selections checked"
        ]


class SanitizerSuite(InvariantHooks):
    """A set of sanitizers dispatched from every instrumentation point."""

    def __init__(self, sanitizers: Sequence[InvariantHooks]) -> None:
        self.sanitizers: Tuple[InvariantHooks, ...] = tuple(sanitizers)

    def on_schedule(self, now, time, name, housekeeping) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_schedule(now, time, name, housekeeping)

    def on_event_fired(self, now, time, name) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_event_fired(now, time, name)

    def on_channel_send(self, src, dst, generation, sequence, time) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_channel_send(src, dst, generation, sequence, time)

    def on_channel_deliver(self, src, dst, generation, sequence, time) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_channel_deliver(src, dst, generation, sequence, time)

    def on_channel_flush(self, src, dst, generation) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_channel_flush(src, dst, generation)

    def on_decision(self, speaker, prefix) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_decision(speaker, prefix)

    def on_announcement(self, speaker, peer, prefix, path) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_announcement(speaker, peer, prefix, path)

    def on_withdrawal(self, speaker, peer, prefix) -> None:
        for sanitizer in self.sanitizers:
            sanitizer.on_withdrawal(speaker, peer, prefix)

    def describe(self) -> List[str]:
        lines: List[str] = []
        for sanitizer in self.sanitizers:
            lines.extend(sanitizer.describe())
        return lines


def build_suite(names: Sequence[str] = SANITIZER_NAMES) -> SanitizerSuite:
    """Build a suite from sanitizer names (see :data:`SANITIZER_NAMES`)."""
    factories = {
        "causality": CausalitySanitizer,
        "fifo": FifoSanitizer,
        "rib": RibCoherenceSanitizer,
    }
    chosen: List[InvariantHooks] = []
    for name in names:
        try:
            chosen.append(factories[name]())
        except KeyError:
            raise SanitizerError(
                f"unknown sanitizer {name!r}; known: {', '.join(SANITIZER_NAMES)}"
            ) from None
    return SanitizerSuite(chosen)
