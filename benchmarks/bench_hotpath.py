"""Hot-path benchmark: wall-clock and updates/sec on the two hot scenarios.

This is the CI-gated performance benchmark backing the interning + decision
cache work.  It times complete :func:`repro.experiments.runner.run_experiment`
trials — scheduler, channels, speakers, analysis — on:

* ``tdown10``: Tdown in a 10-clique, the classic path-exploration worst
  case (the paper's Figure 4 stress shape), dominated by decision-process
  and poison-reverse churn;
* ``tflap8``: Tflap in a size-8 B-Clique with the session layer enabled
  (hold/keepalive timers, ConnectRetry), dominated by timer churn and the
  scheduler's cancel/re-arm path.

Each scenario runs ``--repeat`` times (default 3) and reports the *median*
wall-clock, so one noisy sample cannot flip the CI gate.  Output is a
machine-readable JSON document (``--output``), compared against the
committed baseline by ``compare_baselines.py``:

    PYTHONPATH=src python benchmarks/bench_hotpath.py --output BENCH_hotpath.json
    python benchmarks/compare_baselines.py \
        benchmarks/baselines/BENCH_hotpath.json BENCH_hotpath.json

To refresh the committed baseline after an intentional perf change, run the
first command and copy the output over ``benchmarks/baselines/``
(see README "Performance").
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from functools import partial  # noqa: E402

from repro.bgp import BgpConfig  # noqa: E402
from repro.experiments import (  # noqa: E402
    ResiliencePolicy,
    RunSettings,
    TrialTask,
    run_trial_resilient,
)
from repro.experiments.runner import run_experiment  # noqa: E402
from repro.experiments.scenarios import tdown_clique, tflap_bclique  # noqa: E402

SCHEMA_VERSION = 1


def _constant_scenario(x, seed, scenario=None):
    return scenario


def _constant_config(x, config=None):
    return config


def _tdown10():
    """Tdown in a 10-clique under standard BGP defaults."""
    return tdown_clique(10), BgpConfig()


def _tflap8():
    """Tflap churn in an 8-B-Clique with the session layer on.

    Short hold/keepalive/ConnectRetry timers relative to the 15 s flap
    period, so every flap exercises session teardown, reconnect backoff,
    and the MRAI cancel/re-arm churn the compaction path targets.
    """
    config = replace(
        BgpConfig(),
        hold_time=9.0,
        keepalive_interval=3.0,
        connect_retry=0.5,
        connect_retry_cap=4.0,
    )
    return tflap_bclique(8, period=15.0, count=3), config


SCENARIOS: Dict[str, Callable[[], Tuple[object, BgpConfig]]] = {
    "tdown10": _tdown10,
    "tflap8": _tflap8,
}


def run_scenario(
    name: str, repeat: int, seed: int = 0, raw: bool = False
) -> Dict[str, object]:
    """Median-of-``repeat`` timing for one named scenario.

    By default trials run through the resilient in-process path
    (:func:`repro.experiments.run_trial_resilient` under a default
    :class:`~repro.experiments.ResiliencePolicy`) — the same code every
    resilient sweep takes per trial, so this benchmark gates its
    overhead; ``raw=True`` times a bare
    :func:`~repro.experiments.runner.run_experiment` instead.  CI runs
    both and asserts the resilient path costs < 5 %.
    """
    build = SCENARIOS[name]
    policy = ResiliencePolicy()
    samples = []
    updates = 0
    scenario_name = ""
    for _ in range(repeat):
        scenario, config = build()
        scenario_name = scenario.name
        if raw:
            start = time.perf_counter()
            run = run_experiment(scenario, config, RunSettings(), seed=seed)
            samples.append(time.perf_counter() - start)
        else:
            task = TrialTask(
                index=0,
                x=0.0,
                seed=seed,
                make_scenario=partial(_constant_scenario, scenario=scenario),
                make_config=partial(_constant_config, config=config),
                settings=RunSettings(),
            )
            start = time.perf_counter()
            run = run_trial_resilient(task, policy)
            samples.append(time.perf_counter() - start)
        updates = run.result.convergence.update_count
    wall = statistics.median(samples)
    return {
        "scenario": scenario_name,
        "wall_clock_s": round(wall, 6),
        "samples_s": [round(s, 6) for s in samples],
        "updates": updates,
        "updates_per_s": round(updates / wall, 1),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the hot-path scenarios and emit BENCH_hotpath.json."
    )
    parser.add_argument(
        "scenarios", nargs="*", choices=[[], *sorted(SCENARIOS)],
        help="scenario names to run (default: all)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="timed trials per scenario; the median is reported (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write the JSON document here (default: stdout only)",
    )
    parser.add_argument(
        "--raw", action="store_true",
        help=(
            "time bare run_experiment calls instead of the resilient "
            "per-trial path (the default); diffing the two documents with "
            "compare_baselines.py measures resilience overhead"
        ),
    )
    args = parser.parse_args(argv)
    chosen = args.scenarios or sorted(SCENARIOS)

    results: Dict[str, Dict[str, object]] = {}
    for name in chosen:
        result = run_scenario(
            name, repeat=args.repeat, seed=args.seed, raw=args.raw
        )
        results[name] = result
        print(
            f"[{name}] {result['scenario']}: "
            f"median {result['wall_clock_s'] * 1e3:.1f} ms, "
            f"{result['updates']} updates, "
            f"{result['updates_per_s']:.0f} updates/s "
            f"(repeat={args.repeat})"
        )

    document = {
        "schema": SCHEMA_VERSION,
        "benchmark": "hotpath",
        "repeat": args.repeat,
        "seed": args.seed,
        "mode": "raw" if args.raw else "resilient",
        "python": platform.python_version(),
        "results": results,
    }
    payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.output is not None:
        args.output.write_text(payload, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(payload, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
