"""Unit tests for repro.telemetry.profiler (harness-side wall clock)."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import PhaseProfiler, Stopwatch, time_callable


class TestPhaseProfiler:
    def test_phases_accumulate_in_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        with profiler.phase("a"):
            pass
        timings = profiler.timings()
        assert [t.name for t in timings] == ["a", "b"]
        assert all(t.seconds >= 0 for t in timings)
        assert profiler.seconds("a") >= 0
        assert profiler.total_seconds == pytest.approx(
            sum(t.seconds for t in timings)
        )

    def test_nested_phases_allowed(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        assert {t.name for t in profiler.timings()} == {"outer", "inner"}

    def test_unknown_phase_rejected(self):
        with pytest.raises(TelemetryError, match="no phase named"):
            PhaseProfiler().seconds("missing")

    def test_summary_while_active_rejected(self):
        profiler = PhaseProfiler()
        with pytest.raises(TelemetryError, match="active"):
            with profiler.phase("open"):
                profiler.timings()

    def test_render(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            pass
        text = profiler.render()
        assert "work" in text and "total" in text and "%" in text
        assert "(no phases recorded)" in PhaseProfiler().render()


class TestStopwatchAndTimeCallable:
    def test_stopwatch_elapsed_grows(self):
        watch = Stopwatch.start()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0 <= first <= second

    def test_time_callable_returns_best_and_result(self):
        calls = []
        seconds, result = time_callable(lambda: calls.append(1) or 42, repeats=3)
        assert result == 42
        assert len(calls) == 3
        assert seconds >= 0

    def test_time_callable_rejects_zero_repeats(self):
        with pytest.raises(TelemetryError, match="repeats"):
            time_callable(lambda: None, repeats=0)
