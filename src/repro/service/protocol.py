"""Wire protocol: newline-delimited JSON over a Unix-domain socket.

One request per connection.  The client sends a single JSON object plus
``\\n``; the daemon replies with one JSON object per line.  For most ops
the reply is a single line; ``watch`` keeps the connection open and
streams event lines until a terminal ``{"event": "end", ...}``.

Requests:

.. code-block:: text

    {"op": "ping"}
    {"op": "submit", "spec": {"kind": "sweep", "params": {...}}}
    {"op": "jobs"}
    {"op": "watch", "job": "job-3"}
    {"op": "cancel", "job": "job-3"}
    {"op": "shutdown"}

Replies carry ``{"ok": true, ...}`` on success or
``{"ok": false, "error": "..."}`` on refusal.  Protocol errors never
kill the daemon — a malformed line gets an error reply and the
connection closes.

This module is dependency-light on purpose: both the daemon (asyncio)
and the client (blocking sockets) import it, and nothing here touches
the event loop.
"""

from __future__ import annotations

import json
from typing import Dict

from ..errors import ServiceError

#: Operations the daemon accepts.
OPS = ("ping", "submit", "jobs", "watch", "cancel", "shutdown")

#: Maximum request line length — a submit spec is small; anything larger
#: is a confused or hostile client, refused before parsing.
MAX_LINE = 1 << 20


def encode(message: Dict) -> bytes:
    """One protocol line: compact JSON plus the newline terminator."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes) -> Dict:
    """Parse one protocol line, raising :class:`ServiceError` on garbage."""
    if len(line) > MAX_LINE:
        raise ServiceError(f"protocol line too long ({len(line)} bytes)")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ServiceError(
            f"protocol message must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def parse_request(line: bytes) -> Dict:
    """Decode and structurally validate one request line."""
    request = decode(line)
    op = request.get("op")
    if op not in OPS:
        raise ServiceError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    if op in ("watch", "cancel") and not isinstance(request.get("job"), str):
        raise ServiceError(f"op {op!r} needs a 'job' string")
    if op == "submit" and not isinstance(request.get("spec"), dict):
        raise ServiceError("op 'submit' needs a 'spec' object")
    return request


def ok(**fields) -> Dict:
    reply = {"ok": True}
    reply.update(fields)
    return reply


def error(message: str) -> Dict:
    return {"ok": False, "error": message}
