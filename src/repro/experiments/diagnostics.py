"""Post-mortem snapshots for simulations that fail to converge.

A run that exhausts its event budget or horizon used to die with a bare
exception, discarding everything the scheduler knew about *why*.  A churn
sweep cannot afford that: one pathological (scenario, seed) pair must not
take down hours of sibling trials, and the surviving report must say what
the dead trial was doing when it was killed.

:func:`capture_snapshot` freezes the interesting state —

* the clock, event counts, and the scheduler's live pending-event census
  grouped by name family (``mrai``, ``keepalive``, ``node-3``, …),
* per-node CPU state: queue depth, busy flag, liveness,
* the tail of the message trace (who was shouting at whom when the
  budget ran out),
* the state of any installed runtime sanitizers (how many invariants
  each had checked when the run died — see
  :mod:`repro.analysis.sanitizers`).

The result rides on :class:`~repro.errors.BudgetExceededError` so harnesses
(:mod:`repro.experiments.sweep`) can record it per trial and carry on.

Snapshots are deliberately *flat data* — frozen dataclasses of numbers,
strings, and tuples, never live simulator objects — so they pickle cleanly.
That is what lets a parallel sweep capture a post-mortem inside a worker
process and ship it back attached to the trial's failure record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import Scheduler
from ..net import Network

DEFAULT_TRACE_TAIL = 20
"""How many trailing trace records a snapshot keeps by default."""


@dataclass(frozen=True)
class NodeState:
    """One node's processing state at capture time."""

    node_id: int
    alive: bool
    cpu_busy: bool
    cpu_queue: int
    messages_received: int


@dataclass(frozen=True)
class DiagnosticSnapshot:
    """What the simulation looked like at the moment it was declared dead."""

    time: float
    events_processed: int
    pending_events: int
    substantive_pending: int
    pending_by_name: Dict[str, int] = field(default_factory=dict)
    nodes: Tuple[NodeState, ...] = ()
    trace_tail: Tuple[str, ...] = ()
    sanitizer_state: Tuple[str, ...] = ()

    def busiest_nodes(self, top: int = 3) -> List[NodeState]:
        """Nodes with the deepest CPU queues (likely livelock participants)."""
        ranked = sorted(self.nodes, key=lambda n: (-n.cpu_queue, n.node_id))
        return ranked[:top]

    def brief(self) -> str:
        """A one-line summary for progress lines and failure listings."""
        return (
            f"died at t={self.time:.3f}s after {self.events_processed} events "
            f"({self.substantive_pending} substantive of "
            f"{self.pending_events} pending)"
        )

    def render(self) -> str:
        """A readable multi-line report for logs and error messages."""
        lines = [
            f"t={self.time:.3f}s  events={self.events_processed}  "
            f"pending={self.pending_events} "
            f"(substantive={self.substantive_pending})",
        ]
        if self.pending_by_name:
            census = ", ".join(
                f"{name}×{count}"
                for name, count in sorted(self.pending_by_name.items())
            )
            lines.append(f"pending by family: {census}")
        hot = [n for n in self.busiest_nodes() if n.cpu_queue > 0 or n.cpu_busy]
        if hot:
            lines.append(
                "busiest CPUs: "
                + ", ".join(
                    f"node {n.node_id} (queue={n.cpu_queue}"
                    + (", in service" if n.cpu_busy else "")
                    + ("" if n.alive else ", CRASHED")
                    + ")"
                    for n in hot
                )
            )
        if self.sanitizer_state:
            lines.append("sanitizer state:")
            lines.extend(f"  {state}" for state in self.sanitizer_state)
        if self.trace_tail:
            lines.append(f"last {len(self.trace_tail)} messages:")
            lines.extend(f"  {record}" for record in self.trace_tail)
        return "\n".join(lines)


def capture_snapshot(
    scheduler: Scheduler,
    network: Optional[Network] = None,
    trace_tail: int = DEFAULT_TRACE_TAIL,
) -> DiagnosticSnapshot:
    """Freeze the simulation's state for a post-mortem.

    Safe to call from any failure path: the network is optional and nothing
    here mutates simulation state.
    """
    nodes: Tuple[NodeState, ...] = ()
    tail: Tuple[str, ...] = ()
    if network is not None:
        nodes = tuple(
            NodeState(
                node_id=node_id,
                alive=node.alive,
                cpu_busy=node.processor.busy,
                cpu_queue=node.processor.queue_length,
                messages_received=node.messages_received,
            )
            for node_id, node in sorted(network.nodes.items())
        )
        records = network.trace.records()[-trace_tail:] if trace_tail > 0 else []
        tail = tuple(
            f"t={r.time:.3f} {r.src}->{r.dst} {r.message!r}" for r in records
        )
    sanitizers: Tuple[str, ...] = ()
    describe = getattr(getattr(scheduler, "invariants", None), "describe", None)
    if describe is not None:
        sanitizers = tuple(describe())
    return DiagnosticSnapshot(
        time=scheduler.now,
        events_processed=scheduler.events_processed,
        pending_events=scheduler.pending,
        substantive_pending=scheduler.substantive_pending,
        pending_by_name=scheduler.pending_by_name(),
        nodes=nodes,
        trace_tail=tail,
        sanitizer_state=sanitizers,
    )
