"""Reliable, in-order, unidirectional message channels.

BGP runs over TCP, so the control-plane abstraction the protocol code sees is
a loss-free FIFO byte stream with propagation delay.  :class:`Channel` models
one direction of such a stream: messages sent on it arrive at the far end
after the link delay, never reordered and never dropped — unless the channel
goes *down*, at which point in-flight messages are destroyed (the TCP session
is gone) and nothing further is accepted.
"""

from __future__ import annotations

from typing import Any, Callable, List

from ..engine import Event, EventPriority, Scheduler
from ..errors import NetworkError


class Channel:
    """One direction of a point-to-point link.

    Parameters
    ----------
    scheduler:
        The simulation scheduler delivering messages.
    src, dst:
        Node ids, for diagnostics and tracing.
    delay:
        Propagation delay in seconds (the paper uses 2 ms).
    deliver:
        Callback ``deliver(src, message)`` invoked at the destination when a
        message arrives.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        src: int,
        dst: int,
        delay: float,
        deliver: Callable[[int, Any], None],
    ) -> None:
        if delay <= 0:
            raise NetworkError(f"channel delay must be positive, got {delay}")
        self._scheduler = scheduler
        self.src = src
        self.dst = dst
        self.delay = delay
        self._deliver = deliver
        self._up = True
        self._in_flight_events: List[Event] = []
        self._last_arrival = 0.0
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        # FIFO bookkeeping for the sanitizer hooks: sequence numbers are
        # contiguous within a generation; a generation ends whenever
        # in-flight messages are destroyed.
        self._generation = 0
        self._generation_seq = 0

    # ------------------------------------------------------------------

    @property
    def up(self) -> bool:
        """True while the channel can carry messages."""
        return self._up

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def in_flight(self) -> int:
        """Messages currently propagating on the channel."""
        return self._messages_sent - self._messages_delivered - self._messages_dropped

    # ------------------------------------------------------------------

    def send(self, message: Any) -> None:
        """Transmit ``message``; it arrives ``delay`` seconds later, in order.

        Sending on a down channel raises :class:`NetworkError` — protocol
        code must not talk to a dead peer, and surfacing that as an error has
        caught several speaker bugs in development.
        """
        if not self._up:
            raise NetworkError(f"channel {self.src}->{self.dst} is down")
        # FIFO even under (hypothetical) variable delay: arrival times are
        # clamped monotone.
        arrival = max(self._scheduler.now + self.delay, self._last_arrival)
        self._last_arrival = arrival
        self._messages_sent += 1
        self._generation_seq += 1
        generation, sequence = self._generation, self._generation_seq
        hooks = self._scheduler.invariants
        if hooks is not None:
            hooks.on_channel_send(
                self.src, self.dst, generation, sequence, self._scheduler.now
            )
        telemetry = self._scheduler.telemetry
        if telemetry is not None:
            telemetry.on_message_sent(self.src, self.dst, message, self.in_flight)

        def arrive() -> None:
            self._messages_delivered += 1
            hooks = self._scheduler.invariants
            if hooks is not None:
                hooks.on_channel_deliver(
                    self.src, self.dst, generation, sequence, self._scheduler.now
                )
            telemetry = self._scheduler.telemetry
            if telemetry is not None:
                telemetry.on_message_delivered(self.src, self.dst, message)
            self._deliver(self.src, message)

        event = self._scheduler.call_at(
            arrival,
            arrive,
            priority=EventPriority.DELIVERY,
            name=f"deliver:{self.src}->{self.dst}",
            # Messages that declare themselves housekeeping (keepalives)
            # do not block quiescence detection.
            housekeeping=bool(getattr(message, "HOUSEKEEPING", False)),
        )
        self._in_flight_events.append(event)
        if len(self._in_flight_events) > 64:
            # Drop handles that already fired (their time has passed) or were
            # cancelled; only genuinely-pending deliveries need tracking.
            now = self._scheduler.now
            self._in_flight_events = [
                e for e in self._in_flight_events
                if not e.cancelled and e.time > now
            ]

    def drop_in_flight(self) -> int:
        """Destroy every message currently propagating (TCP session reset).

        The channel's up/down state is untouched.  Returns the number of
        messages destroyed.
        """
        for event in self._in_flight_events:
            event.cancel()  # no-op for handles that already fired
        self._in_flight_events.clear()
        destroyed = (
            self._messages_sent - self._messages_delivered - self._messages_dropped
        )
        self._messages_dropped += destroyed
        hooks = self._scheduler.invariants
        if hooks is not None:
            hooks.on_channel_flush(self.src, self.dst, self._generation)
        telemetry = self._scheduler.telemetry
        if telemetry is not None and destroyed:
            telemetry.on_in_flight_dropped(self.src, self.dst, destroyed)
        self._generation += 1
        self._generation_seq = 0
        return destroyed

    def take_down(self) -> int:
        """Kill the channel, destroying in-flight messages.

        Returns the number of messages destroyed.  Idempotent.
        """
        if not self._up:
            return 0
        self._up = False
        return self.drop_in_flight()

    def bring_up(self) -> None:
        """Restore a down channel (fresh TCP session, empty pipe)."""
        self._up = True
        self._last_arrival = self._scheduler.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._up else "down"
        return f"<Channel {self.src}->{self.dst} {state} delay={self.delay}>"
