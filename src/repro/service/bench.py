"""Continuous benchmarking: run bench scripts, gate against baselines,
record a per-commit perf trajectory.

A *bench cycle* runs each configured target's ``benchmarks/bench_*.py``
script in a subprocess (fresh interpreter — benchmark numbers must not
inherit this process's warmed-up state), gates the resulting document
with ``benchmarks/compare_baselines.py --format json``, and appends one
CRC-framed record per target to
``benchmarks/results/perf_trajectory.jsonl``:

.. code-block:: text

    {"crc": N, "record": {"ts": ..., "commit": "816f12a", "target":
        "hotpath", "ok": true, "regressions": 0,
        "wall_clock_s": {"clique8": 0.41, ...}}}

The trajectory file uses the same framing as every other durable file in
the system (:func:`~repro.experiments.journal.frame_line`), so partial
writes from a killed daemon are detected, not parsed.

The service daemon runs a cycle on a timer (``repro serve
--bench-interval``); ``repro submit --bench`` queues one on demand; and
the module works standalone for tests, which point ``bench_dir`` at a
fixture directory with a stub bench script.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import JournalError, ServiceError
from ..experiments.journal import frame_line, unframe_line


@dataclass(frozen=True)
class BenchTarget:
    """One benchmark script plus its committed baseline."""

    name: str
    script: str  # path relative to the bench directory
    baseline: str  # path relative to the bench directory
    args: tuple = ()


#: The machine-readable benchmarks with committed JSON baselines, run on
#: every ``repro serve --bench-interval`` cycle.
DEFAULT_TARGETS = (
    BenchTarget(
        name="hotpath",
        script="bench_hotpath.py",
        baseline="baselines/BENCH_hotpath.json",
    ),
    BenchTarget(
        name="multiprefix",
        script="bench_multiprefix.py",
        baseline="baselines/BENCH_multiprefix.json",
    ),
    BenchTarget(
        name="churn",
        script="bench_churn.py",
        baseline="baselines/BENCH_churn.json",
    ),
    BenchTarget(
        name="telemetry",
        script="bench_telemetry.py",
        baseline="baselines/BENCH_telemetry.json",
    ),
)

#: Heavyweight targets addressable by name (``repro submit --bench`` /
#: the nightly scaling workflow) but too slow for the default cycle.
EXTRA_TARGETS = (
    BenchTarget(
        name="scaling",
        script="bench_multiprefix.py",
        baseline="baselines/BENCH_scaling.json",
        args=("--population", "1024", "4096", "10240"),
    ),
)


def default_bench_dir() -> Path:
    """The repository's ``benchmarks/`` directory, located relative to
    this source tree (``src/repro/service/bench.py`` → repo root)."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def current_commit(repo_root: Path) -> str:
    """The repository's short HEAD hash, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


@dataclass
class TargetResult:
    """One target's outcome within a cycle."""

    name: str
    ok: bool
    regressions: int = 0
    error: str = ""
    wall_clock_s: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "regressions": self.regressions,
            "error": self.error,
            "wall_clock_s": dict(self.wall_clock_s),
        }


@dataclass
class BenchCycle:
    """One full cycle: every target's result plus provenance."""

    commit: str
    started: float
    results: List[TargetResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> Dict:
        return {
            "commit": self.commit,
            "started": self.started,
            "ok": self.ok,
            "targets": [result.to_json() for result in self.results],
        }


class TrajectoryStore:
    """Append-only, CRC-framed perf history under ``benchmarks/results/``."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, cycle: BenchCycle) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            # A torn tail (writer killed mid-line) must not garble the next
            # record: seal it with a newline so only the torn line is lost.
            if handle.tell() > 0:
                with self.path.open("rb") as peek:
                    peek.seek(-1, os.SEEK_END)
                    if peek.read(1) != b"\n":
                        handle.write("\n")
            for result in cycle.results:
                record = {
                    "ts": cycle.started,
                    "commit": cycle.commit,
                    "target": result.name,
                    "ok": result.ok,
                    "regressions": result.regressions,
                    "wall_clock_s": dict(result.wall_clock_s),
                }
                handle.write(frame_line(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> List[Dict]:
        """Every intact record, oldest first; damaged lines are skipped."""
        if not self.path.exists():
            return []
        out: List[Dict] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(unframe_line(line))
                except JournalError:
                    continue
        return out


def _run_target(
    target: BenchTarget,
    bench_dir: Path,
    repeat: int,
    publish: Callable[[str], None],
    timeout: float,
) -> TargetResult:
    script = bench_dir / target.script
    baseline = bench_dir / target.baseline
    if not script.exists():
        return TargetResult(
            name=target.name, ok=False, error=f"missing bench script {script}"
        )
    if not baseline.exists():
        return TargetResult(
            name=target.name, ok=False, error=f"missing baseline {baseline}"
        )
    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{src_dir}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(src_dir)
    )
    candidate = bench_dir / "results" / f"CANDIDATE_{target.name}.json"
    candidate.parent.mkdir(parents=True, exist_ok=True)
    command = [
        sys.executable,
        str(script),
        "--repeat",
        str(repeat),
        "--output",
        str(candidate),
        *target.args,
    ]
    publish(f"bench[{target.name}]: {' '.join(command[1:])}")
    try:
        measured = subprocess.run(
            command,
            cwd=str(bench_dir),
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except subprocess.TimeoutExpired:
        return TargetResult(
            name=target.name, ok=False, error=f"bench timed out after {timeout}s"
        )
    if measured.returncode != 0:
        tail = (measured.stderr or measured.stdout).strip().splitlines()[-3:]
        return TargetResult(
            name=target.name,
            ok=False,
            error=f"bench exited {measured.returncode}: {' / '.join(tail)}",
        )

    gate = subprocess.run(
        [
            sys.executable,
            str(bench_dir / "compare_baselines.py"),
            str(baseline),
            str(candidate),
            "--format",
            "json",
        ],
        cwd=str(bench_dir),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if gate.returncode not in (0, 1):
        tail = (gate.stderr or gate.stdout).strip().splitlines()[-3:]
        return TargetResult(
            name=target.name,
            ok=False,
            error=f"compare exited {gate.returncode}: {' / '.join(tail)}",
        )
    try:
        report = json.loads(gate.stdout)
    except json.JSONDecodeError as exc:
        return TargetResult(
            name=target.name, ok=False, error=f"bad compare JSON: {exc}"
        )
    walls = {
        scenario["name"]: scenario.get("candidate_wall_s")
        for scenario in report.get("scenarios", [])
        if scenario.get("candidate_wall_s") is not None
    }
    regressions = int(report.get("regressions", 0))
    publish(
        f"bench[{target.name}]: {len(walls)} scenario(s), "
        f"{regressions} regression(s)"
    )
    return TargetResult(
        name=target.name,
        ok=(gate.returncode == 0),
        regressions=regressions,
        wall_clock_s=walls,
    )


def run_bench_cycle(
    targets: Optional[Sequence] = None,
    repeat: int = 1,
    bench_dir=None,
    results_dir=None,
    publish: Callable[[str], None] = lambda message: None,
    timeout: float = 600.0,
) -> BenchCycle:
    """Run every target once and append the cycle to the trajectory.

    ``targets`` may be :class:`BenchTarget` objects or names from
    :data:`DEFAULT_TARGETS`; ``None`` runs all defaults.  Unknown names
    raise :class:`~repro.errors.ServiceError`.
    """
    bench_dir = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    if not bench_dir.is_dir():
        raise ServiceError(f"bench directory {bench_dir} does not exist")
    chosen: List[BenchTarget] = []
    by_name = {
        target.name: target for target in (*DEFAULT_TARGETS, *EXTRA_TARGETS)
    }
    for entry in targets if targets is not None else DEFAULT_TARGETS:
        if isinstance(entry, BenchTarget):
            chosen.append(entry)
        elif entry in by_name:
            chosen.append(by_name[entry])
        else:
            raise ServiceError(
                f"unknown bench target {entry!r}; expected one of "
                f"{', '.join(sorted(by_name))}"
            )

    cycle = BenchCycle(
        commit=current_commit(bench_dir.parent), started=time.time()
    )
    for target in chosen:
        cycle.results.append(
            _run_target(target, bench_dir, repeat, publish, timeout)
        )
    results_dir = (
        Path(results_dir) if results_dir is not None else bench_dir / "results"
    )
    TrajectoryStore(results_dir / "perf_trajectory.jsonl").append(cycle)
    return cycle
