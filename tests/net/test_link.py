"""Unit tests for repro.net.link."""

import pytest

from repro.engine import Scheduler
from repro.errors import NetworkError
from repro.net import Link


@pytest.fixture
def boxes():
    return {"u": [], "v": []}


@pytest.fixture
def link(scheduler, boxes):
    return Link(
        scheduler, 1, 2, 0.1,
        deliver_to_u=lambda src, msg: boxes["u"].append((src, msg)),
        deliver_to_v=lambda src, msg: boxes["v"].append((src, msg)),
    )


class TestBasics:
    def test_endpoints_normalized(self, scheduler, boxes):
        link = Link(
            scheduler, 9, 3, 0.1,
            deliver_to_u=lambda s, m: boxes["u"].append((s, m)),
            deliver_to_v=lambda s, m: boxes["v"].append((s, m)),
        )
        assert link.endpoints == (3, 9)

    def test_send_both_directions(self, scheduler, link, boxes):
        link.send(1, "to-v")
        link.send(2, "to-u")
        scheduler.run()
        assert boxes["v"] == [(1, "to-v")]
        assert boxes["u"] == [(2, "to-u")]

    def test_swapped_constructor_order_still_delivers_correctly(self, scheduler):
        """deliver_to_u must follow the *ids*, not the argument order."""
        log = []
        link = Link(
            scheduler, 7, 2, 0.1,
            deliver_to_u=lambda s, m: log.append(("at-7", m)),
            deliver_to_v=lambda s, m: log.append(("at-2", m)),
        )
        link.send(7, "hello-2")
        scheduler.run()
        assert log == [("at-2", "hello-2")]

    def test_other_end(self, link):
        assert link.other_end(1) == 2
        assert link.other_end(2) == 1
        with pytest.raises(NetworkError):
            link.other_end(5)

    def test_channel_from_unknown_node(self, link):
        with pytest.raises(NetworkError):
            link.channel_from(42)

    def test_self_link_rejected(self, scheduler):
        with pytest.raises(NetworkError):
            Link(scheduler, 1, 1, 0.1, lambda s, m: None, lambda s, m: None)


class TestFailure:
    def test_take_down_both_directions(self, scheduler, link, boxes):
        link.send(1, "a")
        link.send(2, "b")
        assert link.take_down() == 2
        assert not link.up
        scheduler.run()
        assert boxes == {"u": [], "v": []}

    def test_bring_up(self, scheduler, link, boxes):
        link.take_down()
        link.bring_up()
        assert link.up
        link.send(1, "x")
        scheduler.run()
        assert boxes["v"] == [(1, "x")]

    def test_messages_carried_counter(self, scheduler, link):
        link.send(1, "a")
        link.send(2, "b")
        scheduler.run()
        assert link.messages_carried == 2
