"""Distance-vector baseline (RIP-like), for the §2 comparison.

Demonstrates what path-vector routing improves on: poison reverse stops
2-node loops but not longer ones, and unreachability is discovered by
counting to infinity.
"""

from .messages import INFINITY_METRIC, DvUpdate
from .rip import DvMode, DvRoute, RipSpeaker

__all__ = ["DvMode", "DvRoute", "DvUpdate", "INFINITY_METRIC", "RipSpeaker"]
