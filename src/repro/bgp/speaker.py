"""The BGP speaker: one path-vector router.

This is the protocol engine whose transient behavior the paper studies.  It
implements, per §3:

* full-path announcements with **path-based poison reverse** on receipt
  (a path containing the receiver is discarded — treated as an implicit
  withdrawal of the sender's previous route),
* storage of "the most recent paths received from each of its neighbors"
  (Adj-RIB-In) and **path exploration**: on losing the best route, fall back
  to the best stored alternate before resorting to an explicit withdrawal,
* the per-(destination, neighbor) **MRAI timer** with jitter, applied to
  announcements only (unless WRATE),
* duplicate suppression: a route is advertised once and re-advertised only
  on change (tracked via the Adj-RIB-Out),
* the four §5 enhancements, enabled by :class:`~repro.bgp.config.BgpConfig`
  flags, with their decision logic in :mod:`repro.bgp.variants`,
* the session lifecycle (when ``BgpConfig.hold_time > 0``): hold/keepalive
  liveness, ConnectRetry re-establishment after a session loss via an OPEN
  handshake, and the RFC 1771 initial table exchange on session-up.

The speaker maintains a one-prefix-deep FIB (``prefix -> next hop``); every
FIB change is reported to an optional listener, which is how the data plane
reconstructs the forwarding graph over time.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Callable, Dict, List, Optional, Set

from ..engine import RandomStreams, Scheduler
from ..errors import ProtocolError
from ..net import Node
from .config import BgpConfig
from .damping import RouteFlapDamper
from .decision import DecisionProcess
from .messages import Announcement, Keepalive, Open, Prefix, UpdateBatch, Withdrawal
from .mrai import MraiManager
from .session import SessionManager
from .path import AsPath
from .policy import RoutingPolicy, ShortestPathPolicy
from .rib import AdjRibIn, AdjRibOut, LocRib
from .route import Route
from .variants import (
    converts_to_withdrawal,
    should_flush,
    stale_entries,
    withdrawals_rate_limited,
)

FibListener = Callable[[float, int, Prefix, Optional[int]], None]
"""``listener(time, node, prefix, next_hop)``; ``next_hop is None`` = no route,
``next_hop == node`` = local delivery."""

RouteListener = Callable[
    [float, int, Prefix, Optional[AsPath], Optional[AsPath]], None
]
"""``listener(time, node, prefix, old_path, new_path)`` fired on every best-
path change; paths are in the paper's notation (the node itself at the
head), ``None`` meaning no route.  This is the "route change trace" §6
proposes examining."""


class BgpSpeaker(Node):
    """A router speaking the (possibly enhanced) path-vector protocol.

    Parameters
    ----------
    node_id, scheduler:
        Identity and the shared simulation scheduler.
    config:
        Protocol variant and timing knobs.
    streams:
        The run's named RNG streams (jitter and processing-delay draws are
        taken from per-node streams, keeping runs reproducible).
    policy:
        Routing policy; defaults to the paper's shortest-path policy.
    fib_listener:
        Optional callback invoked on every next-hop change.
    """

    def __init__(
        self,
        node_id: int,
        scheduler: Scheduler,
        config: BgpConfig,
        streams: RandomStreams,
        policy: Optional[RoutingPolicy] = None,
        fib_listener: Optional[FibListener] = None,
        route_listener: Optional[RouteListener] = None,
    ) -> None:
        proc_rng = streams.stream(f"processing-delay:{node_id}")
        low, high = config.processing_delay

        def service_time() -> float:
            return proc_rng.uniform(low, high)

        super().__init__(node_id, scheduler, service_time)
        self.config = config
        self.policy = policy or ShortestPathPolicy()
        self.decision = DecisionProcess(self.policy)
        self.adj_rib_in = AdjRibIn(preference_key=self.policy.preference_key)
        self.loc_rib = LocRib()
        self.adj_rib_out = AdjRibOut()
        self.mrai = MraiManager(
            scheduler,
            interval=config.mrai,
            jitter=config.mrai_jitter,
            rng=streams.stream(f"mrai-jitter:{node_id}"),
            on_expiry=self._on_mrai_expiry,
            mode=config.mrai_mode,
        )
        self.damper: Optional[RouteFlapDamper] = None
        if config.damping is not None:
            self.damper = RouteFlapDamper(
                scheduler, config.damping, on_reuse=self._damping_reuse
            )
        self.sessions: Optional[SessionManager] = None
        if config.sessions_enabled:
            self.sessions = SessionManager(
                scheduler,
                hold_time=config.hold_time,
                keepalive_interval=config.effective_keepalive,
                send_keepalive=self._send_keepalive_to,
                on_session_down=self._purge_neighbor,
                connect=self._attempt_connect,
                on_session_up=self._session_established,
                retry_base=config.connect_retry,
                retry_cap=config.connect_retry_cap,
                rng=streams.stream(f"connect-retry:{node_id}"),
            )
        self._origins: Set[Prefix] = set()
        self.fib: Dict[Prefix, Optional[int]] = {}
        self._fib_listener = fib_listener
        self._route_listener = route_listener
        # Batched-UPDATE send queue (config.batch_updates): per peer, the
        # prefixes queued this instant, ``None`` meaning withdraw.  A
        # same-instant flush event drains each peer's queue into one
        # UpdateBatch; Adj-RIB-Out and counters are maintained at queue
        # time, so all suppression logic sees the post-queue state.
        self._pending_updates: Dict[int, Dict[Prefix, Optional[AsPath]]] = {}
        self._flush_scheduled: Set[int] = set()
        self.batches_sent = 0
        # Counters (diagnostics; the authoritative metric source is the
        # network-level MessageTrace).
        self.announcements_sent = 0
        self.withdrawals_sent = 0
        self.routes_discarded_by_poison_reverse = 0
        self.routes_removed_by_assertion = 0
        self.flush_withdrawals_sent = 0
        self.ssld_conversions = 0
        self.session_resets_seen = 0
        self.opens_sent = 0

    # ------------------------------------------------------------------
    # Public protocol API
    # ------------------------------------------------------------------

    @property
    def origins(self) -> Set[Prefix]:
        """Prefixes this speaker currently originates (copy)."""
        return set(self._origins)

    def originate(self, prefix: Prefix) -> None:
        """Start originating ``prefix`` (the destination AS's role)."""
        if prefix in self._origins:
            return
        self._origins.add(prefix)
        self._run_decision(prefix)

    def withdraw_origin(self, prefix: Prefix) -> None:
        """Stop originating ``prefix`` — the Tdown trigger.

        The destination host behind this AS is gone; the speaker re-runs its
        decision (finding nothing, since every peer-learned path for its own
        prefix is poison-reversed away) and withdraws from all peers.
        """
        if prefix not in self._origins:
            raise ProtocolError(f"node {self.node_id} does not originate {prefix!r}")
        self._origins.discard(prefix)
        self._run_decision(prefix)

    def start(self) -> None:
        """Bring up sessions and advertise pre-configured originations.

        The whole origination burst runs under per-peer MRAI flush windows
        (no-ops in per-prefix mode): the initial table exchange goes out in
        one round with the shared timer armed once, as deployed peer-based
        implementations do, instead of one prefix per MRAI interval.
        """
        if self.sessions is not None:
            for peer in self.neighbors:
                self.sessions.establish(peer)
        with ExitStack() as stack:
            for peer in self.neighbors:
                stack.enter_context(self.mrai.flush_window(peer))
            for prefix in sorted(self._origins):
                self._run_decision(prefix)
                for peer in self.neighbors:
                    self._sync_peer(peer, prefix)

    def best_route(self, prefix: Prefix) -> Optional[Route]:
        """The current Loc-RIB entry for ``prefix``."""
        return self.loc_rib.get(prefix)

    def next_hop(self, prefix: Prefix) -> Optional[int]:
        """Current forwarding next hop (own id = deliver locally)."""
        return self.fib.get(prefix)

    def full_path(self, prefix: Prefix) -> Optional[AsPath]:
        """The node's path in the paper's notation: itself at the head."""
        best = self.loc_rib.get(prefix)
        if best is None:
            return None
        return best.path.prepend(self.node_id)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message) -> None:
        """Process one message after its CPU service delay.

        With sessions enabled, liveness/staleness is judged by *session*
        state (a silent link failure is invisible until the hold timer
        fires); without them, by physical link state — the paper's
        interface-detection model.
        """
        if isinstance(message, Open):
            # Handshake messages are meaningful precisely when the session
            # is NOT established, so they bypass the staleness gate below.
            self._handle_open(src, message)
            return
        if self.sessions is not None:
            if not self.sessions.established(src):
                return  # stale delivery from a torn-down session
            self.sessions.message_received(src)
            if isinstance(message, Keepalive):
                return
        elif not self.link_is_up(src):
            return  # stale delivery from an adjacency that has since died
        if isinstance(message, Announcement):
            self._handle_announcement(src, message)
        elif isinstance(message, Withdrawal):
            self._handle_withdrawal(src, message)
        elif isinstance(message, UpdateBatch):
            self._handle_batch(src, message)
        else:
            raise ProtocolError(f"unexpected message {message!r} from {src}")

    def _handle_batch(self, src: int, batch: UpdateBatch) -> None:
        """Unpack a batched UPDATE into the per-prefix handlers.

        Withdrawn routes first, then NLRI — RFC 4271's processing order —
        each through the exact code path an unbatched message takes, so
        batching cannot change routing outcomes, only message packing.
        """
        dirtied: List[Prefix] = []
        for prefix in batch.withdrawn:
            self._apply_withdrawal(src, Withdrawal(prefix=prefix))
            dirtied.append(prefix)
        for prefix, path in batch.nlri:
            self._apply_announcement(src, Announcement(prefix=prefix, path=path))
            dirtied.append(prefix)
        self._run_decisions(dirtied)

    def _handle_announcement(self, src: int, message: Announcement) -> None:
        self._apply_announcement(src, message)
        self._run_decision(message.prefix)

    def _apply_announcement(self, src: int, message: Announcement) -> None:
        """Adj-RIB-In effects of one announcement (no decision run)."""
        if message.sender != src:
            raise ProtocolError(
                f"announcement head {message.sender} does not match sender {src}"
            )
        prefix, path = message.prefix, message.path
        if self.config.assertion:
            self._apply_assertion(prefix, src, path)
        if self.damper is not None:
            previous = self.adj_rib_in.get(src, prefix)
            if self.node_id in path:
                if previous is not None:
                    self.damper.record_withdrawal(src, prefix)
            elif previous is not None and previous.path != path:
                self.damper.record_change(src, prefix)

        if self.node_id in path:
            # Path-based poison reverse: the route is unusable for us, and it
            # *replaces* src's previous announcement (implicit withdrawal).
            self.routes_discarded_by_poison_reverse += 1
            telemetry = self.scheduler.telemetry
            if telemetry is not None:
                telemetry.on_variant_extra(self.node_id, "poison_reverse")
            self.adj_rib_in.remove(src, prefix)
        else:
            provisional = Route.of(prefix, path, src)
            local_pref = self.policy.local_pref(src, provisional)
            if local_pref == provisional.local_pref:
                route = provisional  # default pref: already the shared instance
            else:
                route = Route.of(prefix, path, src, local_pref)
            if self.policy.accept_import(src, route):
                self.adj_rib_in.put(src, route)
            else:
                self.adj_rib_in.remove(src, prefix)

    def _handle_withdrawal(self, src: int, message: Withdrawal) -> None:
        self._apply_withdrawal(src, message)
        self._run_decision(message.prefix)

    def _apply_withdrawal(self, src: int, message: Withdrawal) -> None:
        """Adj-RIB-In effects of one withdrawal (no decision run)."""
        prefix = message.prefix
        if self.config.assertion:
            self._apply_assertion(prefix, src, None)
        if self.damper is not None and self.adj_rib_in.get(src, prefix) is not None:
            self.damper.record_withdrawal(src, prefix)
        self.adj_rib_in.remove(src, prefix)

    def _apply_assertion(
        self, prefix: Prefix, src: int, new_path: Optional[AsPath]
    ) -> None:
        """Invalidate stored routes the update from ``src`` proves stale."""
        telemetry = self.scheduler.telemetry
        for neighbor in stale_entries(self.adj_rib_in, prefix, src, new_path):
            self.adj_rib_in.remove(neighbor, prefix)
            self.routes_removed_by_assertion += 1
            if telemetry is not None:
                telemetry.on_variant_extra(self.node_id, "assertion_removal")

    # ------------------------------------------------------------------
    # Adjacency changes
    # ------------------------------------------------------------------

    def on_link_down(self, neighbor: int) -> None:
        """Interface reported the adjacency down: purge immediately."""
        if self.sessions is not None:
            self.sessions.teardown(neighbor)
        self._purge_neighbor(neighbor)

    def _purge_neighbor(self, neighbor: int) -> None:
        """Forget everything learned from / sent to a dead peer, re-decide.

        Shared by interface-level detection (:meth:`on_link_down`) and
        hold-timer expiry (session mode).
        """
        affected = self.adj_rib_in.drop_neighbor(neighbor)
        self.adj_rib_out.drop_neighbor(neighbor)
        self.mrai.cancel_peer(neighbor)
        self._pending_updates.pop(neighbor, None)
        if self.damper is not None:
            self.damper.cancel_peer(neighbor)
        self._run_decisions(affected)

    def on_link_up(self, neighbor: int) -> None:
        """Adjacency (re-)established: bring the session up, advertise."""
        if self.sessions is not None:
            self.sessions.establish(neighbor)
        with self.mrai.flush_window(neighbor):
            for prefix in self.loc_rib.prefixes():
                self._sync_peer(neighbor, prefix)

    def on_session_reset(self, neighbor: int) -> None:
        """The TCP session to ``neighbor`` died; the physical link is fine.

        Both in-flight directions were destroyed with the connection, so
        everything learned from (and believed sent to) the peer is stale:
        purge, then rebuild.  With the session layer on, ConnectRetry drives
        an OPEN handshake (``immediate=True`` — the peer is expected back
        momentarily, no accumulated backoff).  Without it, TCP
        re-establishment is modeled as instantaneous: re-exchange at once.
        """
        self.session_resets_seen += 1
        if self.sessions is not None:
            self.sessions.teardown(neighbor)
            self._purge_neighbor(neighbor)
            self.sessions.start_reconnect(neighbor, immediate=True)
            return
        self._purge_neighbor(neighbor)
        with self.mrai.flush_window(neighbor):
            for prefix in self.loc_rib.prefixes():
                self._sync_peer(neighbor, prefix)

    def _send_keepalive_to(self, peer: int) -> None:
        """Session-layer callback; guards the physical link state."""
        if self.link_is_up(peer):
            self.send(peer, Keepalive())

    # ------------------------------------------------------------------
    # Session re-establishment (ConnectRetry + OPEN handshake)
    # ------------------------------------------------------------------

    def _attempt_connect(self, peer: int) -> None:
        """ConnectRetry fired: send an OPEN if the link can carry it.

        With the link physically down the retry goes dormant — the
        interface-up notification re-establishes directly
        (see :meth:`on_link_up`).
        """
        assert self.sessions is not None
        if not self.alive or self.sessions.established(peer):
            return
        if not self.link_is_up(peer):
            return
        self.opens_sent += 1
        self.send(peer, Open())
        # No reply yet: keep probing with the next backoff step.
        self.sessions.start_reconnect(peer)

    def _handle_open(self, src: int, message: Open) -> None:
        """(Re-)build the session with ``src`` and trigger the re-exchange.

        The echo reply is sent *before* establishing so the peer processes
        it — and establishes its side — ahead of the full-table updates that
        establishment emits (the channel is FIFO).  Crossing OPENs terminate
        because an echo is never answered.
        """
        if self.sessions is None or not self.link_is_up(src):
            return
        if not message.echo:
            if self.sessions.established(src):
                # The peer restarted its side of the session: everything we
                # hold from — and believe we sent to — it is stale.
                self.sessions.teardown(src)
                self._purge_neighbor(src)
            self.send(src, Open(echo=True))
        self.sessions.establish(src)
        self.sessions.message_received(src)

    def _session_established(self, peer: int) -> None:
        """Session-up callback: the RFC 1771 initial table exchange.

        The purge at session loss dropped the peer's Adj-RIB-Out record,
        so every Loc-RIB prefix re-advertises from scratch.
        """
        with self.mrai.flush_window(peer):
            for prefix in self.loc_rib.prefixes():
                self._sync_peer(peer, prefix)

    # ------------------------------------------------------------------
    # Whole-router fault injection
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all protocol state: RIBs, timers, sessions, CPU queue.

        Route and FIB listeners see the crashed router's routes disappear
        (its data plane forwards nothing), keeping the forwarding-graph
        reconstruction truthful through the outage.
        """
        for prefix in sorted(self.loc_rib.prefixes()):
            if self._route_listener is not None:
                self._route_listener(
                    self.scheduler.now,
                    self.node_id,
                    prefix,
                    self._node_path(self.loc_rib.get(prefix)),
                    None,
                )
            self._update_fib(prefix, None)
        if self.sessions is not None:
            self.sessions.shutdown()
        self.mrai.cancel_all()
        self._pending_updates.clear()
        self._flush_scheduled.clear()
        if self.damper is not None:
            for neighbor in sorted(self.network.topology.neighbors(self.node_id)):
                self.damper.cancel_peer(neighbor)
        self.adj_rib_in = AdjRibIn(preference_key=self.policy.preference_key)
        self.loc_rib = LocRib()
        self.adj_rib_out = AdjRibOut()
        super().crash()

    def restart(self) -> None:
        """Cold boot: configured originations intact, everything else gone.

        :meth:`Network.restart_node` restores the links *after* this runs,
        so dissemination (and session re-establishment) begins as the
        ``on_link_up`` notifications arrive one adjacency at a time.
        """
        super().restart()
        for prefix in sorted(self._origins):
            self._run_decision(prefix)

    # ------------------------------------------------------------------
    # Decision + dissemination
    # ------------------------------------------------------------------

    def _usable_predicate(self, prefix: Prefix):
        if self.damper is None:
            return None
        damper = self.damper

        def usable(route: Route) -> bool:
            assert route.next_hop is not None
            return not damper.is_suppressed(route.next_hop, prefix)

        return usable

    def _select_best(self, prefix: Prefix) -> Optional[Route]:
        """The decision-process optimum, honoring damping suppression."""
        return self.decision.select(
            prefix,
            self.adj_rib_in,
            originated=prefix in self._origins,
            usable=self._usable_predicate(prefix),
        )

    def _select_best_naive(self, prefix: Prefix) -> Optional[Route]:
        """Ground-truth selection via the full candidate scan.

        Bypasses the Adj-RIB-In's incremental ranking so sanitizers and
        invariant checks validate the cached winner against an independent
        derivation.
        """
        return self.decision.select_naive(
            prefix,
            self.adj_rib_in,
            originated=prefix in self._origins,
            usable=self._usable_predicate(prefix),
        )

    def _damping_reuse(self, peer: int, prefix: Prefix) -> None:
        """A suppressed (peer, prefix) decayed below reuse: reconsider it."""
        self._run_decision(prefix)

    def _run_decision(self, prefix: Prefix) -> None:
        """Re-select the best route; on change, update FIB and sync peers."""
        if self._decide(prefix):
            for peer in self.neighbors:
                self._sync_peer(peer, prefix)

    def _run_decisions(self, dirtied: List[Prefix]) -> None:
        """Batched decision pass: decide every dirtied prefix, then
        disseminate in one sweep.

        Phase 1 re-selects and updates the FIB per prefix; both read only
        prefix-local state, so applying every decision before any send is
        outcome-identical to interleaving.  Phase 2 syncs peers in the
        exact prefix-outer, peer-inner order the per-prefix path uses, so
        same-instant message ordering — and hence scheduler sequence and
        digests — is unchanged; only the per-(peer, prefix) link/session
        eligibility checks are hoisted out of the inner loop (sends cannot
        alter link or session state within the pass).
        """
        changed = [prefix for prefix in dirtied if self._decide(prefix)]
        if not changed:
            return
        peers = [
            peer
            for peer in self.neighbors
            if self.link_is_up(peer)
            and (self.sessions is None or self.sessions.established(peer))
        ]
        if not peers:
            return
        for prefix in changed:
            for peer in peers:
                self._sync_eligible_peer(peer, prefix)

    def _decide(self, prefix: Prefix) -> bool:
        """Re-select ``prefix``'s best route and update the FIB.

        Returns True when the best route changed (peers need syncing).
        """
        old_best = self.loc_rib.get(prefix)
        new_best = self._select_best(prefix)
        if new_best == old_best:
            self._notify_decision(prefix)
            return False
        if new_best is None:
            self.loc_rib.remove(prefix)
        else:
            self.loc_rib.set(new_best)
        if self._route_listener is not None:
            self._route_listener(
                self.scheduler.now,
                self.node_id,
                prefix,
                self._node_path(old_best),
                self._node_path(new_best),
            )
        self._update_fib(prefix, new_best)
        self._notify_decision(prefix)
        return True

    def _notify_decision(self, prefix: Prefix) -> None:
        """Report a completed decision run to sanitizers and telemetry."""
        hooks = self.scheduler.invariants
        if hooks is not None:
            hooks.on_decision(self, prefix)
        telemetry = self.scheduler.telemetry
        if telemetry is not None:
            telemetry.on_decision(self.node_id, prefix)

    def _node_path(self, route: Optional[Route]) -> Optional[AsPath]:
        """A route's path in the paper's notation (self at the head)."""
        if route is None:
            return None
        return route.path.prepend(self.node_id)

    def _update_fib(self, prefix: Prefix, best: Optional[Route]) -> None:
        if best is None:
            next_hop: Optional[int] = None
        elif best.is_local:
            next_hop = self.node_id
        else:
            next_hop = best.next_hop
        if self.fib.get(prefix, None) == next_hop and prefix in self.fib:
            return
        had_entry = prefix in self.fib
        if not had_entry and next_hop is None:
            return  # never had a route and still none: nothing changed
        self.fib[prefix] = next_hop
        telemetry = self.scheduler.telemetry
        if telemetry is not None:
            telemetry.on_fib_change(
                self.scheduler.now, self.node_id, prefix, next_hop
            )
        if self._fib_listener is not None:
            self._fib_listener(self.scheduler.now, self.node_id, prefix, next_hop)

    def _sync_peer(self, peer: int, prefix: Prefix) -> None:
        """Bring ``peer``'s view of ``prefix`` in line with our Loc-RIB.

        All rate-limiting, duplicate-suppression, and enhancement behavior
        funnels through here; MRAI expiry re-enters via the same method, so
        held updates always reflect the *latest* state.

        Updates are only emitted toward peers that can actually receive
        them: the link must be up and, in session mode, the session
        established — otherwise the peer would drop the update while our
        Adj-RIB-Out recorded it as sent, and the re-exchange at session-up
        would skip routes the peer never saw.
        """
        if not self.link_is_up(peer):
            return
        if self.sessions is not None and not self.sessions.established(peer):
            return
        self._sync_eligible_peer(peer, prefix)

    def _sync_eligible_peer(self, peer: int, prefix: Prefix) -> None:
        """:meth:`_sync_peer` with link/session eligibility already checked
        (the batched pass hoists those checks out of its inner loop)."""
        telemetry = self.scheduler.telemetry
        desired = self._desired_advertisement(peer, prefix)
        last = self.adj_rib_out.last_sent(peer, prefix)
        if desired == last.path:
            if telemetry is not None:
                telemetry.on_update_suppressed(
                    self.node_id, peer, prefix, "duplicate"
                )
            return

        if desired is None:
            held = withdrawals_rate_limited(self.config) and self.mrai.holding(
                peer, prefix
            )
            if held:
                if telemetry is not None:
                    telemetry.on_update_suppressed(
                        self.node_id, peer, prefix, "wrate"
                    )
                return  # WRATE: the expiry callback will re-derive and send
            self._send_withdrawal(peer, prefix)
            if withdrawals_rate_limited(self.config):
                self.mrai.mark_sent(peer, prefix)
            return

        if self.mrai.can_send_now(peer, prefix):
            self._send_announcement(peer, prefix, desired)
            self.mrai.mark_sent(peer, prefix)
            return

        # Announcement held by MRAI.
        if telemetry is not None:
            telemetry.on_update_suppressed(self.node_id, peer, prefix, "mrai")
        if self.config.ghost_flushing and should_flush(last, desired):
            self._send_withdrawal(peer, prefix)
            self.flush_withdrawals_sent += 1
            if telemetry is not None:
                telemetry.on_variant_extra(self.node_id, "ghost_flush")
        # Otherwise: wait silently; expiry re-syncs from current state.

    def _desired_advertisement(self, peer: int, prefix: Prefix) -> Optional[AsPath]:
        """The path ``peer`` should hold from us right now (None = nothing)."""
        best = self.loc_rib.get(prefix)
        if best is None or not self.policy.accept_export(peer, best):
            return None
        advertised = best.advertised_by(self.node_id)
        if self.config.ssld and converts_to_withdrawal(peer, advertised):
            # SSLD: the peer would poison-reverse this path away; send the
            # equivalent information as an (immediate) withdrawal instead.
            self.ssld_conversions += 1
            telemetry = self.scheduler.telemetry
            if telemetry is not None:
                telemetry.on_variant_extra(self.node_id, "ssld_conversion")
            return None
        return advertised

    def _send_announcement(self, peer: int, prefix: Prefix, path: AsPath) -> None:
        hooks = self.scheduler.invariants
        if hooks is not None:
            hooks.on_announcement(self, peer, prefix, path)
        if self.config.batch_updates:
            self._queue_update(peer, prefix, path)
        else:
            self.send(peer, Announcement(prefix=prefix, path=path))
        self.adj_rib_out.record_announcement(peer, prefix, path)
        self.announcements_sent += 1

    def _send_withdrawal(self, peer: int, prefix: Prefix) -> None:
        hooks = self.scheduler.invariants
        if hooks is not None:
            hooks.on_withdrawal(self, peer, prefix)
        if self.config.batch_updates:
            self._queue_update(peer, prefix, None)
        else:
            self.send(peer, Withdrawal(prefix=prefix))
        self.adj_rib_out.record_withdrawal(peer, prefix)
        self.withdrawals_sent += 1

    # ------------------------------------------------------------------
    # Batched-UPDATE packing (config.batch_updates)
    # ------------------------------------------------------------------

    def _queue_update(self, peer: int, prefix: Prefix, path: Optional[AsPath]) -> None:
        """Queue one route for the peer's next batch (last write wins).

        The first queued route for a peer schedules a same-instant flush
        event; every further same-instant update for the peer — including
        later events at this timestamp — joins the same batch.  Because the
        flush fires at the same simulation time the individual messages
        would have been sent, batching only changes packing, never timing.
        """
        pending = self._pending_updates.setdefault(peer, {})
        pending[prefix] = path
        if peer not in self._flush_scheduled:
            self._flush_scheduled.add(peer)
            self.scheduler.call_at(
                self.scheduler.now,
                lambda p=peer: self._flush_updates(p),
                name=f"batch-flush:{self.node_id}->{peer}",
            )

    def _flush_updates(self, peer: int) -> None:
        """Drain the peer's queue into one canonical UpdateBatch."""
        self._flush_scheduled.discard(peer)
        pending = self._pending_updates.pop(peer, None)
        if not pending or not self.alive:
            return
        if not self.link_is_up(peer):
            return  # adjacency died this instant; the purge re-syncs later
        if self.sessions is not None and not self.sessions.established(peer):
            return
        withdrawn = tuple(sorted(p for p, path in pending.items() if path is None))
        nlri = tuple(
            sorted((p, path) for p, path in pending.items() if path is not None)
        )
        self.send(peer, UpdateBatch(withdrawn=withdrawn, nlri=nlri))
        self.batches_sent += 1

    def _on_mrai_expiry(self, peer: int, prefix: Optional[Prefix]) -> None:
        telemetry = self.scheduler.telemetry
        if telemetry is not None:
            telemetry.on_mrai_expiry(
                self.scheduler.now, self.node_id, peer,
                prefix if prefix is not None else "*",
            )
        if not self.link_is_up(peer):
            return
        if prefix is not None:
            self._sync_peer(peer, prefix)
            return
        # Per-peer timer: one expiry releases every held prefix.  The flush
        # window lets each _sync_peer send while re-arming the shared timer
        # exactly once at the end (and only if something went out).
        held_prefixes = sorted(
            set(self.loc_rib.prefixes())
            | set(self.adj_rib_out.advertised_prefixes(peer))
        )
        with self.mrai.flush_window(peer):
            for held in held_prefixes:
                self._sync_peer(peer, held)

    # ------------------------------------------------------------------
    # Invariants (exercised by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`ProtocolError` if any RIB/FIB invariant is violated."""
        for neighbor, route in self.adj_rib_in.entries():
            if self.node_id in route.path:
                raise ProtocolError(
                    f"node {self.node_id} stored a looping path {route.path!r} "
                    f"from {neighbor}"
                )
            if route.next_hop != neighbor:
                raise ProtocolError(
                    f"adj-rib-in[{neighbor}] holds route with next hop "
                    f"{route.next_hop}"
                )
        prefixes = set(self.loc_rib.prefixes()) | self._origins
        for _neighbor, route in self.adj_rib_in.entries():
            prefixes.add(route.prefix)
        for prefix in sorted(prefixes):
            # The naive scan is the ground truth here, keeping this check
            # independent of the incremental ranking it helps validate.
            expected = self._select_best_naive(prefix)
            actual = self.loc_rib.get(prefix)
            if expected != actual:
                raise ProtocolError(
                    f"node {self.node_id} loc-rib for {prefix!r} is {actual!r}, "
                    f"decision process says {expected!r}"
                )
            cached = self._select_best(prefix)
            if cached != expected:
                raise ProtocolError(
                    f"node {self.node_id} ranked selection for {prefix!r} is "
                    f"{cached!r}, naive scan says {expected!r}"
                )
            fib_hop = self.fib.get(prefix)
            if expected is None and fib_hop is not None:
                raise ProtocolError(
                    f"node {self.node_id} FIB has {fib_hop} for unreachable "
                    f"{prefix!r}"
                )
            if expected is not None:
                want = self.node_id if expected.is_local else expected.next_hop
                if fib_hop != want:
                    raise ProtocolError(
                        f"node {self.node_id} FIB hop {fib_hop} != best-route "
                        f"hop {want} for {prefix!r}"
                    )
