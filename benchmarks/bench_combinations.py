"""Extension study: do the enhancements compose?

The paper evaluates each mechanism alone.  Their hook points are
independent, so combinations are well-defined; this benchmark measures the
promising pairs against the best single mechanisms on both scenario
families, plus the message cost (withdrawal fraction) each one pays.
"""

from _support import RESULTS_DIR

from repro.bgp import combine
from repro.core import UpdateChurn
from repro.experiments import RunSettings, run_experiment, tdown_clique, tdown_internet
from repro.util import mean, render_table

COMBOS = [
    ("standard",),
    ("assertion",),
    ("ghost-flushing",),
    ("ssld", "ghost-flushing"),
    ("assertion", "ghost-flushing"),
    ("ssld", "assertion", "ghost-flushing"),
]
SEEDS = (0, 1, 2)


def measure(make_scenario):
    rows = []
    exhaustions = {}
    for names in COMBOS:
        config = combine(names, mrai=30.0)
        conv, exh, wd_frac = [], [], []
        for seed in SEEDS:
            run = run_experiment(
                make_scenario(seed), config, RunSettings(), seed=seed,
                keep_network=True,
            )
            conv.append(run.result.convergence_time)
            exh.append(float(run.result.ttl_exhaustions))
            churn = UpdateChurn.from_trace(run.network.trace, run.failure_time)
            wd_frac.append(churn.withdrawal_fraction)
        label = "+".join(names)
        exhaustions[label] = mean(exh)
        rows.append([label, mean(conv), mean(exh), mean(wd_frac)])
    return rows, exhaustions


def _save(name, table):
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    print()
    print(table)


def test_combinations_clique_tdown(benchmark):
    rows, exhaustions = benchmark.pedantic(
        lambda: measure(lambda seed: tdown_clique(8)), rounds=1, iterations=1
    )
    _save(
        "combinations_clique",
        render_table(
            ["combination", "convergence_s", "ttl_exhaustions", "withdrawal_frac"],
            rows,
            title="Enhancement combinations, Tdown clique-8",
        ),
    )
    best_single = min(exhaustions["assertion"], exhaustions["ghost-flushing"])
    best_combo = min(
        exhaustions["ssld+ghost-flushing"],
        exhaustions["assertion+ghost-flushing"],
        exhaustions["ssld+assertion+ghost-flushing"],
    )
    # Composition never hurts relative to the best single mechanism (within
    # noise: allow a small absolute cushion for zero-vs-near-zero cases).
    assert best_combo <= best_single + 25


def test_combinations_internet_tdown(benchmark):
    rows, exhaustions = benchmark.pedantic(
        lambda: measure(lambda seed: tdown_internet(48, seed=seed)),
        rounds=1,
        iterations=1,
    )
    _save(
        "combinations_internet",
        render_table(
            ["combination", "convergence_s", "ttl_exhaustions", "withdrawal_frac"],
            rows,
            title="Enhancement combinations, Tdown internet-48",
        ),
    )
    assert exhaustions["assertion+ghost-flushing"] < exhaustions["standard"]
