"""Command-line interface.

Batch subcommands::

    repro run          # one experiment: topology + event + variant -> metrics
    repro figure       # regenerate one paper figure as an ASCII table
    repro sweep        # journaled, resumable Tdown clique sweep
    repro topology     # generate a topology and dump it as an edge list
    repro list         # available figures, variants, topology kinds
    repro lint         # determinism lint pass over the simulator's sources
    repro determinism  # dual-run reproducibility check on one scenario
    repro metrics      # one traced run: telemetry table + timeline exports
    repro stability    # static safety certification of the bundled scenarios

Service subcommands (the always-on sweep job service)::

    repro serve        # run the daemon for one state directory
    repro submit       # queue a sweep / figure / bench job
    repro jobs         # list the queue's jobs and their states
    repro watch        # stream one job's per-trial progress live
    repro cancel       # cancel a queued or running job

Also reachable as ``python -m repro``.  Every command is deterministic for
a given ``--seed`` — and ``repro determinism`` proves it.  ``figure``,
``sweep``, and ``determinism`` accept ``--retries``/``--trial-timeout`` to
run their parallel trials under the resilient supervised executor (worker
restarts, watchdog timeouts, retry with backoff — results unchanged).
The service verbs wrap the same machinery: a sweep submitted to the
daemon produces bit-identical per-trial digests to the equivalent
foreground ``repro sweep`` — even across a ``kill -9`` and restart.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from . import __version__
from .bgp import VARIANT_NAMES, variant
from .core import LoopStatistics
from .errors import ReproError
from .experiments import (
    RunSettings,
    custom_tdown,
    run_experiment,
    tcrash_clique,
    tdown_clique,
    tdown_internet,
    tflap_bclique,
    tlong_bclique,
    tlong_internet,
    treset_clique,
)
from .experiments.figures import (
    figure4a,
    figure4b,
    figure4c,
    figure5a,
    figure5b,
    figure6a,
    figure6b,
    figure6c,
    figure7a,
    figure7b,
    figure8a,
    figure8b,
    figure8c,
    figure8d,
    figure9a,
    figure9b,
    figure9c,
    figure9d,
    figure_tagg,
    theory_bound_figure,
)
from .topology import (
    b_clique,
    clique,
    dumps_edge_list,
    internet_like,
    named_generator,
)

FIGURES: Dict[str, Callable] = {
    "fig4a": figure4a,
    "fig4b": figure4b,
    "fig4c": figure4c,
    "fig5a": figure5a,
    "fig5b": figure5b,
    "fig6a": figure6a,
    "fig6b": figure6b,
    "fig6c": figure6c,
    "fig7a": figure7a,
    "fig7b": figure7b,
    "fig8a": figure8a,
    "fig8b": figure8b,
    "fig8c": figure8c,
    "fig8d": figure8d,
    "fig9a": figure9a,
    "fig9b": figure9b,
    "fig9c": figure9c,
    "fig9d": figure9d,
    "tagg": figure_tagg,
    "theory": theory_bound_figure,
}

#: Fast parameters for ``repro figure --quick`` (small sizes, short MRAI).
QUICK_FIGURE_KWARGS: Dict[str, dict] = {
    "fig4a": dict(sizes=(3, 4, 5), mrai=2.0),
    "fig4b": dict(sizes=(3, 4), mrai=2.0),
    "fig4c": dict(sizes=(12, 16), mrai=2.0, seeds=(0,)),
    "fig5a": dict(mrai_values=(1.0, 2.0, 3.0), clique_size=4),
    "fig5b": dict(mrai_values=(1.0, 2.0, 3.0), bclique_size=4),
    "fig6a": dict(sizes=(3, 4, 5), mrai=2.0),
    "fig6b": dict(sizes=(3, 4), mrai=2.0),
    "fig6c": dict(sizes=(12, 16), mrai=2.0, seeds=(0,)),
    "fig7a": dict(mrai_values=(1.0, 2.0, 3.0), clique_size=4),
    "fig7b": dict(mrai_values=(1.0, 2.0, 3.0), bclique_size=4),
    "fig8a": dict(sizes=(3, 4), mrai=2.0),
    "fig8b": dict(sizes=(3, 4), mrai=2.0),
    "fig8c": dict(sizes=(12,), mrai=2.0, seeds=(0,)),
    "fig8d": dict(sizes=(12,), mrai=2.0, seeds=(0,)),
    "fig9a": dict(sizes=(3, 4), mrai=2.0),
    "fig9b": dict(sizes=(3, 4), mrai=2.0),
    "fig9c": dict(sizes=(12,), mrai=2.0, seeds=(0,)),
    "fig9d": dict(sizes=(12,), mrai=2.0, seeds=(0,)),
    "tagg": dict(
        prefix_counts=(8, 16), clique_size=4, origins=2, hold=5.0, mrai=2.0
    ),
    "theory": dict(ring_sizes=(3, 4), mrai=2.0, seeds=(0,)),
}

TOPOLOGY_KINDS = ("clique", "b-clique", "chain", "ring", "star", "internet")


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help=(
            "retry trials lost to worker death or timeout up to N times "
            "with capped, deterministically-jittered backoff (enables the "
            "supervised executor)"
        ),
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "kill and retry any single trial running longer than this "
            "(supervised executor; needs --jobs > 1 to preempt)"
        ),
    )


def _policy_of(args):
    """A :class:`ResiliencePolicy` from CLI flags, or ``None`` when the
    resilience flags were not used (legacy executors)."""
    retries = getattr(args, "retries", None)
    trial_timeout = getattr(args, "trial_timeout", None)
    if retries is None and trial_timeout is None:
        return None
    from .experiments import ResiliencePolicy

    kwargs = {}
    if retries is not None:
        kwargs["max_retries"] = retries
    if trial_timeout is not None:
        kwargs["trial_timeout"] = trial_timeout
    return ResiliencePolicy(**kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BGP path-vector transient-loop simulator "
            "(reproduction of Pei et al., ICDCS 2004)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one experiment and print metrics")
    run.add_argument(
        "--topology", choices=TOPOLOGY_KINDS, default="clique",
        help="topology family (default: clique)",
    )
    run.add_argument("--size", type=int, default=10, help="topology size parameter")
    run.add_argument(
        "--event",
        choices=("tdown", "tlong", "treset", "tcrash", "tflap"),
        default="tdown",
        help="failure event (default: tdown)",
    )
    run.add_argument(
        "--variant", choices=VARIANT_NAMES, default="standard",
        help="protocol variant (default: standard)",
    )
    run.add_argument("--mrai", type=float, default=30.0, help="MRAI seconds")
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")
    run.add_argument(
        "--rate", type=float, default=10.0, help="packets/s per source AS"
    )
    run.add_argument(
        "--loop-stats", action="store_true",
        help="also print per-loop statistics (size/duration distributions)",
    )
    run.add_argument(
        "--verbose", action="store_true",
        help="full report: metrics, update churn, and individual loops",
    )
    run.add_argument(
        "--damping-half-life", type=float, default=None, metavar="SECONDS",
        help="enable RFC 2439 route-flap damping with this half-life",
    )
    run.add_argument(
        "--sessions", action="store_true",
        help=(
            "enable the keepalive/hold-timer session layer with ConnectRetry "
            "(hold 9s, keepalive 3s); implied defaults for churn events"
        ),
    )
    run.add_argument(
        "--restart-after", type=float, default=30.0, metavar="SECONDS",
        help="tcrash only: seconds the crashed node stays down (default: 30)",
    )
    run.add_argument(
        "--flap-period", type=float, default=15.0, metavar="SECONDS",
        help="tflap only: one full down/up cycle length (default: 15)",
    )
    run.add_argument(
        "--flap-count", type=int, default=3,
        help="tflap only: number of down/up cycles (default: 3)",
    )
    run.add_argument(
        "--sanitize", action="store_true",
        help=(
            "run under the runtime sanitizer suite (causality, channel "
            "FIFO, RIB coherence invariants checked on every event)"
        ),
    )

    figure = commands.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("id", choices=sorted(FIGURES), help="figure identifier")
    figure.add_argument(
        "--quick", action="store_true",
        help="tiny sizes and short MRAI (seconds instead of minutes)",
    )
    figure.add_argument(
        "--plot", action="store_true", help="also draw an ASCII chart"
    )
    figure.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "run sweep trials on N worker processes (0 = one per CPU); "
            "results are bit-identical to --jobs 1 (default)"
        ),
    )
    figure.add_argument(
        "--metrics", action="store_true",
        help=(
            "run the sweep with telemetry enabled and print the aggregated "
            "metric table after the figure (digests are unaffected)"
        ),
    )
    _add_resilience_arguments(figure)

    sweep_cmd = commands.add_parser(
        "sweep",
        help="journaled, resumable Tdown clique sweep (crash-safe)",
    )
    sweep_cmd.add_argument(
        "--sizes", default="3,4,5", metavar="N,N,...",
        help="comma-separated clique sizes to sweep (default: 3,4,5)",
    )
    sweep_cmd.add_argument(
        "--trials", type=int, default=2, metavar="N",
        help="seeded trials per size (seeds 0..N-1; default: 2)",
    )
    sweep_cmd.add_argument(
        "--mrai", type=float, default=2.0, help="MRAI seconds (default: 2)"
    )
    sweep_cmd.add_argument(
        "--variant", choices=VARIANT_NAMES, default="standard",
        help="protocol variant (default: standard)",
    )
    sweep_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (0 = one per CPU; default: 1)",
    )
    sweep_cmd.add_argument(
        "--journal", required=True, metavar="PATH",
        help=(
            "CRC-checked JSONL trial journal; every finished trial is "
            "durably appended, so a crashed sweep re-runs only what's "
            "missing"
        ),
    )
    resume_group = sweep_cmd.add_mutually_exclusive_group()
    resume_group.add_argument(
        "--resume", action="store_true",
        help="resume from the journal if present (the default behavior)",
    )
    resume_group.add_argument(
        "--fresh", action="store_true",
        help="discard any existing journal and start over",
    )
    _add_resilience_arguments(sweep_cmd)

    topo = commands.add_parser("topology", help="generate and print a topology")
    topo.add_argument("--kind", choices=TOPOLOGY_KINDS, default="internet")
    topo.add_argument("--size", type=int, default=29)
    topo.add_argument("--seed", type=int, default=0, help="seed (internet only)")

    commands.add_parser("list", help="show available figures and variants")

    lint = commands.add_parser(
        "lint",
        help="run the determinism lint pass over simulator sources",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help=(
            "output format; json additionally lists findings neutralized "
            "by lint:allow comments (flagged suppressed) so CI can diff "
            "the full picture"
        ),
    )

    stability = commands.add_parser(
        "stability",
        help=(
            "statically certify policy stability (dispute wheels, "
            "Gao-Rexford structure) for the bundled scenario suite"
        ),
    )
    stability.add_argument(
        "names", nargs="*",
        help="suite scenarios to certify (default: the whole suite)",
    )
    stability.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    stability.add_argument(
        "--check", metavar="PATH", default=None,
        help=(
            "compare verdicts against a committed expected-verdicts JSON "
            "file and exit 1 on any mismatch (the CI gate)"
        ),
    )
    stability.add_argument(
        "--observe", action="store_true",
        help=(
            "additionally simulate each UNSAFE scenario to a fixed horizon "
            "and report the dynamic classification (converged / "
            "persistent-oscillation), cross-checking the static verdict"
        ),
    )
    stability.add_argument(
        "--seed", type=int, default=0,
        help="root RNG seed for --observe runs (default: 0)",
    )

    determinism = commands.add_parser(
        "determinism",
        help="run one scenario repeatedly under one seed and diff digests",
    )
    determinism.add_argument(
        "--size", type=int, default=5, help="clique size (default: 5)"
    )
    determinism.add_argument(
        "--mrai", type=float, default=2.0, help="MRAI seconds (default: 2)"
    )
    determinism.add_argument("--seed", type=int, default=0, help="root RNG seed")
    determinism.add_argument(
        "--variant", choices=VARIANT_NAMES, default="standard",
        help="protocol variant (default: standard)",
    )
    determinism.add_argument(
        "--runs", type=int, default=2, help="number of repetitions (default: 2)"
    )
    determinism.add_argument(
        "--sanitize", action="store_true",
        help="also enable the runtime sanitizer suite for every run",
    )
    determinism.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "run repetitions 1..N-1 in worker processes while run 0 stays "
            "in-process, so identical digests also certify cross-process "
            "equivalence (0 = one worker per CPU)"
        ),
    )
    determinism.add_argument(
        "--metrics", action="store_true",
        help=(
            "additionally repeat the check with telemetry enabled and "
            "verify the digest matches the untraced one (proves telemetry "
            "is purely observational)"
        ),
    )
    _add_resilience_arguments(determinism)

    metrics = commands.add_parser(
        "metrics",
        help="run one telemetry-traced experiment and print its metrics",
    )
    metrics.add_argument(
        "--topology", choices=TOPOLOGY_KINDS, default="clique",
        help="topology family (default: clique)",
    )
    metrics.add_argument(
        "--size", type=int, default=5, help="topology size parameter"
    )
    metrics.add_argument(
        "--event",
        choices=("tdown", "tlong", "treset", "tcrash", "tflap"),
        default="tdown",
        help="failure event (default: tdown)",
    )
    metrics.add_argument(
        "--variant", choices=VARIANT_NAMES, default="standard",
        help="protocol variant (default: standard)",
    )
    metrics.add_argument("--mrai", type=float, default=2.0, help="MRAI seconds")
    metrics.add_argument("--seed", type=int, default=0, help="root RNG seed")
    metrics.add_argument(
        "--rate", type=float, default=10.0, help="packets/s per source AS"
    )
    metrics.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help=(
            "export the run's timeline as Chrome trace-event JSON "
            "(loadable in Perfetto / chrome://tracing)"
        ),
    )
    metrics.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="export the run's timeline as JSON Lines",
    )
    metrics.set_defaults(restart_after=30.0, flap_period=15.0, flap_count=3)

    serve = commands.add_parser(
        "serve",
        help="run the sweep job service daemon (Unix-socket, durable queue)",
    )
    serve.add_argument(
        "--state", required=True, metavar="DIR",
        help="service state directory (socket, job queue, journals, artifacts)",
    )
    serve.add_argument(
        "--bench-interval", type=float, default=None, metavar="SECONDS",
        help=(
            "submit a continuous-benchmarking job every N seconds, recording "
            "the per-commit perf trajectory under benchmarks/results/"
        ),
    )
    serve.add_argument(
        "--bench-repeat", type=int, default=1, metavar="N",
        help="timed repetitions per scheduled bench scenario (default: 1)",
    )

    submit = commands.add_parser(
        "submit", help="queue a job on the sweep service daemon"
    )
    submit.add_argument(
        "--state", required=True, metavar="DIR",
        help="state directory of the daemon to talk to",
    )
    what = submit.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--sweep", metavar="FAMILY", dest="sweep_family",
        help="sweep family: tdown, tlong, treset, tcrash, or tflap",
    )
    what.add_argument(
        "--figure", metavar="ID", dest="figure_id",
        help="render one paper figure into the job's artifact directory",
    )
    what.add_argument(
        "--bench", action="store_true",
        help="run one continuous-benchmarking cycle against the baselines",
    )
    submit.add_argument(
        "--xs", default=None, metavar="X,X,...",
        help="sweep x values (sizes, or flap periods for tflap)",
    )
    submit.add_argument(
        "--trials", type=int, default=1, metavar="N",
        help="seeded trials per x (seeds 0..N-1; default: 1)",
    )
    submit.add_argument(
        "--variant", choices=VARIANT_NAMES, default="standard",
        help="protocol variant (default: standard)",
    )
    submit.add_argument(
        "--mrai", type=float, default=2.0, help="MRAI seconds (default: 2)"
    )
    submit.add_argument(
        "--size", type=int, default=None,
        help="topology size for families that sweep something else (tflap)",
    )
    submit.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes inside the job (0 = one per CPU; default: 1)",
    )
    submit.add_argument(
        "--quick", action="store_true",
        help="figure jobs: tiny sizes and short MRAI",
    )
    submit.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="bench jobs: timed repetitions per scenario (default: 1)",
    )
    submit.add_argument(
        "--follow", action="store_true",
        help="stay attached and stream the job's events (like repro watch)",
    )
    _add_resilience_arguments(submit)

    jobs_cmd = commands.add_parser(
        "jobs", help="list the sweep service's jobs and their states"
    )
    jobs_cmd.add_argument(
        "--state", required=True, metavar="DIR",
        help="state directory of the daemon to talk to",
    )
    jobs_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    watch = commands.add_parser(
        "watch", help="stream one job's per-trial progress from the daemon"
    )
    watch.add_argument(
        "--state", required=True, metavar="DIR",
        help="state directory of the daemon to talk to",
    )
    watch.add_argument("job", metavar="JOB", help="job id (e.g. job-3)")

    cancel = commands.add_parser(
        "cancel", help="cancel a queued or running sweep service job"
    )
    cancel.add_argument(
        "--state", required=True, metavar="DIR",
        help="state directory of the daemon to talk to",
    )
    cancel.add_argument("job", metavar="JOB", help="job id (e.g. job-3)")

    return parser


def _make_scenario(args):
    if args.event == "tdown":
        if args.topology == "clique":
            return tdown_clique(args.size)
        if args.topology == "internet":
            return tdown_internet(args.size, seed=args.seed)
        generator = named_generator(args.topology)
        return custom_tdown(generator(args.size), destination=0)
    if args.event == "tlong":
        if args.topology == "b-clique":
            return tlong_bclique(args.size)
        if args.topology == "internet":
            return tlong_internet(args.size, seed=args.seed)
        raise ReproError(
            f"tlong is defined for b-clique and internet topologies, "
            f"not {args.topology!r}"
        )
    if args.event == "treset":
        if args.topology != "clique":
            raise ReproError("treset is defined for clique topologies")
        return treset_clique(args.size)
    if args.event == "tcrash":
        if args.topology != "clique":
            raise ReproError("tcrash is defined for clique topologies")
        return tcrash_clique(args.size, restart_after=args.restart_after)
    # tflap
    if args.topology != "b-clique":
        raise ReproError("tflap is defined for b-clique topologies")
    return tflap_bclique(
        args.size, period=args.flap_period, count=args.flap_count
    )


def _cmd_run(args) -> int:
    scenario = _make_scenario(args)
    config = variant(args.variant, mrai=args.mrai)
    if args.sessions or args.event in ("treset", "tcrash", "tflap"):
        from dataclasses import replace

        if not config.sessions_enabled:
            config = replace(
                config,
                hold_time=9.0,
                keepalive_interval=3.0,
                connect_retry=0.5,
                connect_retry_cap=4.0,
            )
    if args.damping_half_life is not None:
        from dataclasses import replace

        from .bgp import DampingConfig

        config = replace(
            config,
            damping=DampingConfig(
                half_life=args.damping_half_life,
                max_suppress_time=5 * args.damping_half_life,
            ),
        )
    settings = RunSettings(packet_rate=args.rate, sanitize=args.sanitize)
    print(
        f"running {scenario.name} / {config.variant_name} / MRAI {args.mrai}s "
        f"/ seed {args.seed}"
    )
    run = run_experiment(
        scenario,
        config,
        settings=settings,
        seed=args.seed,
        keep_network=args.verbose,
    )
    if args.verbose:
        from .experiments.report import describe_run

        print()
        print(describe_run(run))
        return 0
    result = run.result
    print(f"  convergence time        : {result.convergence_time:10.2f} s")
    print(f"  overall looping duration: {result.overall_looping_duration:10.2f} s")
    print(f"  TTL exhaustions         : {result.ttl_exhaustions:10d}")
    print(f"  packets sent            : {result.packets_sent:10d}")
    print(f"  looping ratio           : {result.looping_ratio:10.1%}")
    print(f"  updates sent            : {result.convergence.update_count:10d}")
    if args.loop_stats:
        stats = LoopStatistics.from_intervals(
            result.loop_intervals, failure_time=run.failure_time
        )
        print()
        for line in stats.describe().splitlines():
            print(f"  {line}")
    return 0


def _cmd_figure(args) -> int:
    import inspect

    driver = FIGURES[args.id]
    kwargs = dict(QUICK_FIGURE_KWARGS[args.id]) if args.quick else {}
    parameters = inspect.signature(driver).parameters
    if "jobs" in parameters:
        kwargs["jobs"] = args.jobs
    elif args.jobs != 1:
        print(
            f"note: {args.id} does not sweep and runs single-process; "
            f"--jobs ignored",
            file=sys.stderr,
        )
    policy = _policy_of(args)
    if policy is not None:
        if "policy" in parameters:
            kwargs["policy"] = policy
        else:
            print(
                f"note: {args.id} does not sweep; "
                f"--retries/--trial-timeout ignored",
                file=sys.stderr,
            )
    if args.metrics:
        if "settings" in parameters:
            kwargs["settings"] = RunSettings(telemetry=True)
        else:
            print(
                f"note: {args.id} does not accept run settings; "
                f"--metrics ignored",
                file=sys.stderr,
            )
    figure = driver(**kwargs)
    print(figure.render())
    if args.metrics and figure.telemetry is not None:
        print("\naggregated telemetry (all trials):")
        print(figure.telemetry.render())
    elif args.metrics and "settings" in parameters:
        print(
            f"note: {args.id} ran with telemetry but attaches no aggregate "
            f"(non-sweep driver)",
            file=sys.stderr,
        )
    if args.plot:
        print()
        print(figure.plot())
    failures = figure.check_failures()
    if failures:
        print("\nshape checks NOT satisfied at these parameters:")
        for check in failures:
            print(f"  {check}")
    return 0


def _cmd_sweep(args) -> int:
    from .experiments import (
        SweepJournal,
        checkpointed_sweep,
        clique_tdown_trial,
        constant_config,
        factory_ref,
    )

    sizes = [int(value) for value in args.sizes.split(",") if value.strip()]
    if not sizes:
        raise ReproError(f"--sizes needs at least one size, got {args.sizes!r}")
    if args.trials < 1:
        raise ReproError(f"--trials must be >= 1, got {args.trials}")
    seeds = tuple(range(args.trials))
    config = variant(args.variant, mrai=args.mrai)
    policy = _policy_of(args)
    journal = SweepJournal(args.journal)
    reports: List = []
    summaries = checkpointed_sweep(
        sizes,
        clique_tdown_trial,
        factory_ref(constant_config, config=config),
        journal=journal,
        seeds=seeds,
        settings=RunSettings(),
        jobs=args.jobs,
        policy=policy,
        fresh=args.fresh,
        on_report=reports.append,
    )
    journal.close()
    print(journal.recovery.render())
    header = f"{'size':>6} {'ok':>4} {'fail':>5} {'timeout':>8}  metrics"
    print(header)
    for summary in summaries:
        metrics = ", ".join(
            f"{key}={value:.2f}" for key, value in sorted(summary.metrics.items())
        )
        print(
            f"{summary.x:>6g} {summary.succeeded:>4} {summary.failed:>5} "
            f"{summary.timeouts:>8}  {metrics or '-'}"
        )
    if policy is not None and reports:
        supervision = reports[0]
        for extra in reports[1:]:
            supervision = supervision.merged(extra)
        print(supervision.render())
    if any(summary.succeeded == 0 for summary in summaries):
        return 1
    return 0


def _cmd_topology(args) -> int:
    if args.kind == "internet":
        topo = internet_like(args.size, seed=args.seed)
    elif args.kind == "clique":
        topo = clique(args.size)
    elif args.kind == "b-clique":
        topo = b_clique(args.size)
    else:
        topo = named_generator(args.kind)(args.size)
    sys.stdout.write(dumps_edge_list(topo))
    return 0


def _cmd_list(_args) -> int:
    print("figures :", " ".join(sorted(FIGURES)))
    print("variants:", " ".join(VARIANT_NAMES))
    print("topology:", " ".join(TOPOLOGY_KINDS))
    return 0


def _cmd_lint(args) -> int:
    import json

    from .analysis import lint_paths

    paths = args.paths
    if not paths:
        # Default to the installed package sources: works from a source
        # checkout (src/repro) and from anywhere else via __file__.
        checkout = Path("src") / "repro"
        paths = [str(checkout if checkout.is_dir() else Path(__file__).parent)]
    as_json = args.format == "json"
    violations = lint_paths(paths, keep_suppressed=as_json)
    unsuppressed = [v for v in violations if not v.suppressed]
    if as_json:
        payload = {
            "paths": list(paths),
            "violations": [v.to_json() for v in violations],
            "unsuppressed": len(unsuppressed),
            "suppressed": len(violations) - len(unsuppressed),
        }
        print(json.dumps(payload, indent=2))
    else:
        for violation in violations:
            print(violation.render())
        if unsuppressed:
            print(f"\n{len(unsuppressed)} determinism violation(s) found")
        else:
            print(
                f"lint clean: no determinism violations in {', '.join(paths)}"
            )
    return 1 if unsuppressed else 0


def _cmd_stability(args) -> int:
    import json

    from .analysis.stability import Verdict, certify_scenario
    from .experiments import observe_oscillation, stability_suite

    suite = stability_suite()
    by_name = {entry.name: entry for entry in suite}
    names = list(args.names) or [entry.name for entry in suite]
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise ReproError(
            f"unknown scenario(s): {', '.join(unknown)}; "
            f"available: {', '.join(entry.name for entry in suite)}"
        )
    reports = []
    for name in names:
        entry = by_name[name]
        reports.append(
            (
                entry,
                certify_scenario(
                    entry.scenario, policy_factory=entry.policy_factory
                ),
            )
        )
    observations = {}
    if args.observe:
        for entry, report in reports:
            if report.verdict is Verdict.UNSAFE:
                observations[entry.name] = observe_oscillation(
                    entry, seed=args.seed, certify=False
                )
    if args.format == "json":
        payload = {
            "verdicts": {report.name: report.to_json() for _, report in reports}
        }
        if observations:
            payload["observations"] = {
                name: observations[name].to_json()
                for name in sorted(observations)
            }
        print(json.dumps(payload, indent=2))
    else:
        for entry, report in reports:
            print(report.render())
            observed = observations.get(entry.name)
            if observed is not None:
                for line in observed.render().splitlines():
                    print(f"  {line}")
    if args.check:
        expected = json.loads(Path(args.check).read_text())
        mismatches = []
        for _, report in reports:
            want = expected.get(report.name)
            if want is None:
                mismatches.append(f"{report.name}: not present in {args.check}")
            elif (
                want.get("verdict") != report.verdict.value
                or want.get("method") != report.method
            ):
                mismatches.append(
                    f"{report.name}: expected "
                    f"{want.get('verdict')}[{want.get('method')}], got "
                    f"{report.verdict.value}[{report.method}]"
                )
        if mismatches:
            print(f"\nverdict drift against {args.check}:")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print(f"\nall {len(reports)} verdict(s) match {args.check}")
    return 0


def _cmd_determinism(args) -> int:
    from .analysis import check_determinism

    scenario = tdown_clique(args.size)
    config = variant(args.variant, mrai=args.mrai)
    settings = RunSettings(sanitize=args.sanitize)
    policy = _policy_of(args)
    report = check_determinism(
        scenario,
        config,
        settings=settings,
        seed=args.seed,
        runs=args.runs,
        jobs=args.jobs,
        policy=policy,
    )
    print(report.render())
    if not report.identical:
        return 1
    if args.metrics:
        from dataclasses import replace

        traced = check_determinism(
            scenario,
            config,
            settings=replace(settings, telemetry=True),
            seed=args.seed,
            runs=args.runs,
            jobs=args.jobs,
            policy=policy,
        )
        print(traced.render())
        if not traced.identical:
            return 1
        if traced.digest != report.digest:
            print(
                "  TELEMETRY PERTURBED THE RUN — digest changed when "
                "telemetry was enabled"
            )
            return 1
        print("  telemetry on/off digests MATCH — instrumentation is inert")
    return 0


def _cmd_metrics(args) -> int:
    from .telemetry import PhaseProfiler, validate_chrome_trace

    scenario = _make_scenario(args)
    config = variant(args.variant, mrai=args.mrai)
    if args.event in ("treset", "tcrash", "tflap") and not config.sessions_enabled:
        from dataclasses import replace

        config = replace(
            config,
            hold_time=9.0,
            keepalive_interval=3.0,
            connect_retry=0.5,
            connect_retry_cap=4.0,
        )
    settings = RunSettings(packet_rate=args.rate, telemetry=True, timeline=True)
    print(
        f"tracing {scenario.name} / {config.variant_name} / MRAI {args.mrai}s "
        f"/ seed {args.seed}"
    )
    profiler = PhaseProfiler()
    with profiler.phase("simulate"):
        run = run_experiment(scenario, config, settings=settings, seed=args.seed)
    assert run.metrics is not None and run.timeline is not None
    print()
    print("telemetry:")
    print(run.metrics.render())
    print()
    print(
        f"timeline : {len(run.timeline)} records across categories "
        f"{', '.join(run.timeline.categories())}"
    )
    with profiler.phase("export"):
        if args.chrome_trace:
            events = validate_chrome_trace(run.timeline.to_chrome_trace())
            run.timeline.write_chrome_trace(args.chrome_trace)
            print(
                f"wrote {args.chrome_trace} ({events} trace events, "
                f"schema-validated; load in Perfetto or chrome://tracing)"
            )
        if args.jsonl:
            run.timeline.write_jsonl(args.jsonl)
            print(f"wrote {args.jsonl} ({len(run.timeline)} JSONL records)")
    print()
    print("harness wall-clock:")
    print(profiler.render())
    return 0


def _cmd_serve(args) -> int:
    from .service import ServiceState, serve

    state = ServiceState(args.state)
    print(f"sweep service: state {state.root}, socket {state.socket_path}")
    if args.bench_interval:
        print(f"bench scheduler: every {args.bench_interval:g}s")
    serve(
        args.state,
        bench_interval=args.bench_interval,
        bench_repeat=args.bench_repeat,
    )
    print("sweep service stopped")
    return 0


def _stream_job(client, job_id: str) -> int:
    """Print a job's event stream; exit 0 iff it ended well."""
    from .service.events import snapshot_from_json

    final = "unknown"
    for event in client.watch(job_id):
        kind = event.get("event")
        if kind == "trial":
            status = "ok" if event.get("ok") else "FAILED"
            print(f"trial x={event['x']:g} seed={event['seed']}: {status}")
        elif kind == "point":
            stats = event.get("stats", {})
            metrics = stats.get("metrics") or {}
            rendered = ", ".join(
                f"{key}={value:.2f}" for key, value in sorted(metrics.items())
            )
            line = (
                f"point x={event['x']:g}: {stats.get('succeeded', 0)} ok, "
                f"{stats.get('failed', 0)} failed"
            )
            print(f"{line}  {rendered}" if rendered else line)
        elif kind == "snapshot":
            snapshot = snapshot_from_json(event.get("metrics", {}))
            if not snapshot.empty:
                print("aggregated telemetry (all trials):")
                print(snapshot.render())
        elif kind == "state":
            detail = event.get("detail") or {}
            suffix = f" ({detail})" if detail else ""
            print(f"state: {event.get('state')}{suffix}")
        elif kind == "log":
            print(f"# {event.get('message')}")
        elif kind == "end":
            final = event.get("state", "unknown")
            print(f"job {job_id} finished: {final}")
    # "queued" means the daemon shut down politely mid-job; the job is
    # intact and resumes on the next daemon start — not a failure here.
    return 0 if final in ("done", "queued") else 1


def _cmd_submit(args) -> int:
    from .service import ServiceClient

    if args.sweep_family is not None:
        if not args.xs:
            raise ReproError("--sweep needs --xs (e.g. --xs 3,4,5)")
        xs = [float(value) for value in args.xs.split(",") if value.strip()]
        params: Dict = {
            "family": args.sweep_family,
            "xs": xs,
            "trials": args.trials,
            "variant": args.variant,
            "mrai": args.mrai,
            "jobs": args.jobs,
        }
        if args.size is not None:
            params["size"] = args.size
        retries = getattr(args, "retries", None)
        trial_timeout = getattr(args, "trial_timeout", None)
        if retries is not None:
            params["retries"] = retries
        if trial_timeout is not None:
            params["trial_timeout"] = trial_timeout
        spec = {"kind": "sweep", "params": params}
    elif args.figure_id is not None:
        spec = {
            "kind": "figure",
            "params": {
                "id": args.figure_id,
                "quick": args.quick,
                "jobs": args.jobs,
            },
        }
    else:
        spec = {"kind": "bench", "params": {"repeat": args.repeat}}

    client = ServiceClient(args.state)
    job_id = client.submit(spec)
    print(f"submitted {job_id} ({spec['kind']})")
    if args.follow:
        return _stream_job(client, job_id)
    return 0


def _cmd_jobs(args) -> int:
    import json

    from .service import ServiceClient

    summaries = ServiceClient(args.state).jobs()
    if args.format == "json":
        print(json.dumps(summaries, indent=2, sort_keys=True))
        return 0
    if not summaries:
        print("no jobs")
        return 0
    header = f"{'job':<10} {'kind':<8} {'state':<10} detail"
    print(header)
    print("-" * len(header))
    for summary in summaries:
        detail = summary.get("detail") or {}
        notes = []
        for key in ("points", "trials", "ok", "failed", "error"):
            if key in detail:
                notes.append(f"{key}={detail[key]}")
        if detail.get("resumed"):
            notes.append("resumed")
        if detail.get("interrupted"):
            notes.append("interrupted")
        print(
            f"{summary['job']:<10} {summary['kind']:<8} "
            f"{summary['state']:<10} {' '.join(notes)}"
        )
    return 0


def _cmd_watch(args) -> int:
    from .service import ServiceClient

    return _stream_job(ServiceClient(args.state), args.job)


def _cmd_cancel(args) -> int:
    from .service import ServiceClient

    reply = ServiceClient(args.state).cancel(args.job)
    if reply.get("cancelling"):
        print(f"{args.job} is running; cancelling at the next trial boundary")
    else:
        print(f"{args.job} cancelled")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "topology": _cmd_topology,
        "list": _cmd_list,
        "lint": _cmd_lint,
        "determinism": _cmd_determinism,
        "metrics": _cmd_metrics,
        "stability": _cmd_stability,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "watch": _cmd_watch,
        "cancel": _cmd_cancel,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into e.g. `head` that exited early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
