"""Figure 6: TTL exhaustions and looping ratio across topology sizes.

Three panels mirror Figure 4's scenarios.  The paper's reading: the looping
ratio exceeds 65% for Tdown in Cliques of size ≥ 15 and 35% for Tlong in
B-Cliques of size ≥ 15, i.e. a majority of packets sent during convergence
meet a loop.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core import ObservationCheck
from ..config import RunSettings
from ..resilience import ResiliencePolicy
from ..report import FigureData
from ..scenarios import (
    bclique_tlong_trial,
    clique_tdown_trial,
    internet_tdown_trial,
)
from .common import metric_sweep_figure

_METRICS = ("ttl_exhaustions", "looping_ratio")


def _with_ratio_floor(figure: FigureData, floor: float) -> FigureData:
    """Check the largest topology's looping ratio clears the paper's floor."""
    final_ratio = figure.series["looping_ratio"][-1]
    figure.checks.append(
        ObservationCheck(
            name="looping-ratio-floor",
            holds=final_ratio >= floor,
            detail=(
                f"looping ratio at largest size is {final_ratio:.2f} "
                f"(paper reports >= {floor:.2f})"
            ),
        )
    )
    return figure


def figure6a(
    sizes: Sequence[int] = (5, 8, 11, 14),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in Cliques: exhaustion counts and a >= 65% looping ratio."""
    figure, _points = metric_sweep_figure(
        "fig6a",
        "Tdown TTL exhaustions and looping ratio (Clique)",
        "clique_size",
        list(sizes),
        clique_tdown_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _with_ratio_floor(figure, floor=0.5)


def figure6b(
    sizes: Sequence[int] = (4, 6, 8, 10),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0,),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tlong in B-Cliques: exhaustion counts and a >= 35% looping ratio."""
    figure, _points = metric_sweep_figure(
        "fig6b",
        "Tlong TTL exhaustions and looping ratio (B-Clique)",
        "bclique_size",
        list(sizes),
        bclique_tlong_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _with_ratio_floor(figure, floor=0.25)


def figure6c(
    sizes: Sequence[int] = (29, 48, 75, 110),
    mrai: float = 30.0,
    seeds: Sequence[int] = (0, 1),
    settings: RunSettings = RunSettings(),
    jobs: int = 1,
    policy: Optional[ResiliencePolicy] = None,
) -> FigureData:
    """Tdown in Internet-derived topologies (paper: up to 86% at n=110)."""
    figure, _points = metric_sweep_figure(
        "fig6c",
        "Tdown TTL exhaustions and looping ratio (Internet-derived)",
        "internet_size",
        list(sizes),
        internet_tdown_trial,
        _METRICS,
        mrai=mrai,
        seeds=seeds,
        settings=settings,
        jobs=jobs,
        policy=policy,
    )
    return _with_ratio_floor(figure, floor=0.3)
