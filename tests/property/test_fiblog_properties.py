"""Property-based tests for FIB history reconstruction."""

from hypothesis import given, strategies as st

from repro.dataplane import FibChangeLog

P = "dest"

change_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # time
        st.integers(min_value=0, max_value=5),                        # node
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),  # next hop
    ),
    max_size=30,
)


def build_log(changes):
    log = FibChangeLog()
    for time, node, hop in sorted(changes, key=lambda c: c[0]):
        log.record(time, node, P, hop)
    return log


@given(change_lists, st.floats(min_value=0.0, max_value=120.0, allow_nan=False))
def test_snapshot_equals_manual_replay(changes, at):
    log = build_log(changes)
    graph = log.snapshot_at(P, at)
    expected = {}
    for time, node, hop in sorted(changes, key=lambda c: c[0]):
        if time <= at:
            expected[node] = hop
    for node, hop in expected.items():
        assert graph.next_hop(node) == hop


@given(change_lists)
def test_epochs_tile_the_window_exactly(changes):
    log = build_log(changes)
    start, end = 0.0, 120.0
    epochs = list(log.epochs(P, start, end))
    assert epochs, "non-empty window must yield at least one epoch"
    assert epochs[0][0] == start
    assert epochs[-1][1] == end
    for (_s0, e0, _g0), (s1, _e1, _g1) in zip(epochs, epochs[1:]):
        assert e0 == s1  # contiguous, no gaps or overlaps
    assert all(s < e for s, e, _g in epochs)  # no zero-width epochs


@given(change_lists)
def test_epoch_graph_matches_snapshot_at_epoch_start(changes):
    log = build_log(changes)
    for s, _e, graph in log.epochs(P, 0.0, 120.0):
        snapshot = log.snapshot_at(P, s)
        for node in range(6):
            assert graph.next_hop(node) == snapshot.next_hop(node)


@given(change_lists)
def test_epoch_boundaries_are_change_times(changes):
    log = build_log(changes)
    change_times = set(log.change_times(P))
    epochs = list(log.epochs(P, 0.0, 120.0))
    for s, _e, _g in epochs[1:]:
        assert s in change_times
