"""Routing policy hooks.

The paper assumes "a shortest-path routing policy, and the smaller node ID is
used for tie-breaking between equal length paths".  That is the default
policy here; the :class:`RoutingPolicy` interface additionally exposes the
standard BGP policy knobs (import/export filtering, LOCAL_PREF assignment) so
the library is usable beyond the paper's scenarios.
"""

from __future__ import annotations

from typing import Tuple

from .messages import Prefix
from .route import DEFAULT_LOCAL_PREF, Route


class RoutingPolicy:
    """Base policy: accept everything, shortest path, low-id tie-break.

    Subclass and override any hook.  All hooks are pure functions of their
    arguments; policies must not keep per-call mutable state, because the
    speaker may re-evaluate routes at any time.
    """

    # ------------------------------------------------------------------
    # Import side
    # ------------------------------------------------------------------

    def accept_import(self, neighbor: int, route: Route) -> bool:
        """Whether to store ``route`` learned from ``neighbor``.

        Loop detection (path-based poison reverse) happens *before* this
        hook and cannot be disabled by policy.
        """
        del neighbor, route
        return True

    def local_pref(self, neighbor: int, route: Route) -> int:
        """LOCAL_PREF to assign to a route learned from ``neighbor``."""
        del neighbor, route
        return DEFAULT_LOCAL_PREF

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def preference_key(self, route: Route) -> Tuple:
        """Total-order key; the *smallest* key wins.

        Default: higher LOCAL_PREF, then shorter AS path, then smaller
        next-hop node id (local origination, next_hop ``None``, sorts before
        every neighbor — a node always prefers its own origination).
        """
        next_hop_rank = -1 if route.next_hop is None else route.next_hop
        return (-route.local_pref, route.hop_count, next_hop_rank)

    # ------------------------------------------------------------------
    # Export side
    # ------------------------------------------------------------------

    def accept_export(self, neighbor: int, route: Route) -> bool:
        """Whether to advertise ``route`` to ``neighbor``.

        Default full-mesh transit: advertise the best route to every peer
        (the receiver's poison reverse handles paths containing itself).
        """
        del neighbor, route
        return True


class ShortestPathPolicy(RoutingPolicy):
    """The paper's policy, by its own name — identical to the base class."""


class NoTransitForPrefix(RoutingPolicy):
    """Example policy: refuse to transit traffic for one prefix.

    A route for ``prefix`` learned from a neighbor is used locally but never
    re-exported.  Included as a realistic policy-hook exercise for tests and
    examples; the paper's experiments do not use it.
    """

    def __init__(self, prefix: Prefix) -> None:
        self._prefix = prefix

    def accept_export(self, neighbor: int, route: Route) -> bool:
        if route.prefix == self._prefix and not route.is_local:
            return False
        return True


class PreferNeighbor(RoutingPolicy):
    """Example policy: LOCAL_PREF boost for routes via a chosen neighbor."""

    def __init__(self, neighbor: int, boost: int = 50) -> None:
        self._neighbor = neighbor
        self._boost = boost

    def local_pref(self, neighbor: int, route: Route) -> int:
        base = DEFAULT_LOCAL_PREF
        if neighbor == self._neighbor:
            return base + self._boost
        return base
