"""Tests for the distance-vector baseline — the §2 comparison.

The key demonstrations: poison reverse stops 2-node loops, fails on 3-node
loops (counting to infinity), and the path-vector speaker avoids both.
"""

import pytest

from repro.dv import INFINITY_METRIC, DvUpdate, RipSpeaker
from repro.engine import RandomStreams, Scheduler
from repro.errors import ProtocolError
from repro.net import Network
from repro.topology import chain, ring

PREFIX = "dest"


def make_dv_network(scheduler, topo, seed=11, poison_reverse=True, fib_log=None):
    streams = RandomStreams(seed)

    def factory(nid, sch):
        listener = fib_log.record if fib_log is not None else None
        return RipSpeaker(
            nid,
            sch,
            streams,
            processing_delay=(0.01, 0.05),
            poison_reverse=poison_reverse,
            fib_listener=listener,
        )

    return Network(topo, scheduler, factory)


def converge(network, scheduler, origin=0):
    network.node(origin).originate(PREFIX)
    network.start()
    scheduler.run(max_events=500_000)


class TestMessages:
    def test_metric_bounds(self):
        with pytest.raises(ValueError):
            DvUpdate(prefix=PREFIX, metric=-1)
        with pytest.raises(ValueError):
            DvUpdate(prefix=PREFIX, metric=INFINITY_METRIC + 1)

    def test_unreachable_flag(self):
        assert DvUpdate(PREFIX, INFINITY_METRIC).is_unreachable
        assert not DvUpdate(PREFIX, 3).is_unreachable


class TestConvergence:
    def test_chain_metrics(self, scheduler):
        network = make_dv_network(scheduler, chain(4))
        converge(network, scheduler)
        for nid in range(4):
            route = network.node(nid).route(PREFIX)
            assert route is not None
            assert route.metric == nid

    def test_next_hops_form_tree(self, scheduler):
        network = make_dv_network(scheduler, ring(5))
        converge(network, scheduler)
        assert network.node(1).next_hop(PREFIX) == 0
        assert network.node(4).next_hop(PREFIX) == 0

    def test_withdraw_unoriginated_raises(self, scheduler):
        network = make_dv_network(scheduler, chain(2))
        with pytest.raises(ProtocolError):
            network.node(1).withdraw_origin(PREFIX)


class TestPoisonReverse:
    def test_two_node_case_converges_to_unreachable(self, scheduler):
        """Chain 0-1-2 with poison reverse: withdrawing the origin must not
        count to infinity — node 2 never re-advertises to its next hop."""
        network = make_dv_network(scheduler, chain(3), poison_reverse=True)
        converge(network, scheduler)
        network.node(0).withdraw_origin(PREFIX)
        scheduler.run(max_events=500_000)
        assert network.node(1).route(PREFIX) is None
        assert network.node(2).route(PREFIX) is None

    def test_counting_to_infinity_without_poison_reverse(self, scheduler):
        """Without poison reverse the same event bounces metrics upward to
        the infinity ceiling before flushing — visibly more updates."""
        with_pr = Scheduler()
        network_pr = make_dv_network(with_pr, chain(3), poison_reverse=True)
        converge(network_pr, with_pr)
        network_pr.node(0).withdraw_origin(PREFIX)
        with_pr.run(max_events=500_000)

        without = Scheduler()
        network_plain = make_dv_network(without, chain(3), poison_reverse=False)
        converge(network_plain, without)
        network_plain.node(0).withdraw_origin(PREFIX)
        without.run(max_events=500_000)

        assert network_plain.node(2).route(PREFIX) is None
        updates_plain = sum(n.updates_sent for n in network_plain.nodes.values())
        updates_pr = sum(n.updates_sent for n in network_pr.nodes.values())
        assert updates_plain > updates_pr

    def test_three_node_loop_defeats_poison_reverse(self, scheduler):
        """§2's claim: split-horizon/poison-reverse "can only detect 2-node
        routing loops".  On a ring, a Tdown event lets stale metrics chase
        each other around the cycle (counting to infinity through a 3-node
        loop) even WITH poison reverse enabled."""
        network = make_dv_network(scheduler, ring(3), poison_reverse=True)
        converge(network, scheduler)
        before = sum(n.updates_sent for n in network.nodes.values())
        network.node(0).withdraw_origin(PREFIX)
        scheduler.run(max_events=500_000)
        after = sum(n.updates_sent for n in network.nodes.values())
        # Eventually consistent (metric ceiling), but only after the
        # counting-to-infinity churn: many more updates than the 2-node case.
        assert network.node(1).route(PREFIX) is None
        assert network.node(2).route(PREFIX) is None
        assert after - before > 6


class TestModes:
    def test_mode_shorthand_mapping(self, scheduler):
        from repro.dv import DvMode
        from repro.engine import RandomStreams

        streams = RandomStreams(0)
        assert RipSpeaker(0, scheduler, streams, poison_reverse=True).mode is (
            DvMode.POISON_REVERSE
        )
        assert RipSpeaker(1, scheduler, streams, poison_reverse=False).mode is (
            DvMode.NONE
        )

    def test_invalid_mode_rejected(self, scheduler):
        from repro.engine import RandomStreams
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RipSpeaker(0, scheduler, RandomStreams(0), mode="loud")

    def test_split_horizon_sends_nothing_back(self, scheduler):
        """Split horizon: node 1 must never send prefix updates to its own
        next hop (node 0), poisoned or otherwise."""
        from repro.dv import DvMode

        network = make_dv_network(scheduler, chain(3))
        for node in network.nodes.values():
            node.mode = DvMode.SPLIT_HORIZON
        converge(network, scheduler)
        toward_next_hop = network.trace.records(
            lambda r: r.src == 1 and r.dst == 0
        )
        assert toward_next_hop == []

    def test_poison_reverse_sends_infinity_back(self, scheduler):
        network = make_dv_network(scheduler, chain(3), poison_reverse=True)
        converge(network, scheduler)
        poisoned = network.trace.records(
            lambda r: r.src == 1 and r.dst == 0 and r.message.is_unreachable
        )
        assert poisoned, "expected a poisoned advertisement toward the next hop"

    def test_split_horizon_also_converges_unreachable_on_chain(self, scheduler):
        from repro.dv import DvMode

        network = make_dv_network(scheduler, chain(3))
        for node in network.nodes.values():
            node.mode = DvMode.SPLIT_HORIZON
        converge(network, scheduler)
        network.node(0).withdraw_origin(PREFIX)
        scheduler.run(max_events=500_000)
        assert network.node(2).route(PREFIX) is None


class TestFibListener:
    def test_fib_changes_recorded(self, scheduler):
        from repro.dataplane import FibChangeLog

        log = FibChangeLog()
        network = make_dv_network(scheduler, chain(3), fib_log=log)
        converge(network, scheduler)
        final = log.snapshot_at(PREFIX, scheduler.now)
        assert final.next_hop(0) == 0
        assert final.next_hop(1) == 0
        assert final.next_hop(2) == 1
