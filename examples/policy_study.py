#!/usr/bin/env python
"""Routing policy vs transient loops: shortest-path vs Gao-Rexford.

The paper's simulations use shortest-path routing.  Real inter-domain
routing applies Gao-Rexford export rules (your own and customer routes go
to everyone; peer and provider routes go to customers only), which prune
most of the obsolete backup paths that BGP's path exploration walks through
after a failure.  This example runs the same Tdown event both ways on the
same AS-like graph and compares the damage — and verifies that every route
the Gao-Rexford network selects is valley-free.

Usage::

    python examples/policy_study.py [size] [seed]
"""

import sys

from repro import BgpConfig, RunSettings
from repro.bgp import GaoRexfordPolicy, is_valley_free, relationships_from_tiers
from repro.experiments import custom_tdown, run_experiment
from repro.topology import choose_destination, internet_like_with_tiers
from repro.util import render_table


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    # Gao-Rexford requires a genuine tier-1 full mesh (peer routes are
    # never re-exported to other peers).
    from repro.topology import InternetShape

    shape = InternetShape(core_mesh_probability=1.0)
    topo, tiers = internet_like_with_tiers(size, seed=seed, shape=shape)
    relationships = relationships_from_tiers(topo, tiers)
    destination = choose_destination(topo, seed=seed)
    scenario = custom_tdown(topo, destination, name=f"policy-study-{size}")
    config = BgpConfig.standard(30.0)
    print(
        f"Tdown of stub AS {destination} on an AS-like graph "
        f"(n={size}, seed={seed}), MRAI 30s.\n"
    )

    audit = {"checked": 0, "violations": 0}

    def audit_converged_routes(network, _failure_time):
        """Inspect the warm-up steady state before the failure fires."""
        for _nid, node in network.nodes.items():
            path = node.full_path(scenario.prefix)
            if path is None:
                continue
            audit["checked"] += 1
            if not is_valley_free(list(path), relationships):
                audit["violations"] += 1

    rows = []
    for label, factory in (
        ("shortest-path", None),
        ("gao-rexford", lambda nid: GaoRexfordPolicy(relationships[nid])),
    ):
        run = run_experiment(
            scenario,
            config,
            RunSettings(),
            seed=seed,
            policy_factory=factory,
            on_network_ready=(
                audit_converged_routes if label == "gao-rexford" else None
            ),
        )
        result = run.result
        rows.append(
            [
                label,
                result.convergence_time,
                result.ttl_exhaustions,
                result.looping_ratio,
                result.convergence.update_count,
            ]
        )
    print(
        render_table(
            ["policy", "convergence_s", "ttl_exhaustions", "looping_ratio", "updates"],
            rows,
            title="Same failure, two policies",
        )
    )
    print(
        f"\nValley-free audit of the converged Gao-Rexford routes: "
        f"{audit['checked']} routes checked, {audit['violations']} violations."
    )
    print(
        "\nTakeaway: policy filtering shrinks the explorable path space, so"
        "\nthe paper's shortest-path setting is close to a worst case for"
        "\ntransient looping; economically-filtered BGP explores (and loops)"
        "\nfar less."
    )


if __name__ == "__main__":
    main()
