"""Reading and writing topologies as plain-text edge lists.

The format is the one AS-graph galleries conventionally use: one edge per
line, ``u v [delay]``, ``#`` comments allowed.  This lets users plug in their
own AS graphs (e.g. CAIDA relationships files reduced to adjacencies) in
place of the built-in synthetic Internet generator.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from ..errors import TopologyError
from .graph import DEFAULT_LINK_DELAY, Topology

PathOrFile = Union[str, Path, TextIO]


def load_edge_list(source: PathOrFile, name: str = "loaded") -> Topology:
    """Parse an edge-list file or file-like object into a :class:`Topology`.

    Each non-comment line is ``u v`` or ``u v delay_seconds``.  Duplicate
    edges keep the last delay seen.  Raises :class:`TopologyError` with the
    offending line number on malformed input.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return _parse(handle, name=str(source))
    return _parse(source, name=name)


def _parse(handle: TextIO, name: str) -> Topology:
    topo = Topology(name)
    for lineno, raw in enumerate(handle, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise TopologyError(
                f"{name}:{lineno}: expected 'u v [delay]', got {raw.strip()!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
            delay = float(parts[2]) if len(parts) == 3 else DEFAULT_LINK_DELAY
        except ValueError as exc:
            raise TopologyError(f"{name}:{lineno}: {exc}") from None
        topo.add_edge(u, v, delay)
    if topo.num_nodes == 0:
        raise TopologyError(f"{name}: no edges found")
    return topo


def dump_edge_list(topo: Topology, target: PathOrFile) -> None:
    """Write ``topo`` in the edge-list format accepted by :func:`load_edge_list`."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            _write(topo, handle)
    else:
        _write(topo, target)


def _write(topo: Topology, handle: TextIO) -> None:
    handle.write(f"# topology {topo.name}: {topo.num_nodes} nodes, {topo.num_edges} edges\n")
    for u, v, delay in topo.edges():
        if delay == DEFAULT_LINK_DELAY:
            handle.write(f"{u} {v}\n")
        else:
            handle.write(f"{u} {v} {delay}\n")


def dumps_edge_list(topo: Topology) -> str:
    """Edge-list text for ``topo`` (round-trips through :func:`load_edge_list`)."""
    buffer = io.StringIO()
    _write(topo, buffer)
    return buffer.getvalue()
