"""Experiment scenarios: a topology plus the §4.1 failure event.

A :class:`Scenario` fixes *what breaks where*: the topology, the destination
AS (which originates the studied prefix), and either a **Tdown** event (the
destination becomes unreachable — the origin withdraws) or a **Tlong** event
(one transit link fails; the destination stays reachable over less-preferred
paths).

The module provides the paper's concrete scenario families:
Clique + Tdown, B-Clique + Tlong, and Internet-like graphs with both events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigError, TopologyError
from ..topology import (
    Topology,
    b_clique,
    choose_destination,
    choose_failure_link,
    clique,
    internet_like,
    provider_load,
)

DEFAULT_PREFIX = "dest"
"""The prefix name used by all built-in scenarios."""


class EventKind(enum.Enum):
    """The two §4.1 topology-change events."""

    TDOWN = "tdown"
    TLONG = "tlong"


@dataclass(frozen=True)
class Scenario:
    """One fully-specified experiment setup."""

    name: str
    topology: Topology
    destination: int
    event: EventKind
    failed_link: Optional[Tuple[int, int]] = None
    prefix: str = DEFAULT_PREFIX

    def __post_init__(self) -> None:
        if not self.topology.has_node(self.destination):
            raise ConfigError(
                f"destination {self.destination} not in topology {self.topology.name!r}"
            )
        if self.event is EventKind.TLONG:
            if self.failed_link is None:
                raise ConfigError("a Tlong scenario must name the link to fail")
            u, v = self.failed_link
            if not self.topology.has_edge(u, v):
                raise ConfigError(f"failed link ({u}, {v}) not in topology")
            if self.topology.is_cut_edge(u, v):
                raise ConfigError(
                    f"link ({u}, {v}) is a cut edge; failing it would disconnect "
                    "the graph, which contradicts Tlong's definition"
                )
        elif self.failed_link is not None:
            raise ConfigError("a Tdown scenario must not name a failed link")

    @property
    def source_nodes(self) -> list:
        """Every AS that hosts a traffic source (all but the destination)."""
        return [n for n in self.topology.nodes if n != self.destination]


# ----------------------------------------------------------------------
# The paper's scenario families
# ----------------------------------------------------------------------


def tdown_clique(n: int) -> Scenario:
    """Tdown in an n-clique: the classic convergence worst case."""
    return Scenario(
        name=f"tdown-clique-{n}",
        topology=clique(n),
        destination=0,
        event=EventKind.TDOWN,
    )


def tlong_bclique(n: int) -> Scenario:
    """Tlong in a size-n B-Clique: fail the edge-to-core link (0, n).

    "AS 0 is chosen as the destination AS and the link between AS 0 and n is
    failed during simulation to induce a Tlong event."
    """
    return Scenario(
        name=f"tlong-bclique-{n}",
        topology=b_clique(n),
        destination=0,
        event=EventKind.TLONG,
        failed_link=(0, n),
    )


def tdown_internet(n: int, seed: int = 0) -> Scenario:
    """Tdown in an Internet-like graph; destination drawn from the stubs."""
    topo = internet_like(n, seed=seed)
    destination = choose_destination(topo, seed=seed)
    return Scenario(
        name=f"tdown-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TDOWN,
    )


def tlong_internet(n: int, seed: int = 0, candidates: int = 8) -> Scenario:
    """Tlong in an Internet-like graph: fail the destination's primary link.

    Candidate destinations are low-degree nodes whose link can fail without
    disconnecting them (Tlong's definition).  Among the ``candidates``
    lowest-degree qualifying nodes, the one with the most *dominant* primary
    provider is selected — failing a dominant primary is the event the paper
    studies ("forces the rest of the network to use less preferred paths");
    failing a balanced provider's link converges almost silently.  The
    ``seed`` determines the topology and breaks remaining ties.
    """
    topo = internet_like(n, seed=seed)
    ranked = sorted(topo.nodes, key=lambda x: (topo.degree(x), x))
    best: Optional[Tuple[float, int, Tuple[int, int]]] = None
    examined = 0
    for destination in ranked:
        if topo.degree(destination) < 2:
            continue
        try:
            failed = choose_failure_link(topo, destination, seed=seed)
        except TopologyError:
            continue
        examined += 1
        loads = provider_load(topo, destination)
        total = sum(loads.values()) or 1
        dominance = loads[failed[1]] / total
        key = (dominance, -destination)
        if best is None or key > best[0:2]:
            best = (dominance, -destination, failed)
        if examined >= candidates:
            break
    if best is None:
        raise ConfigError(f"no Tlong-capable destination in internet_like({n}, {seed})")
    destination = -best[1]
    return Scenario(
        name=f"tlong-internet-{n}-s{seed}",
        topology=topo,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=best[2],
    )


def custom_tdown(topology: Topology, destination: int, name: str = "") -> Scenario:
    """Tdown on a user-supplied topology."""
    return Scenario(
        name=name or f"tdown-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TDOWN,
    )


def custom_tlong(
    topology: Topology,
    destination: int,
    failed_link: Tuple[int, int],
    name: str = "",
) -> Scenario:
    """Tlong on a user-supplied topology and link."""
    return Scenario(
        name=name or f"tlong-{topology.name}",
        topology=topology,
        destination=destination,
        event=EventKind.TLONG,
        failed_link=failed_link,
    )
