"""Unit tests for convergence measurement."""

import pytest

from repro.bgp import Announcement, AsPath, Withdrawal
from repro.core import measure_convergence
from repro.net import MessageTrace


def ann():
    return Announcement(prefix="d", path=AsPath((1, 0)))


def wd():
    return Withdrawal(prefix="d")


class TestMeasurement:
    def test_basic_window(self):
        trace = MessageTrace()
        trace.record(1.0, 0, 1, ann())   # warm-up, excluded
        trace.record(10.0, 0, 1, wd())
        trace.record(12.0, 1, 2, ann())
        trace.record(15.5, 2, 1, wd())
        report = measure_convergence(trace, failure_time=10.0)
        assert report.convergence_time == 5.5
        assert report.first_update_time == 10.0
        assert report.update_count == 3
        assert report.announcement_count == 1
        assert report.withdrawal_count == 2
        assert report.reaction_delay == 0.0
        assert report.convergence_end == 15.5

    def test_silent_convergence(self):
        trace = MessageTrace()
        trace.record(1.0, 0, 1, ann())
        report = measure_convergence(trace, failure_time=10.0)
        assert report.convergence_time == 0.0
        assert report.update_count == 0
        assert report.convergence_end == 10.0

    def test_non_update_messages_ignored(self):
        trace = MessageTrace()
        trace.record(11.0, 0, 1, "keepalive")
        trace.record(12.0, 0, 1, ann())
        report = measure_convergence(trace, failure_time=10.0)
        assert report.update_count == 1
        assert report.reaction_delay == 2.0

    def test_update_exactly_at_failure_time_counts(self):
        trace = MessageTrace()
        trace.record(10.0, 0, 1, wd())
        report = measure_convergence(trace, failure_time=10.0)
        assert report.update_count == 1
