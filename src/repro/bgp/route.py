"""Routes: a prefix bound to an AS path with bookkeeping attributes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .messages import Prefix
from .path import AsPath

LOCAL_NEXT_HOP: Optional[int] = None
"""``next_hop`` of a locally-originated route (traffic is delivered here)."""

DEFAULT_LOCAL_PREF = 100
"""BGP's customary default LOCAL_PREF."""


@dataclass(frozen=True, slots=True)
class Route:
    """One candidate route to ``prefix``.

    Attributes
    ----------
    prefix:
        The destination.
    path:
        The AS path *as stored*: exactly what the neighbor advertised (its
        own AS is the head), or the empty path for a local origination.
    next_hop:
        The neighbor the route was learned from, or ``None`` for local.
    local_pref:
        Policy preference; higher wins (standard BGP semantics).  The
        paper's experiments leave every route at the default, making the
        decision purely shortest-path.
    learned_at:
        Simulation time the route entered the RIB (diagnostics only; not
        part of equality so RIB comparisons stay value-based).
    """

    prefix: Prefix
    path: AsPath
    next_hop: Optional[int]
    local_pref: int = DEFAULT_LOCAL_PREF
    learned_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.next_hop is None and not self.path.is_empty:
            raise ValueError("a non-local route must name its next hop")
        if self.next_hop is not None and self.path.head != self.next_hop:
            raise ValueError(
                f"stored path {self.path!r} must start at next hop {self.next_hop}"
            )

    @property
    def is_local(self) -> bool:
        """True for a locally-originated route."""
        return self.next_hop is None

    @property
    def hop_count(self) -> int:
        """AS hops to the destination (0 for a local route)."""
        return len(self.path)

    def advertised_by(self, asn: int) -> AsPath:
        """The path this route would carry when ``asn`` re-advertises it."""
        return self.path.prepend(asn)

    def __repr__(self) -> str:
        origin = "local" if self.is_local else f"via {self.next_hop}"
        return f"Route[{self.prefix} {self.path!r} {origin} lp={self.local_pref}]"


def local_route(prefix: Prefix, learned_at: float = 0.0) -> Route:
    """The route a speaker installs when it originates ``prefix``."""
    return Route(
        prefix=prefix,
        path=AsPath.empty(),
        next_hop=LOCAL_NEXT_HOP,
        learned_at=learned_at,
    )
