"""Job specifications: what a client may ask the service to run.

A :class:`JobSpec` is plain JSON-able data — ``kind`` plus a parameter
dict — because it must cross the wire protocol, live in the durable
queue, and survive a daemon restart byte-identically.  Resolution from
spec to executable factories happens on the daemon side
(:func:`resolve_sweep_plan`), *eagerly at submit time*, so a bad spec is
rejected at the socket instead of failing hours later when the job is
dequeued.

Sweep jobs reuse the module-level trial adapters from
:mod:`repro.experiments.scenarios` and :func:`~repro.experiments.spec.
factory_ref` wrappers — the same picklable factory layer every parallel
sweep uses — so a service job's trials are *by construction* the same
``TrialTask`` objects a foreground ``sweep(jobs=1)`` would run.  That is
what makes the digest-equality acceptance check meaningful: the service
adds scheduling and durability around the trials, never a different
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..bgp import VARIANT_NAMES, variant
from ..errors import ServiceError
from ..experiments import (
    ResiliencePolicy,
    RunSettings,
    bclique_tflap_trial,
    bclique_tlong_trial,
    clique_tcrash_trial,
    clique_tdown_trial,
    clique_treset_trial,
    constant_config,
    factory_ref,
)

#: Job kinds the executor knows how to run.
JOB_KINDS = ("sweep", "figure", "bench")

#: Job lifecycle states, in the order a healthy job passes through them.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Sweep families a job spec may name, mapped to their trial adapters.
#: ``needs_size`` families sweep something other than topology size and
#: bind a fixed ``size`` keyword; ``churn`` families get session timers.
_FAMILIES: Dict[str, Dict] = {
    "tdown": {"adapter": clique_tdown_trial, "churn": False, "needs_size": False},
    "tlong": {"adapter": bclique_tlong_trial, "churn": False, "needs_size": False},
    "treset": {"adapter": clique_treset_trial, "churn": True, "needs_size": False},
    "tcrash": {"adapter": clique_tcrash_trial, "churn": True, "needs_size": False},
    "tflap": {"adapter": bclique_tflap_trial, "churn": True, "needs_size": True},
}

SWEEP_FAMILIES = tuple(sorted(_FAMILIES))


@dataclass(frozen=True)
class JobSpec:
    """One submitted unit of work: a kind plus JSON-able parameters."""

    kind: str
    params: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_json(cls, data: Dict) -> "JobSpec":
        try:
            kind = data["kind"]
        except (TypeError, KeyError) as exc:
            raise ServiceError(f"job spec needs a 'kind': {data!r}") from exc
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ServiceError(
                f"job spec params must be an object, got {type(params).__name__}"
            )
        return cls(kind=kind, params=dict(params))


@dataclass(frozen=True)
class SweepPlan:
    """A sweep spec resolved to the exact objects ``checkpointed_sweep``
    will receive — shared by the daemon's executor and by tests that
    re-run the same sweep in the foreground for digest comparison."""

    xs: Tuple[float, ...]
    seeds: Tuple[int, ...]
    make_scenario: Callable
    make_config: Callable
    settings: RunSettings
    policy: Optional[ResiliencePolicy]
    jobs: int
    digests: bool


def _require_numbers(values, name: str) -> Tuple[float, ...]:
    if not isinstance(values, (list, tuple)) or not values:
        raise ServiceError(f"sweep spec {name!r} must be a non-empty list")
    out: List[float] = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceError(
                f"sweep spec {name!r} must contain numbers, got {value!r}"
            )
        out.append(float(value))
    return tuple(out)


def resolve_sweep_plan(params: Dict) -> SweepPlan:
    """Validate a sweep job's parameters and build its executable plan.

    Raises :class:`~repro.errors.ServiceError` on any invalid field, so
    submission fails fast at the socket.
    """
    family = params.get("family", "tdown")
    if family not in _FAMILIES:
        raise ServiceError(
            f"unknown sweep family {family!r}; expected one of "
            f"{', '.join(SWEEP_FAMILIES)}"
        )
    entry = _FAMILIES[family]
    xs = _require_numbers(params.get("xs"), "xs")

    trials = params.get("trials", 1)
    if isinstance(trials, bool) or not isinstance(trials, int) or trials < 1:
        raise ServiceError(f"sweep spec 'trials' must be an int >= 1, got {trials!r}")
    seeds = tuple(range(trials))

    variant_name = params.get("variant", "standard")
    if variant_name not in VARIANT_NAMES:
        raise ServiceError(
            f"unknown variant {variant_name!r}; expected one of "
            f"{', '.join(VARIANT_NAMES)}"
        )
    mrai = params.get("mrai", 2.0)
    if isinstance(mrai, bool) or not isinstance(mrai, (int, float)) or mrai < 0:
        raise ServiceError(f"sweep spec 'mrai' must be a number >= 0, got {mrai!r}")
    config = variant(variant_name, mrai=float(mrai))
    if entry["churn"] and not config.sessions_enabled:
        config = replace(
            config,
            hold_time=9.0,
            keepalive_interval=3.0,
            connect_retry=0.5,
            connect_retry_cap=4.0,
        )

    if entry["needs_size"]:
        size = params.get("size")
        if isinstance(size, bool) or not isinstance(size, int) or size < 3:
            raise ServiceError(
                f"sweep family {family!r} needs an int 'size' >= 3, got {size!r}"
            )
        make_scenario = factory_ref(entry["adapter"], size=size)
    else:
        make_scenario = entry["adapter"]

    jobs = params.get("jobs", 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        raise ServiceError(f"sweep spec 'jobs' must be an int >= 0, got {jobs!r}")

    policy: Optional[ResiliencePolicy] = None
    retries = params.get("retries")
    trial_timeout = params.get("trial_timeout")
    if retries is not None or trial_timeout is not None:
        kwargs: Dict = {}
        if retries is not None:
            kwargs["max_retries"] = retries
        if trial_timeout is not None:
            kwargs["trial_timeout"] = trial_timeout
        policy = ResiliencePolicy(**kwargs)

    settings = RunSettings(telemetry=bool(params.get("telemetry", True)))
    return SweepPlan(
        xs=xs,
        seeds=seeds,
        make_scenario=make_scenario,
        make_config=factory_ref(constant_config, config=config),
        settings=settings,
        policy=policy,
        jobs=jobs,
        digests=bool(params.get("digests", True)),
    )


def validate_spec(spec: JobSpec) -> None:
    """Reject invalid specs at submit time (the daemon's gate).

    Sweep specs are fully resolved (factories, config, policy); figure
    specs are checked against the CLI's figure registry; bench specs are
    structurally checked (target names are validated when the cycle
    runs, against the bench directory that exists *then*).
    """
    if spec.kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {spec.kind!r}; expected one of "
            f"{', '.join(JOB_KINDS)}"
        )
    if spec.kind == "sweep":
        resolve_sweep_plan(spec.params)
    elif spec.kind == "figure":
        from ..cli import FIGURES

        figure_id = spec.params.get("id")
        if figure_id not in FIGURES:
            raise ServiceError(
                f"unknown figure {figure_id!r}; expected one of "
                f"{', '.join(sorted(FIGURES))}"
            )
    else:  # bench
        names = spec.params.get("targets", [])
        if not isinstance(names, (list, tuple)):
            raise ServiceError(
                f"bench spec 'targets' must be a list, got {names!r}"
            )


@dataclass
class JobView:
    """One job's current state, replayed from the durable queue."""

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    submitted: float = 0.0
    updated: float = 0.0
    detail: Dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict:
        """The JSON shape ``repro jobs`` and the protocol return."""
        return {
            "job": self.job_id,
            "kind": self.spec.kind,
            "state": self.state,
            "submitted": self.submitted,
            "updated": self.updated,
            "detail": dict(self.detail),
        }


def job_sort_key(job_id: str) -> Tuple[int, str]:
    """Sort ``job-N`` ids numerically, anything else lexically after."""
    prefix, _, tail = job_id.partition("-")
    if prefix == "job" and tail.isdigit():
        return (int(tail), "")
    return (1 << 30, job_id)
