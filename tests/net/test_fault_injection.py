"""Tests for churn fault injection: session resets, node crashes, link flaps."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    LinkFailure,
    LinkFlap,
    LinkRestore,
    Network,
    Node,
    NodeCrash,
    SessionReset,
)
from repro.topology import chain, clique


class Recorder(Node):
    def __init__(self, node_id, scheduler):
        super().__init__(node_id, scheduler)
        self.inbox = []
        self.events = []

    def handle_message(self, src, message):
        self.inbox.append((src, message))

    def on_link_down(self, neighbor):
        self.events.append(("down", neighbor))

    def on_link_up(self, neighbor):
        self.events.append(("up", neighbor))

    def on_session_reset(self, neighbor):
        self.events.append(("reset", neighbor))


@pytest.fixture
def net(scheduler):
    return Network(clique(4), scheduler, lambda nid, sch: Recorder(nid, sch))


class TestSessionReset:
    def test_both_endpoints_notified_link_stays_up(self, scheduler, net):
        net.reset_session(0, 1)
        assert ("reset", 1) in net.nodes[0].events
        assert ("reset", 0) in net.nodes[1].events
        assert net.link_is_up(0, 1)
        assert not any(kind == "down" for kind, _ in net.nodes[0].events)

    def test_in_flight_messages_destroyed_both_directions(self, scheduler, net):
        net.send(0, 1, "a")
        net.send(1, 0, "b")
        scheduler.call_at(0.001, lambda: net.reset_session(0, 1))
        scheduler.run()
        assert net.nodes[1].inbox == []
        assert net.nodes[0].inbox == []

    def test_injector_schedules_at_time(self, scheduler, net):
        SessionReset(0, 1, at=5.0).inject(net)
        scheduler.run()
        assert scheduler.now == pytest.approx(5.0)
        assert ("reset", 1) in net.nodes[0].events


class TestNodeCrash:
    def test_crash_takes_incident_links_down(self, scheduler, net):
        net.crash_node(1)
        assert not net.node_is_up(1)
        for other in (0, 2, 3):
            assert not net.link_is_up(1, other)
            assert ("down", 1) in net.nodes[other].events
        # Links not touching the crashed node stay up.
        assert net.link_is_up(0, 2)

    def test_silent_crash_suppresses_notifications(self, scheduler, net):
        net.crash_node(1, silent=True)
        for other in (0, 2, 3):
            assert not net.link_is_up(1, other)
            assert ("down", 1) not in net.nodes[other].events

    def test_crashed_node_loses_queued_and_in_flight_messages(self, scheduler, net):
        net.send(0, 1, "doomed")
        scheduler.call_at(0.0005, lambda: net.crash_node(1))
        scheduler.run()
        assert net.nodes[1].inbox == []

    def test_deliveries_to_dead_node_are_dropped(self, scheduler, net):
        net.crash_node(1)
        # A message somehow delivered to a dead node is silently lost.
        net.nodes[1].deliver(0, "ghost")
        scheduler.run()
        assert net.nodes[1].inbox == []
        assert net.nodes[1].messages_dropped_dead == 1

    def test_crash_is_idempotent(self, scheduler, net):
        net.crash_node(1)
        net.crash_node(1)
        net.restart_node(1)
        assert net.node_is_up(1)
        for other in (0, 2, 3):
            assert net.link_is_up(1, other)

    def test_restart_restores_links_and_notifies(self, scheduler, net):
        net.crash_node(1)
        net.restart_node(1)
        assert net.node_is_up(1)
        for other in (0, 2, 3):
            assert net.link_is_up(1, other)
            assert ("up", 1) in net.nodes[other].events

    def test_restart_of_non_crashed_node_is_noop(self, scheduler, net):
        net.restart_node(2)
        assert net.node_is_up(2)
        assert net.nodes[0].events == []

    def test_link_failed_before_crash_stays_down_after_restart(self, scheduler, net):
        net.fail_link(1, 2)
        net.crash_node(1)
        net.restart_node(1)
        assert net.link_is_up(0, 1)
        assert not net.link_is_up(1, 2)  # independently failed; not ours

    def test_overlapping_crashes_hand_links_over(self, scheduler, net):
        """A link between two crashed nodes comes back only when the
        last-down endpoint restarts."""
        net.crash_node(1)
        net.crash_node(2)
        net.restart_node(1)
        assert not net.link_is_up(1, 2)  # 2 still dead
        assert net.link_is_up(0, 1)
        net.restart_node(2)
        assert net.link_is_up(1, 2)

    def test_injector_with_restart(self, scheduler, net):
        NodeCrash(1, at=2.0, restart_after=3.0).inject(net)
        scheduler.run(until=2.5)
        assert not net.node_is_up(1)
        scheduler.run(until=6.0)
        assert net.node_is_up(1)

    def test_injector_validates_restart_after(self):
        with pytest.raises(NetworkError):
            NodeCrash(1, at=2.0, restart_after=0.0)


class TestLinkFlap:
    def test_expands_to_ordered_failure_restore_pairs(self):
        flap = LinkFlap(0, 1, at=10.0, period=4.0, count=2)
        events = flap.events()
        assert events == [
            LinkFailure(0, 1, 10.0),
            LinkRestore(0, 1, 12.0),
            LinkFailure(0, 1, 14.0),
            LinkRestore(0, 1, 16.0),
        ]
        assert flap.last_restore_at == pytest.approx(16.0)

    def test_injected_flap_toggles_link(self, scheduler, net):
        LinkFlap(0, 1, at=1.0, period=2.0, count=2).inject(net)
        assert net.link_is_up(0, 1)
        scheduler.run(until=1.5)
        assert not net.link_is_up(0, 1)
        scheduler.run(until=2.5)
        assert net.link_is_up(0, 1)
        scheduler.run(until=3.5)
        assert not net.link_is_up(0, 1)
        scheduler.run(until=10.0)
        assert net.link_is_up(0, 1)  # ends up

    def test_validation(self):
        with pytest.raises(NetworkError):
            LinkFlap(0, 1, at=0.0, period=0.0)
        with pytest.raises(NetworkError):
            LinkFlap(0, 1, at=0.0, period=1.0, count=0)
        with pytest.raises(NetworkError):
            LinkFlap(0, 1, at=0.0, period=1.0, duty=1.0)


class TestChainCrash:
    def test_partition_and_heal(self, scheduler):
        net = Network(chain(3), scheduler, lambda nid, sch: Recorder(nid, sch))
        net.crash_node(1)
        assert not net.link_is_up(0, 1)
        assert not net.link_is_up(1, 2)
        net.restart_node(1)
        net.send(0, 1, "hello")
        scheduler.run()
        assert (0, "hello") in net.nodes[1].inbox
