"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` from stdlib misuse)
propagate naturally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly or reached a bad state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped scheduler."""


class BudgetExceededError(SimulationError):
    """A run exhausted its event budget or horizon without converging.

    Carries an optional ``snapshot`` (a
    :class:`~repro.experiments.diagnostics.DiagnosticSnapshot`) describing
    the simulation state at the moment of exhaustion — queue depths, pending
    timers per node, the tail of the message trace — so non-convergence is
    debuggable instead of opaque.

    Instances cross process boundaries intact: parallel sweeps run trials
    in worker processes and ship failures back through ``pickle``, and the
    default exception reduction (``cls(*args)``) would silently drop the
    snapshot.  ``__reduce__`` keeps it attached.
    """

    def __init__(self, message: str, snapshot: object = None) -> None:
        super().__init__(message)
        self.snapshot = snapshot

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.snapshot))


class TrialTimeoutError(SimulationError):
    """A trial exceeded its wall-clock budget and was killed by the watchdog.

    Raised (or recorded, per the
    :class:`~repro.experiments.resilience.ResiliencePolicy`) by the
    supervised sweep executor when a worker held one trial longer than
    ``policy.trial_timeout`` seconds.  A :class:`SimulationError` subclass
    so sweep fault isolation treats a hung trial like any other per-trial
    failure instead of aborting the whole sweep.

    ``__reduce__`` keeps the structured fields across process boundaries
    (the default exception reduction would drop the keywords).
    """

    def __init__(self, message: str, timeout: float = 0.0, attempts: int = 1) -> None:
        super().__init__(message)
        self.timeout = timeout
        self.attempts = attempts

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.timeout, self.attempts))


class WorkerCrashError(SimulationError):
    """A sweep worker process died (OOM kill, SIGKILL, segfault) mid-trial.

    Recorded by the supervised executor after retries are exhausted; the
    ``exitcode`` is the worker's final exit status (negative = killed by
    that signal number, the ``multiprocessing`` convention).
    """

    def __init__(self, message: str, exitcode: int = 0, attempts: int = 1) -> None:
        super().__init__(message)
        self.exitcode = exitcode
        self.attempts = attempts

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.exitcode, self.attempts))


class JournalError(ReproError):
    """A sweep journal was misused (bad path, closed handle, bad record)."""


class ServiceError(ReproError):
    """The sweep job service refused a request (bad job spec, unknown job,
    daemon unreachable, protocol violation)."""


class SanitizerError(ReproError):
    """A runtime sanitizer observed an invariant violation.

    Deliberately *not* a :class:`SimulationError`: a tripped sanitizer
    means the simulator itself is wrong, so sweep fault isolation (which
    absorbs ``SimulationError`` per trial) must let it propagate.
    """


class TopologyError(ReproError):
    """A topology is malformed or a generator received invalid parameters."""


class NetworkError(ReproError):
    """The network substrate was misconfigured (unknown node, dead link...)."""


class ProtocolError(ReproError):
    """A routing protocol implementation reached an inconsistent state."""


class ConfigError(ReproError):
    """An experiment or protocol configuration is invalid."""


class AnalysisError(ReproError):
    """Loop/convergence analysis was asked something it cannot answer."""


class TelemetryError(ReproError):
    """The telemetry subsystem was misused (bad metric name, bad export)."""
