"""Routing-loop detection in forwarding graphs.

A forwarding graph for one destination is *functional* (each node has at most
one next hop), so its loops are exactly the cycles of a functional graph and
can all be found in O(nodes) by the classic three-color walk.  On top of the
per-snapshot detector, :func:`loop_timeline` scans a FIB change log and
reports each distinct loop's lifetime — the per-loop statistics the paper
lists as future work ("the loop size and duration").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataplane import FibChangeLog, ForwardingGraph, canonical_cycle
from ..errors import AnalysisError

Cycle = Tuple[int, ...]


def find_loops(graph: ForwardingGraph) -> List[Cycle]:
    """All forwarding cycles in ``graph``, as canonical tuples, sorted.

    A node whose next hop is itself is local delivery, not a 1-cycle.
    """
    state: Dict[int, int] = {}  # 0 absent / 1 on current walk / 2 finished
    position: Dict[int, int] = {}
    loops: List[Cycle] = []

    for start in graph.nodes_with_route():
        if state.get(start):
            continue
        trail: List[int] = []
        node: Optional[int] = start
        while node is not None:
            if graph.delivers_locally(node):
                break
            mark = state.get(node, 0)
            if mark == 2:
                break  # joins an already-resolved walk
            if mark == 1:
                cycle = tuple(trail[position[node]:])
                loops.append(canonical_cycle(cycle))
                break
            state[node] = 1
            position[node] = len(trail)
            trail.append(node)
            node = graph.next_hop(node)
        for visited in trail:
            state[visited] = 2
    return sorted(loops)


def nodes_in_loops(graph: ForwardingGraph) -> List[int]:
    """All nodes that sit on some forwarding cycle, ascending."""
    members = set()
    for cycle in find_loops(graph):
        members.update(cycle)
    return sorted(members)


def is_loop_free(graph: ForwardingGraph) -> bool:
    """True when the forwarding graph contains no cycle."""
    return not find_loops(graph)


@dataclass(frozen=True)
class LoopInterval:
    """One contiguous lifetime of one distinct loop.

    The same cycle can re-form later; it then gets a second interval.
    """

    cycle: Cycle
    start: float
    end: float

    @property
    def size(self) -> int:
        """Number of nodes in the loop."""
        return len(self.cycle)

    @property
    def duration(self) -> float:
        return self.end - self.start


def loop_timeline(
    log: FibChangeLog,
    prefix: str,
    start: float,
    end: float,
) -> List[LoopInterval]:
    """Every loop's lifetime within ``[start, end)``, in start order.

    Consecutive epochs in which the same cycle persists are merged into one
    interval.  This is the paper's "next steps" measurement: it turns the
    aggregate looping metrics into per-loop size/duration statistics.
    """
    if end < start:
        raise AnalysisError(f"window end {end} before start {start}")
    open_intervals: Dict[Cycle, float] = {}
    finished: List[LoopInterval] = []
    cursor = start
    for t0, t1, graph in log.epochs(prefix, start, end):
        present = set(find_loops(graph))
        for cycle in sorted(present):
            open_intervals.setdefault(cycle, t0)
        for cycle in list(open_intervals):
            if cycle not in present:
                finished.append(
                    LoopInterval(cycle=cycle, start=open_intervals.pop(cycle), end=t0)
                )
        cursor = t1
    for cycle, opened in open_intervals.items():
        finished.append(LoopInterval(cycle=cycle, start=opened, end=cursor))
    return sorted(finished, key=lambda i: (i.start, i.cycle))


def longest_loop_duration(intervals: List[LoopInterval]) -> float:
    """The longest single-loop lifetime (0.0 when loop-free)."""
    return max((i.duration for i in intervals), default=0.0)


def loop_size_histogram(intervals: List[LoopInterval]) -> Dict[int, int]:
    """How many distinct loop lifetimes had each size.

    Prior measurement work found "more than half of the loops involved only
    two nodes"; this histogram lets the simulations be compared with that.
    """
    histogram: Dict[int, int] = {}
    for interval in intervals:
        histogram[interval.size] = histogram.get(interval.size, 0) + 1
    return histogram
