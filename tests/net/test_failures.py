"""Unit tests for repro.net.failures."""

import pytest

from repro.engine import Scheduler
from repro.errors import NetworkError
from repro.net import (
    FailureSchedule,
    LinkFailure,
    LinkRestore,
    Network,
    Node,
    OriginWithdrawal,
    flap,
)
from repro.topology import chain


class Quiet(Node):
    def handle_message(self, src, message):
        pass


@pytest.fixture
def net(scheduler):
    return Network(chain(3), scheduler, lambda nid, sch: Quiet(nid, sch))


class TestInjectors:
    def test_link_failure_fires(self, scheduler, net):
        LinkFailure(0, 1, at=2.0).inject(net)
        scheduler.run()
        assert not net.link_is_up(0, 1)

    def test_link_restore_fires(self, scheduler, net):
        LinkFailure(0, 1, at=1.0).inject(net)
        LinkRestore(0, 1, at=2.0).inject(net)
        scheduler.run()
        assert net.link_is_up(0, 1)

    def test_origin_withdrawal_runs_action(self, scheduler, net):
        called = []
        OriginWithdrawal(node=0, at=3.0, action=lambda: called.append(scheduler.now)).inject(net)
        scheduler.run()
        assert called == [3.0]

    def test_origin_withdrawal_unknown_node(self, net):
        with pytest.raises(NetworkError):
            OriginWithdrawal(node=42, at=1.0, action=lambda: None).inject(net)


class TestSchedule:
    def test_inject_all(self, scheduler, net):
        schedule = FailureSchedule()
        schedule.add(LinkFailure(0, 1, at=1.0))
        schedule.add(LinkFailure(1, 2, at=2.0))
        schedule.inject_all(net)
        scheduler.run()
        assert not net.link_is_up(0, 1)
        assert not net.link_is_up(1, 2)

    def test_first_failure_time(self):
        schedule = FailureSchedule()
        assert schedule.first_failure_time is None
        schedule.add(LinkFailure(0, 1, at=5.0)).add(LinkFailure(1, 2, at=3.0))
        assert schedule.first_failure_time == 3.0

    def test_flap(self, scheduler, net):
        flap(0, 1, down_at=1.0, up_at=2.0).inject_all(net)
        scheduler.run()
        assert net.link_is_up(0, 1)

    def test_flap_rejects_bad_window(self):
        with pytest.raises(NetworkError):
            flap(0, 1, down_at=2.0, up_at=1.0)
