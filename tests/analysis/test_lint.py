"""Tests for the determinism linter: each rule gets positive and negative
fixtures, plus the acceptance check that the shipped tree lints clean."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import RULES, lint_paths, lint_source

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint(code: str, path: str = "module.py"):
    return lint_source(textwrap.dedent(code), path)


def rules_of(violations):
    return [v.rule for v in violations]


class TestWallClockRule:
    def test_time_time_flagged(self):
        violations = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rules_of(violations) == ["wall-clock"]

    def test_perf_counter_and_alias_flagged(self):
        violations = lint(
            """
            import time as t

            def bench():
                return t.perf_counter()
            """
        )
        assert rules_of(violations) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        violations = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert rules_of(violations) == ["wall-clock"]

    def test_from_import_datetime_now_flagged(self):
        violations = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert rules_of(violations) == ["wall-clock"]

    def test_scheduler_now_not_flagged(self):
        violations = lint(
            """
            def stamp(scheduler):
                return scheduler.now
            """
        )
        assert violations == []

    def test_unrelated_time_method_not_flagged(self):
        violations = lint(
            """
            def peek(event):
                return event.time
            """
        )
        assert violations == []

    def test_telemetry_profiler_is_exempt(self):
        """The harness-side wall-clock boundary: exactly one module."""
        code = """
            import time

            def wall_time():
                return time.perf_counter()
            """
        assert lint(code, "src/repro/telemetry/profiler.py") == []

    def test_resilience_supervisor_is_exempt(self):
        """The other harness-side boundary: watchdog deadlines and retry
        backoff genuinely consume wall-clock time."""
        code = """
            import time

            def deadline(timeout):
                return time.monotonic() + timeout
            """
        assert lint(code, "src/repro/experiments/resilience.py") == []

    def test_wall_clock_still_trips_elsewhere_in_telemetry(self):
        """The exemption must not leak to the simulator-side modules."""
        code = """
            import time

            def stamp():
                return time.perf_counter()
            """
        for path in (
            "src/repro/telemetry/registry.py",
            "src/repro/telemetry/timeline.py",
            "src/repro/telemetry/probe.py",
            "src/repro/experiments/sweep.py",
            "src/repro/experiments/journal.py",
            "src/repro/engine/scheduler.py",
        ):
            assert rules_of(lint(code, path)) == ["wall-clock"], path


class TestUnseededRandomRule:
    def test_module_level_draw_flagged(self):
        violations = lint(
            """
            import random

            def jitter():
                return random.uniform(0.75, 1.0)
            """
        )
        assert rules_of(violations) == ["unseeded-random"]

    def test_from_import_draw_flagged(self):
        violations = lint("from random import choice\n")
        assert rules_of(violations) == ["unseeded-random"]

    def test_seedless_random_instance_flagged(self):
        violations = lint(
            """
            import random

            def make_rng():
                return random.Random()
            """
        )
        assert rules_of(violations) == ["unseeded-random"]

    def test_seeded_random_instance_allowed(self):
        violations = lint(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """
        )
        assert violations == []

    def test_stream_draw_allowed(self):
        violations = lint(
            """
            def jitter(rng):
                return rng.uniform(0.75, 1.0)
            """
        )
        assert violations == []

    def test_random_annotation_allowed(self):
        violations = lint(
            """
            import random

            def use(rng: random.Random) -> float:
                return rng.random()
            """
        )
        assert violations == []

    def test_engine_rng_module_is_exempt(self):
        code = """
            import random

            def draw():
                return random.random()
            """
        assert rules_of(lint(code, "pkg/other.py")) == ["unseeded-random"]
        assert lint(code, "src/repro/engine/rng.py") == []


class TestUnorderedIterationRule:
    def test_for_over_set_literal_flagged(self):
        violations = lint(
            """
            def walk():
                for x in {3, 1, 2}:
                    print(x)
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_for_over_set_call_flagged(self):
        violations = lint(
            """
            def walk(items):
                for x in set(items):
                    print(x)
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_for_over_set_typed_local_flagged(self):
        violations = lint(
            """
            def walk(a, b):
                merged = set(a) | set(b)
                for x in merged:
                    print(x)
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_for_over_set_typed_self_attribute_flagged(self):
        violations = lint(
            """
            class Speaker:
                def __init__(self):
                    self._origins = set()

                def advertise(self):
                    for prefix in self._origins:
                        print(prefix)
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_list_materialization_of_set_flagged(self):
        violations = lint(
            """
            def snapshot(items):
                return list(set(items))
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_comprehension_over_set_flagged(self):
        violations = lint(
            """
            def walk(items):
                return [x + 1 for x in set(items)]
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_sorted_set_allowed(self):
        violations = lint(
            """
            def walk(items):
                for x in sorted(set(items)):
                    print(x)
            """
        )
        assert violations == []

    def test_membership_test_allowed(self):
        violations = lint(
            """
            def has(items, x):
                mine = set(items)
                return x in mine
            """
        )
        assert violations == []

    def test_values_loop_feeding_scheduler_flagged(self):
        violations = lint(
            """
            def rearm(timers, scheduler):
                for timer in timers.values():
                    scheduler.call_at(timer.deadline, timer.fire)
            """
        )
        assert rules_of(violations) == ["unordered-iteration"]

    def test_values_loop_without_emission_allowed(self):
        violations = lint(
            """
            def cancel_all(timers):
                for timer in timers.values():
                    timer.cancel()
            """
        )
        assert violations == []


class TestMutableDefaultRule:
    def test_list_default_flagged(self):
        violations = lint(
            """
            def handler(event, queue=[]):
                queue.append(event)
            """
        )
        assert rules_of(violations) == ["mutable-default"]

    def test_dict_and_set_defaults_flagged(self):
        violations = lint(
            """
            def handler(event, *, seen=set(), state={}):
                pass
            """
        )
        assert rules_of(violations) == ["mutable-default", "mutable-default"]

    def test_none_default_allowed(self):
        violations = lint(
            """
            def handler(event, queue=None):
                pass
            """
        )
        assert violations == []

    def test_immutable_defaults_allowed(self):
        violations = lint(
            """
            def handler(event, retries=3, name="x", window=(0.75, 1.0)):
                pass
            """
        )
        assert violations == []


class TestFloatTimeEqRule:
    def test_timestamp_equality_flagged(self):
        violations = lint(
            """
            def same_instant(a, b):
                return a.time == b.arrival_time
            """
        )
        assert rules_of(violations) == ["float-time-eq"]

    def test_now_inequality_flagged(self):
        violations = lint(
            """
            def moved(scheduler, start_time):
                return scheduler.now != start_time
            """
        )
        assert rules_of(violations) == ["float-time-eq"]

    def test_ordering_comparison_allowed(self):
        violations = lint(
            """
            def earlier(a, b):
                return a.time <= b.time
            """
        )
        assert violations == []

    def test_non_time_equality_allowed(self):
        violations = lint(
            """
            def same(a, b):
                return a.count == b.count
            """
        )
        assert violations == []

    def test_none_sentinel_allowed(self):
        violations = lint(
            """
            def unset(record):
                return record.time == None
            """
        )
        assert violations == []


class TestUninternedAsPathRule:
    def test_direct_construction_flagged(self):
        violations = lint(
            """
            from repro.bgp.path import AsPath

            def build():
                return AsPath((1, 2, 3))
            """
        )
        assert rules_of(violations) == ["uninterned-aspath"]

    def test_qualified_construction_flagged(self):
        violations = lint(
            """
            from repro.bgp import path

            def build():
                return path.AsPath((1, 2, 3))
            """
        )
        assert rules_of(violations) == ["uninterned-aspath"]

    def test_interning_factories_allowed(self):
        violations = lint(
            """
            from repro.bgp.path import AsPath, intern_path

            def build():
                return (
                    AsPath.of((1, 2, 3)),
                    AsPath.empty(),
                    intern_path((4, 5)),
                )
            """
        )
        assert violations == []

    def test_path_module_is_exempt(self):
        violations = lint(
            """
            def intern_path(ases=()):
                return AsPath(ases)
            """,
            path="src/repro/bgp/path.py",
        )
        assert violations == []

    def test_allow_comment_suppresses(self):
        violations = lint(
            """
            def uninterned_fixture():
                return AsPath((1, 2))  # lint: allow(uninterned-aspath) -- twin
            """
        )
        assert violations == []


class TestStatefulPolicyHookRule:
    def test_self_assignment_in_hook_flagged(self):
        violations = lint(
            """
            class CachingPolicy(RoutingPolicy):
                def accept_import(self, neighbor, route):
                    self._last = route
                    return True
            """
        )
        assert rules_of(violations) == ["stateful-policy-hook"]

    def test_every_hook_name_is_covered(self):
        for hook in (
            "accept_import", "local_pref", "preference_key", "accept_export"
        ):
            violations = lint(
                f"""
                class P(RoutingPolicy):
                    def {hook}(self, *args):
                        self.calls = 1
                        return True
                """
            )
            assert rules_of(violations) == ["stateful-policy-hook"], hook

    def test_augmented_and_subscript_mutation_flagged(self):
        violations = lint(
            """
            class CountingPolicy(GaoRexfordPolicy):
                def local_pref(self, neighbor, route):
                    self._hits += 1
                    return 100

                def accept_export(self, neighbor, route):
                    self._cache[route.prefix] = route
                    return True
            """
        )
        assert rules_of(violations) == [
            "stateful-policy-hook", "stateful-policy-hook",
        ]

    def test_global_declaration_in_hook_flagged(self):
        violations = lint(
            """
            class P(RoutingPolicy):
                def preference_key(self, route):
                    global CALLS
                    return (0,)
            """
        )
        assert rules_of(violations) == ["stateful-policy-hook"]

    def test_init_and_helpers_may_assign_state(self):
        violations = lint(
            """
            class P(RoutingPolicy):
                def __init__(self, prefix):
                    self._prefix = prefix

                def rebuild(self):
                    self._table = {}

                def accept_import(self, neighbor, route):
                    return route.prefix == self._prefix
            """
        )
        assert violations == []

    def test_non_policy_class_hooks_are_not_bound(self):
        violations = lint(
            """
            class Recorder:
                def accept_import(self, neighbor, route):
                    self.seen = route
                    return True
            """
        )
        assert violations == []

    def test_local_variables_in_hooks_allowed(self):
        violations = lint(
            """
            class P(ShortestPathPolicy):
                def preference_key(self, route):
                    rank = route.hop_count
                    return (rank,)
            """
        )
        assert violations == []

    def test_allow_comment_suppresses(self):
        violations = lint(
            """
            class P(RoutingPolicy):
                def accept_import(self, neighbor, route):
                    self._n = 1  # lint: allow(stateful-policy-hook) -- test double
                    return True
            """
        )
        assert violations == []


class TestSuppressedFindings:
    SOURCE = """
        def same_instant(a, b):
            return a.time == b.time  # lint: allow(float-time-eq) -- grouping
        """

    def test_dropped_by_default(self):
        assert lint(self.SOURCE) == []

    def test_kept_and_marked_when_requested(self):
        import textwrap

        from repro.analysis import lint_source

        (violation,) = lint_source(
            textwrap.dedent(self.SOURCE), "module.py", keep_suppressed=True
        )
        assert violation.suppressed
        assert violation.rule == "float-time-eq"
        assert violation.render().endswith("(suppressed)")

    def test_to_json_carries_the_suppressed_flag(self):
        import textwrap

        from repro.analysis import lint_source

        (violation,) = lint_source(
            textwrap.dedent(self.SOURCE), "module.py", keep_suppressed=True
        )
        payload = violation.to_json()
        assert payload["suppressed"] is True
        assert payload["rule"] == "float-time-eq"
        assert payload["code"] == "REP105"
        assert payload["line"] == 3


class TestSuppression:
    def test_allow_comment_suppresses_on_same_line(self):
        violations = lint(
            """
            def same_instant(a, b):
                return a.time == b.time  # lint: allow(float-time-eq) -- grouping
            """
        )
        assert violations == []

    def test_allow_comment_is_rule_specific(self):
        violations = lint(
            """
            def same_instant(a, b):
                return a.time == b.time  # lint: allow(wall-clock)
            """
        )
        assert rules_of(violations) == ["float-time-eq"]


class TestLintPaths:
    def test_directory_expansion_and_ordering(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        (tmp_path / "good.py").write_text("def f():\n    return 1\n")
        violations = lint_paths([str(tmp_path)])
        assert rules_of(violations) == ["wall-clock"]
        assert violations[0].path.endswith("bad.py")
        assert violations[0].line == 4

    def test_findings_sorted_by_path_line_code(self, tmp_path):
        (tmp_path / "b.py").write_text(
            "import time\n"
            "\n"
            "def f(q=[]):\n"
            "    return time.time()\n"
        )
        (tmp_path / "a.py").write_text("from random import choice\n")
        violations = lint_paths([str(tmp_path)])
        keys = [(v.path, v.line, v.col, v.code) for v in violations]
        assert keys == sorted(keys)
        assert [v.rule for v in violations] == [
            "unseeded-random", "mutable-default", "wall-clock",
        ]

    def test_render_mentions_rule_and_code(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("from random import choice\n")
        (violation,) = lint_paths([str(target)])
        rendered = violation.render()
        assert "REP102" in rendered
        assert "unseeded-random" in rendered

    def test_every_rule_has_code_and_description(self):
        for rule, (code, description) in RULES.items():
            assert code.startswith("REP")
            assert description

    def test_shipped_tree_is_clean(self):
        assert lint_paths([str(SRC_ROOT)]) == []
