"""Event builders, the MetricsSnapshot wire format, and the fan-out bus."""

import asyncio

from repro.service.events import (
    EventBus,
    end_event,
    point_event,
    snapshot_event,
    snapshot_from_json,
    snapshot_to_json,
    state_event,
    trial_event,
)
from repro.telemetry import (
    GaugeSnapshot,
    HistogramSnapshot,
    MetricsSnapshot,
)


def sample_snapshot() -> MetricsSnapshot:
    return MetricsSnapshot(
        counters={"bgp.updates": 42, "resilience.retries": 3},
        gauges={"engine.queue_depth": GaugeSnapshot(value=2.0, high_water=7.0)},
        histograms={
            "engine.latency": HistogramSnapshot(
                bounds=(0.1, 1.0),
                bucket_counts=(5, 2, 1),
                count=8,
                total=3.5,
                min=0.01,
                max=2.0,
            )
        },
    )


class TestSnapshotWireFormat:
    def test_round_trip(self):
        snapshot = sample_snapshot()
        assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot

    def test_empty_round_trip(self):
        empty = MetricsSnapshot()
        restored = snapshot_from_json(snapshot_to_json(empty))
        assert restored == empty and restored.empty

    def test_json_is_serializable(self):
        import json

        json.dumps(snapshot_to_json(sample_snapshot()))


class TestEventBuilders:
    def test_trial_event_carries_optional_fields(self):
        bare = trial_event("job-1", 3.0, 0, True)
        assert "digest" not in bare and "error" not in bare
        rich = trial_event("job-1", 3.0, 0, False, digest="abc", error="boom")
        assert rich["digest"] == "abc" and rich["error"] == "boom"

    def test_every_builder_stamps_job_and_type(self):
        events = [
            state_event("job-1", "running"),
            trial_event("job-1", 3.0, 0, True),
            point_event("job-1", 3.0, {"succeeded": 1}),
            snapshot_event("job-1", MetricsSnapshot()),
            end_event("job-1", "done"),
        ]
        for event in events:
            assert event["job"] == "job-1"
            assert event["event"] in (
                "state", "trial", "point", "snapshot", "end",
            )


class TestEventBus:
    def test_publish_reaches_subscriber(self):
        async def scenario():
            bus = EventBus(asyncio.get_running_loop())
            queue = bus.subscribe()
            bus.publish(state_event("job-1", "running"))
            await asyncio.sleep(0)  # let call_soon_threadsafe land
            return queue.get_nowait()

        event = asyncio.run(scenario())
        assert event["state"] == "running"

    def test_late_subscriber_replays_job_history(self):
        async def scenario():
            bus = EventBus(asyncio.get_running_loop())
            bus.publish(trial_event("job-1", 3.0, 0, True))
            bus.publish(trial_event("job-2", 4.0, 0, True))
            await asyncio.sleep(0)
            queue = bus.subscribe("job-1")
            return queue.get_nowait(), queue.empty()

        event, drained = asyncio.run(scenario())
        assert event["job"] == "job-1"
        assert drained  # job-2's history was not replayed

    def test_unsubscribed_queue_stops_receiving(self):
        async def scenario():
            bus = EventBus(asyncio.get_running_loop())
            queue = bus.subscribe()
            bus.unsubscribe(queue)
            bus.publish(state_event("job-1", "done"))
            await asyncio.sleep(0)
            return queue.empty()

        assert asyncio.run(scenario())

    def test_publish_safe_from_worker_thread(self):
        import threading

        async def scenario():
            bus = EventBus(asyncio.get_running_loop())
            queue = bus.subscribe()
            thread = threading.Thread(
                target=bus.publish, args=(state_event("job-1", "running"),)
            )
            thread.start()
            thread.join()
            return await asyncio.wait_for(queue.get(), timeout=5)

        event = asyncio.run(scenario())
        assert event["job"] == "job-1"

    def test_history_is_bounded(self):
        async def scenario():
            bus = EventBus(asyncio.get_running_loop())
            bus._history_limit = 10
            for index in range(25):
                bus.publish(trial_event("job-1", float(index), 0, True))
            await asyncio.sleep(0)
            queue = bus.subscribe("job-1")
            return queue.qsize()

        assert asyncio.run(scenario()) == 10
