"""Unit tests for repro.net.trace."""

import pytest

from repro.net import MessageTrace, TraceRecord


class Ping:
    pass


class Pong:
    pass


@pytest.fixture
def trace():
    t = MessageTrace()
    t.record(1.0, 0, 1, Ping())
    t.record(2.0, 1, 0, Pong())
    t.record(3.0, 0, 2, Ping())
    return t


class TestQueries:
    def test_len_and_iter(self, trace):
        assert len(trace) == 3
        assert [r.time for r in trace] == [1.0, 2.0, 3.0]

    def test_kind_is_class_name(self, trace):
        assert trace.records()[0].kind == "Ping"

    def test_count_with_predicate(self, trace):
        assert trace.count(lambda r: r.kind == "Ping") == 2

    def test_first_and_last_time(self, trace):
        assert trace.first_time() == 1.0
        assert trace.last_time() == 3.0

    def test_first_time_with_predicate(self, trace):
        assert trace.first_time(lambda r: r.kind == "Pong") == 2.0

    def test_last_time_with_predicate(self, trace):
        assert trace.last_time(lambda r: r.kind == "Ping") == 3.0

    def test_no_match_returns_none(self, trace):
        assert trace.first_time(lambda r: r.src == 99) is None
        assert trace.last_time(lambda r: r.src == 99) is None

    def test_since(self, trace):
        assert [r.time for r in trace.since(2.0)] == [2.0, 3.0]

    def test_records_filtered(self, trace):
        pongs = trace.records(lambda r: r.kind == "Pong")
        assert len(pongs) == 1 and pongs[0].src == 1

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0
        assert trace.last_time() is None
