"""Figure 4: overall looping duration vs convergence time across sizes.

Paper shape being reproduced: the looping duration tracks the convergence
time — nearly coinciding for Tdown (panels a, c), trailing by roughly one
MRAI round for Tlong (panel b).

Runs two ways: under pytest-benchmark (the recorded studies below), or
directly — ``python benchmarks/bench_fig4.py --jobs 4`` — to time the
same sweeps on the parallel executor; trials fan out to worker processes
with bit-identical results.
"""

from _support import bench_cli, record

from repro.experiments.figures import figure4a, figure4b, figure4c

CLIQUE_SIZES = (5, 8, 11, 14, 17)
BCLIQUE_SIZES = (4, 6, 8, 10, 12)
INTERNET_SIZES = (29, 48, 75, 110)


def test_fig4a_tdown_clique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure4a(sizes=CLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Tdown: looping duration within a few seconds of convergence time.
    for loop_d, conv_t in zip(
        figure.series["looping_duration"], figure.series["convergence_time"]
    ):
        assert conv_t > 0
        assert loop_d > 0.6 * conv_t


def test_fig4b_tlong_bclique(benchmark):
    figure = benchmark.pedantic(
        lambda: figure4b(sizes=BCLIQUE_SIZES, mrai=30.0, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Tlong: the gap is positive (about one MRAI round in the paper).
    gaps = [
        conv_t - loop_d
        for loop_d, conv_t in zip(
            figure.series["looping_duration"], figure.series["convergence_time"]
        )
    ]
    assert all(gap > 0 for gap in gaps)


def test_fig4c_tdown_internet(benchmark):
    figure = benchmark.pedantic(
        lambda: figure4c(sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    record(benchmark, figure)
    # Convergence time grows with topology size (paper: 527 s at n=110).
    conv = figure.series["convergence_time"]
    assert conv[-1] > conv[0]


if __name__ == "__main__":
    import sys

    sys.exit(
        bench_cli(
            {
                "fig4a": lambda jobs: figure4a(
                    sizes=CLIQUE_SIZES, mrai=30.0, seeds=(0, 1), jobs=jobs
                ),
                "fig4b": lambda jobs: figure4b(
                    sizes=BCLIQUE_SIZES, mrai=30.0, seeds=(0, 1), jobs=jobs
                ),
                "fig4c": lambda jobs: figure4c(
                    sizes=INTERNET_SIZES, mrai=30.0, seeds=(0, 1, 2), jobs=jobs
                ),
            },
            description=__doc__.splitlines()[0],
        )
    )
