"""Unit tests for repro.engine.scheduler."""

import pytest

from repro.engine import EventPriority, Scheduler
from repro.errors import SchedulingError


class TestClock:
    def test_starts_at_zero(self, scheduler):
        assert scheduler.now == 0.0

    def test_advances_to_event_time(self, scheduler):
        scheduler.call_at(3.5, lambda: None)
        scheduler.run()
        assert scheduler.now == 3.5

    def test_run_until_advances_clock_to_horizon_when_quiescent(self, scheduler):
        scheduler.call_at(1.0, lambda: None)
        scheduler.run(until=10.0)
        assert scheduler.now == 10.0

    def test_run_until_leaves_later_events_pending(self, scheduler):
        fired = []
        scheduler.call_at(5.0, lambda: fired.append(5))
        scheduler.call_at(15.0, lambda: fired.append(15))
        scheduler.run(until=10.0)
        assert fired == [5]
        assert scheduler.pending == 1
        assert scheduler.now == 10.0

    def test_event_exactly_at_horizon_fires(self, scheduler):
        fired = []
        scheduler.call_at(10.0, lambda: fired.append(1))
        scheduler.run(until=10.0)
        assert fired == [1]


class TestOrderingSemantics:
    def test_events_fire_in_time_order(self, scheduler):
        order = []
        scheduler.call_at(2.0, lambda: order.append("b"))
        scheduler.call_at(1.0, lambda: order.append("a"))
        scheduler.call_at(3.0, lambda: order.append("c"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_by_priority(self, scheduler):
        order = []
        scheduler.call_at(1.0, lambda: order.append("timer"), EventPriority.TIMER)
        scheduler.call_at(1.0, lambda: order.append("delivery"), EventPriority.DELIVERY)
        scheduler.run()
        assert order == ["delivery", "timer"]

    def test_simultaneous_same_priority_is_fifo(self, scheduler):
        order = []
        for tag in range(5):
            scheduler.call_at(1.0, lambda t=tag: order.append(t))
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_event_scheduled_during_run_fires(self, scheduler):
        order = []
        scheduler.call_at(
            1.0, lambda: scheduler.call_after(1.0, lambda: order.append("inner"))
        )
        scheduler.run()
        assert order == ["inner"]
        assert scheduler.now == 2.0


class TestErrors:
    def test_scheduling_in_past_raises(self, scheduler):
        scheduler.call_at(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulingError):
            scheduler.call_at(1.0, lambda: None)

    def test_negative_delay_raises(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.call_after(-0.1, lambda: None)

    def test_event_budget_exceeded_raises(self, scheduler):
        def reschedule():
            scheduler.call_after(1.0, reschedule)

        scheduler.call_after(1.0, reschedule)
        with pytest.raises(SchedulingError, match="budget"):
            scheduler.run(max_events=100)

    def test_run_is_not_reentrant(self, scheduler):
        def inner():
            scheduler.run()

        scheduler.call_at(1.0, inner)
        with pytest.raises(SchedulingError, match="re-entrant"):
            scheduler.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        handle = scheduler.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_cancelled_event_skipped_by_peek(self, scheduler):
        handle = scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(2.0, lambda: None)
        handle.cancel()
        assert scheduler.peek_time() == 2.0

    def test_peek_time_none_when_quiescent(self, scheduler):
        assert scheduler.peek_time() is None


class TestControl:
    def test_stop_halts_run(self, scheduler):
        fired = []
        scheduler.call_at(1.0, lambda: (fired.append(1), scheduler.stop()))
        scheduler.call_at(2.0, lambda: fired.append(2))
        scheduler.run()
        assert fired == [1]
        assert scheduler.pending == 1

    def test_step_fires_single_event(self, scheduler):
        fired = []
        scheduler.call_at(1.0, lambda: fired.append(1))
        scheduler.call_at(2.0, lambda: fired.append(2))
        assert scheduler.step()
        assert fired == [1]

    def test_step_on_empty_heap_returns_false(self, scheduler):
        assert not scheduler.step()

    def test_events_processed_counter(self, scheduler):
        for t in (1.0, 2.0, 3.0):
            scheduler.call_at(t, lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 3
