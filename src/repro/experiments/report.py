"""Rendering experiment output as the tables the paper plots.

A :class:`FigureData` is the library's representation of one paper figure:
an x-axis, named series, and optional observation checks.  Figure drivers
build these; benchmarks and examples print them.  :func:`describe_run`
renders one run's complete story (metrics, churn, individual loops) as
text, and :meth:`FigureData.to_json` exports series for external plotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core import LoopStatistics, ObservationCheck, UpdateChurn
from ..errors import AnalysisError
from ..util.tables import render_series, render_table
from .runner import ExperimentRun

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotation only)
    from ..telemetry import MetricsSnapshot


@dataclass
class FigureData:
    """One reproduced figure: x-axis, series, and shape checks."""

    figure_id: str
    title: str
    x_label: str
    xs: List[float]
    series: Dict[str, List[float]]
    checks: List[ObservationCheck] = field(default_factory=list)
    telemetry: Optional["MetricsSnapshot"] = None
    """Sweep-wide aggregate of per-trial telemetry snapshots, attached by
    the figure drivers when the sweep ran with ``settings.telemetry``."""

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.xs):
                raise AnalysisError(
                    f"series {name!r} has {len(values)} points, x-axis has "
                    f"{len(self.xs)}"
                )

    def render(self, precision: int = 2) -> str:
        """The figure as an ASCII table plus its observation verdicts."""
        body = render_series(
            self.x_label,
            self.xs,
            [(name, values) for name, values in self.series.items()],
            title=f"{self.figure_id}: {self.title}",
            precision=precision,
        )
        if not self.checks:
            return body
        verdicts = "\n".join(f"  {check}" for check in self.checks)
        return f"{body}\n{verdicts}"

    def check_failures(self) -> List[ObservationCheck]:
        """Checks that did not hold (empty = full shape agreement)."""
        return [check for check in self.checks if not check.holds]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The figure as JSON (id, title, axis, series, check verdicts).

        Non-finite values (a normalized series over a zero baseline) are
        serialized as strings so the output stays valid JSON everywhere.
        """

        def clean(value: float):
            if value != value or value in (float("inf"), float("-inf")):
                return str(value)
            return value

        payload = {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "xs": [clean(x) for x in self.xs],
            "series": {
                name: [clean(v) for v in values]
                for name, values in self.series.items()
            },
            "checks": [
                {"name": c.name, "holds": c.holds, "detail": c.detail}
                for c in self.checks
            ],
        }
        return json.dumps(payload, indent=indent)

    def plot(self, width: int = 60, height: int = 14) -> str:
        """The figure as an ASCII chart (finite points only)."""
        from ..util.plot import ascii_chart

        drawable = [
            (name, values)
            for name, values in self.series.items()
            if all(v == v and abs(v) != float("inf") for v in values)
        ]
        if not drawable:
            raise AnalysisError(f"figure {self.figure_id} has no plottable series")
        return ascii_chart(
            self.xs,
            drawable,
            width=width,
            height=height,
            title=f"{self.figure_id}: {self.title}",
        )


def describe_run(run: ExperimentRun) -> str:
    """One run's full story as readable text.

    Combines the §4.2 metrics with the churn analysis and the per-loop
    statistics.  Churn needs the message trace, so run the experiment with
    ``keep_network=True`` for the complete report; without it the churn
    section is omitted.
    """
    result = run.result
    lines = [
        f"scenario  : {run.scenario.name}  "
        f"({run.bgp_config.variant_name}, MRAI {run.bgp_config.mrai}s, "
        f"seed {run.seed})",
        f"failure   : t={run.failure_time:.2f}s "
        f"({run.scenario.event.value})",
        "",
        f"convergence time         : {result.convergence_time:10.2f} s",
        f"overall looping duration : {result.overall_looping_duration:10.2f} s",
        f"TTL exhaustions          : {result.ttl_exhaustions:10d}",
        f"packets sent             : {result.packets_sent:10d}",
        f"looping ratio            : {result.looping_ratio:10.1%}",
        f"delivered ratio          : {result.dataplane.delivery_ratio:10.1%}",
        f"dropped (no route)       : {result.dataplane.dropped_no_route:10d}",
    ]
    if run.network is not None:
        churn = UpdateChurn.from_trace(run.network.trace, run.failure_time)
        lines += [
            "",
            f"updates sent             : {churn.total_updates:10d} "
            f"({churn.announcements} announcements, "
            f"{churn.withdrawals} withdrawals)",
            f"busiest senders          : "
            + ", ".join(f"AS{n} x{c}" for n, c in churn.busiest_senders(3)),
        ]
        spacing = churn.min_pair_spacing()
        if spacing is not None:
            lines.append(f"min same-pair spacing    : {spacing:10.2f} s")
    stats = LoopStatistics.from_intervals(
        result.loop_intervals, failure_time=run.failure_time
    )
    lines += ["", "individual loops:"]
    lines += [f"  {line}" for line in stats.describe().splitlines()]
    return "\n".join(lines)


def run_summary_table(runs: Sequence[ExperimentRun], title: str = "runs") -> str:
    """A per-run metric table (one row per completed experiment)."""
    headers = [
        "scenario",
        "variant",
        "mrai",
        "conv_time",
        "loop_dur",
        "ttl_exh",
        "loop_ratio",
        "updates",
    ]
    rows = []
    for run in runs:
        result = run.result
        rows.append(
            [
                run.scenario.name,
                run.bgp_config.variant_name,
                run.bgp_config.mrai,
                result.convergence_time,
                result.overall_looping_duration,
                result.ttl_exhaustions,
                result.looping_ratio,
                result.convergence.update_count,
            ]
        )
    return render_table(headers, rows, title=title)
