"""The metrics registry: counters, gauges, and histograms for one run.

The paper's headline claims are measurements, and the ROADMAP's scaling
work needs to know *where* a sweep's work goes — so every layer of the
simulator carries instrumentation points that feed a
:class:`MetricsRegistry`.  Design constraints, in order:

1. **Zero cost when disabled.**  Layers hold a ``telemetry`` reference
   that defaults to ``None`` and guard every instrumentation point with
   one attribute read (the same pattern as the sanitizer hooks), so a
   run without telemetry pays nothing but that read.  For code that
   wants to hold a registry unconditionally, :data:`NULL_REGISTRY`
   hands out shared no-op metric objects.
2. **Determinism.**  Metrics only *observe*: no metric draws randomness,
   schedules events, or reads the wall clock, so a run's event order —
   and therefore its determinism digest — is bit-identical with
   telemetry on or off.  The test suite proves this.
3. **Picklable snapshots.**  :meth:`MetricsRegistry.snapshot` reduces
   the registry to a frozen :class:`MetricsSnapshot` of plain dicts and
   tuples, so per-trial metrics ride home from ``sweep(..., jobs=N)``
   worker processes and aggregate with
   :meth:`MetricsSnapshot.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Default histogram bucket upper bounds (values above the last bound land
#: in the overflow bucket).  Chosen for the quantities the simulator
#: observes: byte counts, queue depths, per-prefix fan-outs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); negative increments are rejected."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        """Record the current value, tracking the maximum ever seen."""
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """A fixed-bucket distribution: counts per bucket plus sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram {name!r} needs ascending bucket bounds, got {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # One count per bound plus the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """A histogram reduced to immutable, picklable data."""

    bounds: Tuple[float, ...]
    bucket_counts: Tuple[int, ...]
    count: int
    total: float
    min: Optional[float]
    max: Optional[float]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots of the same histogram shape."""
        if self.bounds != other.bounds:
            raise TelemetryError(
                f"cannot merge histograms with bounds {self.bounds} "
                f"and {other.bounds}"
            )
        mins = [m for m in (self.min, other.min) if m is not None]
        maxes = [m for m in (self.max, other.max) if m is not None]
        return HistogramSnapshot(
            bounds=self.bounds,
            bucket_counts=tuple(
                a + b for a, b in zip(self.bucket_counts, other.bucket_counts)
            ),
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(mins) if mins else None,
            max=max(maxes) if maxes else None,
        )


@dataclass(frozen=True)
class GaugeSnapshot:
    """A gauge reduced to its last value and high-water mark."""

    value: float
    high_water: float


@dataclass(frozen=True)
class MetricsSnapshot:
    """One registry frozen to plain data: picklable, mergeable, renderable.

    Produced by :meth:`MetricsRegistry.snapshot`; this is the form that
    crosses process boundaries in parallel sweeps and aggregates into
    :class:`~repro.experiments.sweep.SweepPoint` summaries.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, GaugeSnapshot] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str, default: int = 0) -> int:
        """One counter's value (``default`` when never incremented)."""
        return self.counters.get(name, default)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    @classmethod
    def aggregate(cls, snapshots: Sequence["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Combine per-trial snapshots into sweep-level totals.

        Counters sum, gauges keep the maximum (their high-water semantics
        survive aggregation), histograms merge bucket-wise.  Metric *names*
        union, so trials that never touched a metric don't erase it.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, GaugeSnapshot] = {}
        histograms: Dict[str, HistogramSnapshot] = {}
        for snap in snapshots:
            for name in sorted(snap.counters):
                counters[name] = counters.get(name, 0) + snap.counters[name]
            for name in sorted(snap.gauges):
                incoming = snap.gauges[name]
                seen = gauges.get(name)
                if seen is None:
                    gauges[name] = incoming
                else:
                    gauges[name] = GaugeSnapshot(
                        value=max(seen.value, incoming.value),
                        high_water=max(seen.high_water, incoming.high_water),
                    )
            for name in sorted(snap.histograms):
                incoming_h = snap.histograms[name]
                seen_h = histograms.get(name)
                histograms[name] = (
                    incoming_h if seen_h is None else seen_h.merged(incoming_h)
                )
        return cls(counters=counters, gauges=gauges, histograms=histograms)

    def render(self, indent: str = "  ") -> str:
        """A sorted, aligned text table of every metric."""
        lines: List[str] = []
        names = sorted(self.counters)
        width = max((len(n) for n in names), default=0)
        for name in names:
            lines.append(f"{indent}counter   {name:<{width}} {self.counters[name]}")
        for name in sorted(self.gauges):
            g = self.gauges[name]
            lines.append(
                f"{indent}gauge     {name} value={g.value:g} "
                f"high_water={g.high_water:g}"
            )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"{indent}histogram {name} count={h.count} mean={h.mean:.2f} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        if not lines:
            lines.append(f"{indent}(no metrics recorded)")
        return "\n".join(lines)


class MetricsRegistry:
    """Named metrics for one run; get-or-create access by name.

    Names are dotted paths (``"engine.events_executed"``,
    ``"net.messages_sent.Announcement"``).  Asking for an existing name
    with a different metric type raises :class:`TelemetryError` — a name
    is one metric forever.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name, "histogram")
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def _check_fresh(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise TelemetryError(
                    f"metric {name!r} already registered as a {other_kind}; "
                    f"cannot re-register as a {kind}"
                )

    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry to a picklable :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters={
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            gauges={
                name: GaugeSnapshot(value=metric.value, high_water=metric.high_water)
                for name, metric in sorted(self._gauges.items())
            },
            histograms={
                name: HistogramSnapshot(
                    bounds=metric.bounds,
                    bucket_counts=tuple(metric.bucket_counts),
                    count=metric.count,
                    total=metric.total,
                    min=metric.min,
                    max=metric.max,
                )
                for name, metric in sorted(self._histograms.items())
            },
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: every request returns a shared no-op metric.

    For code that wants to hold a registry unconditionally (rather than
    guard with ``if telemetry is not None``): all writes vanish, snapshots
    are empty, and no per-name allocation ever happens.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("<null>")
        self._null_gauge = _NullGauge("<null>")
        self._null_histogram = _NullHistogram("<null>")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()


#: A process-wide shared disabled registry.
NULL_REGISTRY = NullRegistry()
