"""Picklable trial specs: factory references that cross process boundaries.

The sweep API takes *factories* — ``make_scenario(x, seed)`` and
``make_config(x)`` — and almost every call site writes them as closures
over local state.  Closures cannot be pickled, so they cannot follow a
trial into a :class:`concurrent.futures.ProcessPoolExecutor` worker.

:class:`FactoryRef` is the serializable alternative: a reference to a
*module-level* factory function (stored as ``"package.module:qualname"``)
plus a frozen set of keyword arguments bound at construction time.  It is
itself callable with the same signature as the function it wraps, so the
sequential ``jobs=1`` path treats it exactly like the closure it replaces,
while the parallel path pickles it as two strings and a kwargs tuple.

Build one with :func:`factory_ref`::

    make_scenario = factory_ref(bclique_tflap_trial, size=4, count=3)
    make_config = factory_ref(constant_config, config=BgpConfig.standard(30.0))
    sweep(periods, make_scenario, make_config, jobs=4)

The module also hosts the two config-factory shapes every figure driver
needs (:func:`constant_config`, :func:`mrai_config`) so the drivers stay
parallel-safe without writing their own adapters.
"""

from __future__ import annotations

import importlib
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..bgp import BgpConfig
from ..errors import ConfigError


def _resolve(target: str) -> Callable:
    """Import ``"package.module:qualname"`` and return the named object."""
    module_name, _, qualname = target.partition(":")
    if not module_name or not qualname:
        raise ConfigError(
            f"factory target must look like 'package.module:name', "
            f"got {target!r}"
        )
    try:
        obj: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigError(f"cannot import factory module {module_name!r}: {exc}")
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ConfigError(
                f"module {module_name!r} has no attribute {qualname!r}"
            ) from None
    return obj


@dataclass(frozen=True)
class FactoryRef:
    """A picklable, callable reference to a module-level factory.

    ``target`` is ``"package.module:qualname"``; ``kwargs`` is a sorted
    tuple of ``(name, value)`` pairs merged into every call.  Positional
    arguments pass through, so a ref wrapping ``f(x, seed, *, size)`` built
    with ``size=4`` is called as ``ref(x, seed)``.
    """

    target: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def resolve(self) -> Callable:
        """The referenced function (imported fresh; cheap after first call)."""
        return _resolve(self.target)

    def __call__(self, *args: Any) -> Any:
        return self.resolve()(*args, **dict(self.kwargs))

    def __repr__(self) -> str:
        bound = ", ".join(f"{name}={value!r}" for name, value in self.kwargs)
        return f"FactoryRef({self.target}{', ' + bound if bound else ''})"


def factory_ref(func: Any, **kwargs: Any) -> FactoryRef:
    """Build a :class:`FactoryRef` from a function (or target string).

    ``func`` must be importable at module level — lambdas, inner functions,
    and bound methods are rejected, because worker processes re-import the
    factory by name.  Keyword arguments are bound into the ref and must
    themselves be picklable (checked here, so a parallel sweep fails fast
    with a clear message instead of deep inside the executor).
    """
    if isinstance(func, str):
        target = func
        resolved = _resolve(target)
    else:
        module = getattr(func, "__module__", None)
        qualname = getattr(func, "__qualname__", None)
        if not module or not qualname:
            raise ConfigError(f"{func!r} is not a referenceable function")
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ConfigError(
                f"{qualname!r} is not module-level; parallel sweeps need an "
                f"importable factory (a def at module scope), not a lambda "
                f"or inner function"
            )
        target = f"{module}:{qualname}"
        resolved = _resolve(target)
        if resolved is not func:
            raise ConfigError(
                f"{target!r} does not resolve back to the given function; "
                f"pass the module-level original"
            )
    if not callable(resolved):
        raise ConfigError(f"{target!r} resolves to a non-callable")
    frozen = tuple(sorted(kwargs.items()))
    try:
        pickle.dumps(frozen)
    except Exception as exc:
        raise ConfigError(
            f"factory kwargs for {target!r} are not picklable ({exc}); "
            f"bind only plain data (numbers, strings, frozen dataclasses)"
        )
    return FactoryRef(target=target, kwargs=frozen)


# ----------------------------------------------------------------------
# Shared config-factory shapes (module-level, hence FactoryRef-able)
# ----------------------------------------------------------------------


def constant_config(x: float, *, config: BgpConfig) -> BgpConfig:
    """``make_config`` that ignores x: the same config at every point."""
    return config


def mrai_config(x: float, *, base: BgpConfig) -> BgpConfig:
    """``make_config`` for MRAI-on-the-x-axis sweeps (Figures 5 and 7)."""
    return base.with_mrai(x)


def describe_pickle_failure(value: Any, role: str) -> str:
    """Why ``value`` cannot cross a process boundary, with the remedy."""
    try:
        pickle.dumps(value)
    except Exception as exc:
        return (
            f"{role} is not picklable and cannot be shipped to sweep "
            f"workers: {exc}. Use repro.experiments.factory_ref() to wrap "
            f"a module-level factory (closures and lambdas only work with "
            f"jobs=1)."
        )
    return ""


def ensure_picklable(values: Dict[str, Any]) -> None:
    """Raise :class:`ConfigError` for the first unpicklable ``role: value``."""
    for role, value in sorted(values.items()):
        problem = describe_pickle_failure(value, role)
        if problem:
            raise ConfigError(problem)
