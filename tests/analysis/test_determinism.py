"""Tests for the dual-run determinism harness."""

from __future__ import annotations

import pytest

from repro.analysis import check_determinism
from repro.analysis.determinism import DeterminismReport, RunFingerprint
from repro.bgp import variant
from repro.errors import AnalysisError
from repro.experiments import RunSettings, tdown_clique


def fast_settings(**kwargs) -> RunSettings:
    return RunSettings(**kwargs)


class TestCheckDeterminism:
    def test_same_seed_is_bit_for_bit_identical(self):
        report = check_determinism(
            tdown_clique(4), variant("standard", mrai=1.0), seed=5
        )
        assert report.identical
        assert len(report.fingerprints) == 2
        assert report.fingerprints[0].digest == report.fingerprints[1].digest
        assert report.first_divergence() is None
        assert "IDENTICAL" in report.render()

    def test_identical_under_sanitizers(self):
        report = check_determinism(
            tdown_clique(4),
            variant("standard", mrai=1.0),
            settings=RunSettings(sanitize=True),
            seed=5,
        )
        assert report.identical

    def test_sanitizers_do_not_change_the_digest(self):
        scenario = tdown_clique(4)
        config = variant("standard", mrai=1.0)
        plain = check_determinism(scenario, config, seed=5)
        sanitized = check_determinism(
            scenario, config, settings=RunSettings(sanitize=True), seed=5
        )
        assert plain.digest == sanitized.digest

    def test_different_seeds_give_different_digests(self):
        scenario = tdown_clique(4)
        config = variant("standard", mrai=1.0)
        a = check_determinism(scenario, config, seed=1)
        b = check_determinism(scenario, config, seed=2)
        assert a.digest != b.digest

    def test_triple_run(self):
        report = check_determinism(
            tdown_clique(3), variant("standard", mrai=1.0), seed=0, runs=3
        )
        assert report.identical
        assert len(report.fingerprints) == 3

    def test_fewer_than_two_runs_rejected(self):
        with pytest.raises(AnalysisError, match=">= 2 runs"):
            check_determinism(
                tdown_clique(3), variant("standard", mrai=1.0), runs=1
            )

    def test_fingerprint_counts_artifacts(self):
        report = check_determinism(
            tdown_clique(4), variant("standard", mrai=1.0), seed=5
        )
        fp = report.fingerprints[0]
        assert fp.messages > 0
        assert fp.fib_changes > 0
        assert fp.summary_line


class TestDivergenceReporting:
    @staticmethod
    def _fingerprint(digest, trace, summary="m=1"):
        return RunFingerprint(
            digest=digest,
            trace_lines=tuple(trace),
            fib_lines=(),
            summary_line=summary,
        )

    def test_first_divergence_pinpoints_trace_record(self):
        report = DeterminismReport(
            scenario_name="synthetic",
            seed=0,
            fingerprints=(
                self._fingerprint("aaa", ["r0", "r1", "r2"]),
                self._fingerprint("bbb", ["r0", "rX", "r2"]),
            ),
        )
        assert not report.identical
        divergence = report.first_divergence()
        assert "trace[1]" in divergence
        assert "rX" in divergence
        assert "DIVERGED" in report.render()

    def test_length_divergence_reported(self):
        report = DeterminismReport(
            scenario_name="synthetic",
            seed=0,
            fingerprints=(
                self._fingerprint("aaa", ["r0", "r1"]),
                self._fingerprint("bbb", ["r0", "r1", "r2"]),
            ),
        )
        assert "length" in report.first_divergence()

    def test_diverged_report_has_no_common_digest(self):
        report = DeterminismReport(
            scenario_name="synthetic",
            seed=0,
            fingerprints=(
                self._fingerprint("aaa", ["r0"]),
                self._fingerprint("bbb", ["r1"]),
            ),
        )
        with pytest.raises(AnalysisError, match="diverged"):
            report.digest
