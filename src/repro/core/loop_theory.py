"""The analytical model of §3.2: loop formation, resolution, and bounds.

The paper's worst-case argument, restated: at time *t* node c₁ adopts
``path(c₁, new) = (c₁ c₂ … c_k) · path(c_k, old)`` and an m-node loop
c₁ → c₂ → … → c_m → c₁ forms.  The loop resolves only after c₁'s new path
has propagated counterclockwise (c_m, c_{m-1}, …) far enough for some member
to detect the staleness; each hop of that propagation can be held up to M
seconds by the MRAI timer.  Hence:

* detection at c_k takes up to ``(m - k + 1) × M``,
* the loop's duration is at most ``(m - 1) × M`` (worst case k = 2).

This module provides those bounds plus an abstract round-by-round replay of
the propagation argument, used by tests and the theory benchmark to check the
simulator against the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..bgp.path import AsPath
from ..errors import AnalysisError


def worst_case_loop_duration(m: int, mrai: float) -> float:
    """Upper bound on an m-node loop's lifetime: ``(m - 1) × M`` seconds."""
    if m < 2:
        raise AnalysisError(f"a loop needs at least 2 nodes, got {m}")
    if mrai < 0:
        raise AnalysisError(f"MRAI must be >= 0, got {mrai}")
    return (m - 1) * mrai


def worst_case_detection_delay(m: int, k: int, mrai: float) -> float:
    """Upper bound on when c_k detects the loop: ``(m - k + 1) × M``.

    ``k`` is the index at which c₁'s new path rejoins old state, i.e.
    ``path(c₁, new) = (c₁ … c_k) · path(c_k, old)`` with ``2 <= k <= m``.
    """
    if m < 2:
        raise AnalysisError(f"a loop needs at least 2 nodes, got {m}")
    if not 2 <= k <= m:
        raise AnalysisError(f"k must satisfy 2 <= k <= m, got k={k}, m={m}")
    if mrai < 0:
        raise AnalysisError(f"MRAI must be >= 0, got {mrai}")
    return (m - k + 1) * mrai


@dataclass(frozen=True)
class PropagationStep:
    """One hop of the resolution message's counterclockwise journey."""

    node: int          # the loop member (1-based: c_1 .. c_m) now informed
    time_bound: float  # latest time (after loop formation) it can learn
    path: AsPath       # the path it adopts/propagates in the worst case


def resolution_schedule(m: int, k: int, mrai: float) -> List[PropagationStep]:
    """The worst-case §3.2 propagation schedule, step by step.

    Models loop members as ASes ``1..m`` (c₁ = 1).  c₁'s new path reaches
    c_m after up to one MRAI hold; each subsequent member c_{i} adopts
    ``(c_i … c_m) · path(c₁, new)`` and forwards it after up to M more.  The
    schedule ends at c_k, where the path
    ``(c_{k+1} … c_m c_1 … c_k) · path(c_k, old)`` finally contains c_k
    itself and is poison-reversed away, breaking the loop.

    The origin's suffix ``path(c_k, old)`` is abstracted as the empty path;
    only the loop members matter for the bound.
    """
    if not 2 <= k <= m:
        raise AnalysisError(f"k must satisfy 2 <= k <= m, got k={k}, m={m}")
    path_c1_new = AsPath.of(range(1, k + 1))  # (c_1 ... c_k) · path(c_k, old)
    steps: List[PropagationStep] = []
    elapsed = 0.0
    # c_1's announcement to c_m — one (possibly MRAI-delayed) message.
    elapsed += mrai
    steps.append(PropagationStep(node=m, time_bound=elapsed, path=path_c1_new))
    # c_m .. c_{k+1} in turn adopt and forward, each up to M later.  The
    # final step informs c_k, whose own AS now appears in the carried path —
    # poison reverse discards it and the loop is resolved.
    carried = path_c1_new
    for member in range(m, k, -1):
        carried = carried.prepend(member)
        elapsed += mrai
        steps.append(
            PropagationStep(node=member - 1, time_bound=elapsed, path=carried)
        )
    return steps


def schedule_resolution_time(m: int, k: int, mrai: float) -> float:
    """Resolution time implied by :func:`resolution_schedule`.

    Equals :func:`worst_case_detection_delay` — the two derivations agree,
    which the test suite asserts for all small (m, k).
    """
    steps = resolution_schedule(m, k, mrai)
    return steps[-1].time_bound


def loop_formation_example() -> Tuple[AsPath, AsPath, AsPath]:
    """The Figure 1 scenario as path algebra (for docs and sanity tests).

    Returns (path of node 4 before failure, node 5's backup, node 6's
    backup): nodes 5 and 6 simultaneously fail over to each other, forming
    the 2-node loop of Figure 1(b).
    """
    before = AsPath.of((4, 0))
    node5_backup = AsPath.of((5, 6, 4, 0))
    node6_backup = AsPath.of((6, 5, 4, 0))
    return before, node5_backup, node6_backup
