"""Unit tests for forwarding-loop detection."""

import pytest

from repro.core import (
    find_loops,
    is_loop_free,
    longest_loop_duration,
    loop_size_histogram,
    loop_timeline,
    nodes_in_loops,
)
from repro.core.loop_detector import LoopInterval
from repro.dataplane import FibChangeLog, ForwardingGraph
from repro.errors import AnalysisError

P = "dest"


class TestFindLoops:
    def test_tree_is_loop_free(self):
        graph = ForwardingGraph({0: 0, 1: 0, 2: 0, 3: 1})
        assert find_loops(graph) == []
        assert is_loop_free(graph)

    def test_two_node_loop(self):
        graph = ForwardingGraph({5: 6, 6: 5})
        assert find_loops(graph) == [(5, 6)]

    def test_long_loop(self):
        graph = ForwardingGraph({1: 2, 2: 3, 3: 1})
        assert find_loops(graph) == [(1, 2, 3)]

    def test_multiple_disjoint_loops(self):
        graph = ForwardingGraph({1: 2, 2: 1, 7: 8, 8: 9, 9: 7})
        assert find_loops(graph) == [(1, 2), (7, 8, 9)]

    def test_tail_into_loop_not_in_cycle(self):
        graph = ForwardingGraph({0: 1, 1: 2, 2: 1})
        assert find_loops(graph) == [(1, 2)]
        assert nodes_in_loops(graph) == [1, 2]

    def test_local_delivery_is_not_a_loop(self):
        graph = ForwardingGraph({0: 0, 1: 0})
        assert find_loops(graph) == []

    def test_no_route_entries_ignored(self):
        graph = ForwardingGraph({1: None, 2: 1})
        assert find_loops(graph) == []

    def test_each_loop_reported_once(self):
        # Many tails into one loop must not duplicate it.
        graph = ForwardingGraph({1: 2, 2: 1, 3: 1, 4: 2, 5: 4})
        assert find_loops(graph) == [(1, 2)]


class TestLoopTimeline:
    def make_log(self):
        """Loop (1,2) alive over [1, 4); loop (3,4) alive over [2, 6)."""
        log = FibChangeLog()
        log.record(0.0, 0, P, 0)
        log.record(1.0, 1, P, 2)
        log.record(1.0, 2, P, 1)
        log.record(2.0, 3, P, 4)
        log.record(2.0, 4, P, 3)
        log.record(4.0, 1, P, 0)
        log.record(6.0, 4, P, 0)
        return log

    def test_intervals(self):
        intervals = loop_timeline(self.make_log(), P, 0.0, 10.0)
        by_cycle = {i.cycle: (i.start, i.end) for i in intervals}
        assert by_cycle == {(1, 2): (1.0, 4.0), (3, 4): (2.0, 6.0)}

    def test_open_loop_clipped_to_window_end(self):
        log = FibChangeLog()
        log.record(1.0, 1, P, 2)
        log.record(1.0, 2, P, 1)
        intervals = loop_timeline(log, P, 0.0, 5.0)
        assert intervals == [LoopInterval(cycle=(1, 2), start=1.0, end=5.0)]

    def test_reforming_loop_gets_two_intervals(self):
        log = FibChangeLog()
        log.record(1.0, 1, P, 2)
        log.record(1.0, 2, P, 1)
        log.record(2.0, 1, P, None)   # loop dies
        log.record(3.0, 1, P, 2)      # same loop re-forms
        log.record(4.0, 1, P, None)
        intervals = loop_timeline(log, P, 0.0, 5.0)
        assert [(i.start, i.end) for i in intervals] == [(1.0, 2.0), (3.0, 4.0)]

    def test_empty_window(self):
        assert loop_timeline(self.make_log(), P, 3.0, 3.0) == []

    def test_backwards_window_raises(self):
        with pytest.raises(AnalysisError):
            loop_timeline(self.make_log(), P, 5.0, 1.0)

    def test_helpers(self):
        intervals = loop_timeline(self.make_log(), P, 0.0, 10.0)
        assert longest_loop_duration(intervals) == 4.0
        assert loop_size_histogram(intervals) == {2: 2}
        assert longest_loop_duration([]) == 0.0
