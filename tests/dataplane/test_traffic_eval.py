"""The traffic-matrix evaluator: seeded matrices, LPM walks, backend parity.

The load-bearing contract: the vectorized (numpy pointer-doubling) and
pure-python (memoized ``walk_lpm``) classification backends are *bit
identical* — same integer packet counts, same fractions — so a run's digest
does not depend on whether numpy is importable.
"""

import pytest

from repro.dataplane import (
    FibChangeLog,
    Flow,
    MultiPrefixFib,
    PacketFate,
    TrafficMatrix,
    TrafficMatrixEvaluator,
    walk_lpm,
)
from repro.dataplane import traffic_eval
from repro.errors import AnalysisError, ConfigError

HAVE_NUMPY = traffic_eval._np is not None

# Two /24s under one /22 cover, plus an opaque legacy name.
SPEC_A = "00000000/24"
SPEC_B = "00000100/24"
COVER = "00000000/22"


class TestSeededMatrix:
    def test_same_seed_same_matrix(self):
        a = TrafficMatrix.seeded([1, 2, 3], [SPEC_A, SPEC_B], seed=7)
        b = TrafficMatrix.seeded([1, 2, 3], [SPEC_A, SPEC_B], seed=7)
        assert a == b

    def test_different_seed_different_rates(self):
        a = TrafficMatrix.seeded([1, 2, 3], [SPEC_A], seed=0)
        b = TrafficMatrix.seeded([1, 2, 3], [SPEC_A], seed=1)
        assert [f.rate for f in a.flows] != [f.rate for f in b.flows]

    def test_origins_do_not_send_to_own_prefix(self):
        matrix = TrafficMatrix.seeded(
            [1, 2, 3], [SPEC_A, SPEC_B], seed=0, origins={SPEC_A: (2,)}
        )
        senders = {f.source for f in matrix.flows if f.prefix == SPEC_A}
        assert senders == {1, 3}
        senders_b = {f.source for f in matrix.flows if f.prefix == SPEC_B}
        assert senders_b == {1, 2, 3}

    def test_structured_prefix_shares_one_destination(self):
        matrix = TrafficMatrix.seeded([1, 2, 3, 4], [SPEC_A], seed=3)
        destinations = {f.destination for f in matrix.flows}
        assert len(destinations) == 1
        address = destinations.pop()
        assert 0x000000 <= address < 0x000100  # inside the /24

    def test_opaque_prefix_keeps_string_destination(self):
        matrix = TrafficMatrix.seeded([1, 2], ["dest"], seed=0)
        assert {f.destination for f in matrix.flows} == {"dest"}

    def test_rates_within_range(self):
        matrix = TrafficMatrix.seeded(
            [1, 2, 3], [SPEC_A, SPEC_B], seed=5, rate_range=(2.0, 4.0)
        )
        assert all(2.0 <= f.rate <= 4.0 for f in matrix.flows)

    def test_bad_rate_range_rejected(self):
        with pytest.raises(ConfigError):
            TrafficMatrix.seeded([1], [SPEC_A], seed=0, rate_range=(0.0, 1.0))


class TestWalkLpm:
    def test_specific_shadows_cover(self):
        fib = MultiPrefixFib()
        # Node 1: cover says go to 2, specific says deliver here.
        fib.set_entry(1, COVER, 2)
        fib.set_entry(1, SPEC_A, 1)
        fib.set_entry(2, COVER, 2)
        result = walk_lpm(fib, 1, 0x00000050)  # inside SPEC_A
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 0

    def test_cover_catches_unmatched_specific_space(self):
        fib = MultiPrefixFib()
        fib.set_entry(1, COVER, 2)
        fib.set_entry(1, SPEC_A, 1)
        fib.set_entry(2, COVER, 2)
        # 0x00000350 is inside the /22 but outside SPEC_A -> cover route.
        result = walk_lpm(fib, 1, 0x00000350)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 1

    def test_no_route_drops(self):
        fib = MultiPrefixFib()
        fib.set_entry(1, SPEC_A, 1)
        result = walk_lpm(fib, 1, 0x00000350)  # outside the only entry
        assert result.fate is PacketFate.DROPPED_NO_ROUTE

    def test_loop_detected(self):
        fib = MultiPrefixFib()
        fib.set_entry(1, SPEC_A, 2)
        fib.set_entry(2, SPEC_A, 1)
        result = walk_lpm(fib, 1, 0x00000050)
        assert result.fate is PacketFate.TTL_EXPIRED
        assert result.looped
        assert result.loop == (1, 2)

    def test_withdrawn_specific_falls_back_to_cover(self):
        fib = MultiPrefixFib()
        fib.set_entry(1, COVER, 2)
        fib.set_entry(1, SPEC_A, 3)
        fib.set_entry(1, SPEC_A, None)  # withdrawn: must not shadow cover
        fib.set_entry(2, COVER, 2)
        result = walk_lpm(fib, 1, 0x00000050)
        assert result.fate is PacketFate.DELIVERED
        assert result.hops == 1


def scripted_log():
    """Three nodes, two prefixes, three epochs: clean, loop+blackhole, healed.

    Node 1 delivers SPEC_A locally throughout.  SPEC_B starts delivered at 3
    via 2; at t=1.0 nodes 2 and 3 loop on it while SPEC_A at node 2 loses its
    route; at t=2.0 everything heals.
    """
    log = FibChangeLog()
    log.record(0.0, 1, SPEC_A, 1)
    log.record(0.0, 2, SPEC_A, 1)
    log.record(0.0, 3, SPEC_A, 2)
    log.record(0.0, 2, SPEC_B, 3)
    log.record(0.0, 3, SPEC_B, 3)
    log.record(0.0, 1, SPEC_B, 2)
    log.record(1.0, 2, SPEC_B, 1)
    log.record(1.0, 1, SPEC_B, 2)  # 1 -> 2 -> 1 loop for SPEC_B
    log.record(1.0, 2, SPEC_A, None)  # blackhole SPEC_A at 2
    log.record(2.0, 2, SPEC_B, 3)
    log.record(2.0, 2, SPEC_A, 1)
    return log


def matrix_for_log():
    return TrafficMatrix.seeded([1, 2, 3], [SPEC_A, SPEC_B], seed=11)


class TestEvaluator:
    def test_report_accounting_consistent(self):
        report = TrafficMatrixEvaluator(
            scripted_log(), matrix_for_log(), use_numpy=False
        ).evaluate(0.0, 3.0)
        assert report.offered > 0
        assert (
            report.delivered + report.blackholed + report.looped
            == report.offered
        )
        assert report.looped > 0 and report.blackholed > 0
        assert 0.0 < report.looped_fraction < 1.0
        assert report.lost_fraction == pytest.approx(
            report.looped_fraction + report.blackholed_fraction
        )

    def test_epoch_rows_cover_window(self):
        report = TrafficMatrixEvaluator(
            scripted_log(), matrix_for_log(), use_numpy=False
        ).evaluate(0.0, 3.0)
        assert report.epoch_rows[0].start == 0.0
        assert report.epoch_rows[-1].end == 3.0
        for left, right in zip(report.epoch_rows, report.epoch_rows[1:]):
            assert left.end == right.start
        assert sum(r.offered for r in report.epoch_rows) == report.offered

    def test_worst_epoch_is_the_looping_one(self):
        report = TrafficMatrixEvaluator(
            scripted_log(), matrix_for_log(), use_numpy=False
        ).evaluate(0.0, 3.0)
        worst = report.worst_epoch()
        assert worst is not None
        assert worst.start == 1.0 and worst.end == 2.0

    def test_empty_matrix_rejected(self):
        with pytest.raises(AnalysisError):
            TrafficMatrixEvaluator(scripted_log(), TrafficMatrix(flows=()))

    def test_backward_window_rejected(self):
        evaluator = TrafficMatrixEvaluator(
            scripted_log(), matrix_for_log(), use_numpy=False
        )
        with pytest.raises(AnalysisError):
            evaluator.evaluate(2.0, 1.0)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
    def test_numpy_and_python_backends_identical(self):
        log, matrix = scripted_log(), matrix_for_log()
        fast = TrafficMatrixEvaluator(log, matrix, use_numpy=True).evaluate(
            0.0, 3.0
        )
        slow = TrafficMatrixEvaluator(log, matrix, use_numpy=False).evaluate(
            0.0, 3.0
        )
        assert (fast.offered, fast.delivered, fast.blackholed, fast.looped) == (
            slow.offered,
            slow.delivered,
            slow.blackholed,
            slow.looped,
        )
        assert fast.epoch_rows == slow.epoch_rows

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
    def test_small_ttl_falls_back_to_walks(self):
        log, matrix = scripted_log(), matrix_for_log()
        # ttl=2 < node count disables the vectorized path even with numpy.
        fast = TrafficMatrixEvaluator(
            log, matrix, ttl=2, use_numpy=True
        ).evaluate(0.0, 3.0)
        slow = TrafficMatrixEvaluator(
            log, matrix, ttl=2, use_numpy=False
        ).evaluate(0.0, 3.0)
        assert fast.epoch_rows == slow.epoch_rows

    def test_totals_mode_matches_epoch_rows_mode(self):
        """``epoch_rows=False`` is the memory-lean 10k-prefix path: the
        totals must be bit-identical to the row-keeping evaluation, with
        the row log simply absent."""
        log, matrix = scripted_log(), matrix_for_log()
        full = TrafficMatrixEvaluator(log, matrix, use_numpy=False).evaluate(
            0.0, 3.0
        )
        lean = TrafficMatrixEvaluator(
            log, matrix, use_numpy=False, epoch_rows=False
        ).evaluate(0.0, 3.0)
        assert (lean.offered, lean.delivered, lean.blackholed, lean.looped) == (
            full.offered,
            full.delivered,
            full.blackholed,
            full.looped,
        )
        assert lean.epoch_rows == []
        assert full.epoch_rows

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")
    def test_totals_mode_backend_parity(self):
        log, matrix = scripted_log(), matrix_for_log()
        fast = TrafficMatrixEvaluator(
            log, matrix, use_numpy=True, epoch_rows=False
        ).evaluate(0.0, 3.0)
        slow = TrafficMatrixEvaluator(
            log, matrix, use_numpy=False, epoch_rows=False
        ).evaluate(0.0, 3.0)
        assert (fast.offered, fast.delivered, fast.blackholed, fast.looped) == (
            slow.offered,
            slow.delivered,
            slow.blackholed,
            slow.looped,
        )

    def test_flow_count_matches_matrix(self):
        matrix = matrix_for_log()
        report = TrafficMatrixEvaluator(
            scripted_log(), matrix, use_numpy=False
        ).evaluate(0.0, 1.0)
        assert report.flows == len(matrix.flows)
        assert report.prefixes == 2


class TestMultiEpochs:
    def test_epochs_split_on_any_prefix_change(self):
        log = scripted_log()
        boundaries = [
            (t0, t1) for t0, t1, _fib, _changed in log.multi_epochs(0.0, 3.0)
        ]
        assert boundaries == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_live_view_reflects_changes(self):
        log = scripted_log()
        states = []
        for _t0, _t1, fib, _changed in log.multi_epochs(0.0, 3.0):
            states.append(fib.next_hop(2, 0x00000150))  # SPEC_B space
        assert states == [3, 1, 3]
