"""Per-figure experiment drivers (one module per paper figure).

Each ``figureNx`` function runs the corresponding sweep and returns a
:class:`~repro.experiments.report.FigureData` with the measured series and
the paper's shape claims as machine checks.  All drivers take size/seed
parameters so benchmarks can trade fidelity for speed; EXPERIMENTS.md
records the settings used for the shipped results.
"""

from .common import metric_sweep_figure, normalize_to, variant_comparison_series
from .fig4 import figure4a, figure4b, figure4c
from .fig5 import figure5a, figure5b
from .fig6 import figure6a, figure6b, figure6c
from .fig7 import figure7a, figure7b
from .fig8 import figure8a, figure8b, figure8c, figure8d
from .fig9 import figure9a, figure9b, figure9c, figure9d
from .tagg import figure_tagg
from .theory import theory_bound_figure
from .tradeoff import FateBreakdown, packet_fate_breakdown, render_fate_table

__all__ = [
    "FateBreakdown",
    "figure4a",
    "figure4b",
    "figure4c",
    "figure5a",
    "figure5b",
    "figure6a",
    "figure6b",
    "figure6c",
    "figure7a",
    "figure7b",
    "figure8a",
    "figure8b",
    "figure8c",
    "figure8d",
    "figure9a",
    "figure9b",
    "figure9c",
    "figure9d",
    "figure_tagg",
    "metric_sweep_figure",
    "normalize_to",
    "packet_fate_breakdown",
    "render_fate_table",
    "theory_bound_figure",
    "variant_comparison_series",
]
